"""Targeted guessing: latent-space operations for informed attacks.

The paper motivates latent-space structure with targeted scenarios
(Sec. V-B): an attacker who knows something about the victim's password can
bias generation toward the relevant region.  This example exercises all
three mechanisms on a trained model:

* **neighbourhood sampling** (Table V): variations of a known old password,
* **interpolation** (Algorithm 2 / Fig. 3): blending two candidate stems,
* **conditional guessing** (our Sec. VII extension): completing a partially
  known password like "jimmy**".

Run:  python examples/targeted_guessing.py
"""

import numpy as np

from repro import ConditionalGuesser, PassFlow, PassFlowConfig, interpolate
from repro.analysis.neighborhood import mean_edit_distance, sigma_sweep
from repro.data import PasswordDataset, SyntheticConfig, SyntheticRockYou
from repro.data.alphabet import compact_alphabet
from repro.eval.reporting import format_table


def train_model() -> PassFlow:
    rng = np.random.default_rng(7)
    alphabet = compact_alphabet()
    corpus = SyntheticRockYou(
        rng, SyntheticConfig(vocabulary_size=30, max_suffix_digits=2), alphabet
    ).generate(8000)
    config = PassFlowConfig(
        alphabet_chars=alphabet.chars,
        num_couplings=8,
        hidden=48,
        batch_size=256,
        epochs=35,
        seed=2,
    )
    model = PassFlow(config)
    model.fit(PasswordDataset(corpus[:6000], [], model.encoder))
    return model


def main() -> None:
    print("training the model (about a minute at this scale)...")
    model = train_model()

    print("\n=== Scenario 1: variations of a leaked old password (Table V) ===")
    pivot = "maria12"
    sweep = sigma_sweep(model, pivot, [0.05, 0.10, 0.15], np.random.default_rng(0))
    rows = []
    depth = max(len(v) for v in sweep.values())
    for i in range(depth):
        rows.append([sweep[s][i] if i < len(sweep[s]) else "" for s in sorted(sweep)])
    print(format_table([f"sigma={s}" for s in sorted(sweep)], rows))
    for sigma in sorted(sweep):
        print(f"  sigma={sigma}: mean edit distance from pivot "
              f"{mean_edit_distance(pivot, sweep[sigma]):.2f}")

    print("\n=== Scenario 2: blending two candidate stems (Algorithm 2) ===")
    path = interpolate(model, "love99", "qwerty", steps=8)
    print("  " + " -> ".join(path))

    print("\n=== Scenario 3: completing a partial password (conditional) ===")
    guesser = ConditionalGuesser(model, population=128)
    for template in ("love**", "mar***2"):
        guesses = guesser.guess(template, rounds=6, top_k=8, rng=np.random.default_rng(1))
        print(f"  {template!r} -> {guesses}")
    print("\n(guesses are ranked by exact model density -- a capability")
    print(" GAN-based guessers cannot offer, Sec. I)")


if __name__ == "__main__":
    main()

"""Password-strength audit: the defensive application of PassFlow.

Guessing models double as strength meters (Melicher et al., USENIX
Security '16): a password is weak exactly when the model generates it
early.  Flows make this clean because log p(x) is exact (Sec. I), and the
Dell'Amico-Filippone Monte-Carlo estimator converts density into an
interpretable *guess rank*.

This example trains a model, calibrates the meter against the corpus, and
audits a mixed batch of candidate passwords.

Run:  python examples/password_strength_audit.py
"""

import numpy as np

from repro import PassFlow, PassFlowConfig
from repro.core.strength import StrengthEstimator
from repro.data import PasswordDataset, SyntheticConfig, SyntheticRockYou
from repro.data.alphabet import compact_alphabet
from repro.eval.reporting import format_table

CANDIDATES = [
    "123456",       # leak head
    "love12",       # word + digits
    "maria2001",    # name + year
    "qwerty",       # keyboard walk
    "dragonfire",   # two words
    "k9x2qv7p",     # random-ish
    "zq8wkfp2xj",   # fully random, max length
]


def main() -> None:
    rng = np.random.default_rng(11)
    alphabet = compact_alphabet()
    corpus = SyntheticRockYou(
        rng, SyntheticConfig(vocabulary_size=30, max_suffix_digits=2), alphabet
    ).generate(10000)

    print("training the strength model...")
    config = PassFlowConfig(
        alphabet_chars=alphabet.chars, num_couplings=8, hidden=48,
        batch_size=256, epochs=35, seed=13,
    )
    model = PassFlow(config)
    model.fit(PasswordDataset(corpus[:6000], [], model.encoder))

    estimator = StrengthEstimator(model, reference=corpus[:5000])

    rows = []
    for password in CANDIDATES:
        rank = estimator.guess_rank(password, sample_size=2048,
                                    rng=np.random.default_rng(0))
        rows.append([
            password,
            round(estimator.log_prob(password), 1),
            f"{rank:,.0f}",
            f"{estimator.percentile(password):.2f}",
            estimator.label(password),
        ])
    print("\n" + format_table(
        ["password", "log p(x)", "est. guess rank", "percentile", "band"], rows
    ))
    print("\nHigher guess rank = stronger password. The leak-head password")
    print("should rank orders of magnitude below the random strings.")


if __name__ == "__main__":
    main()

"""Baseline shootout: every guesser in the repository on one test set.

Compares PassFlow (static and dynamic) against the full baseline roster --
PassGAN-style WGAN, CWAE, Markov n-grams, Weir-style PCFG and the
rule-based mangler -- under identical guess budgets, reproducing the
Table II methodology across a wider field than the paper.

Every method is a spec string resolved by ``repro.strategies.build`` and
streamed through one ``AttackEngine``; pre-trained models are handed to
``build`` while the count-based baselines fit themselves from the corpus.
With ``--workers N`` each attack is instead sharded across N processes by
a ``ParallelAttackEngine`` (same accounting, merged at the budget
checkpoints; deterministic for the fixed seeds below).

Run:  python examples/baseline_shootout.py [--workers 4]
"""

import argparse

import numpy as np

from repro import PassFlow, PassFlowConfig
from repro.baselines import CWAE, CWAEConfig, PassGAN, PassGANConfig
from repro.data import PasswordDataset, SyntheticConfig, SyntheticRockYou
from repro.data.alphabet import compact_alphabet
from repro.eval.reporting import format_table
from repro.runtime import ParallelAttackEngine, StrategySource
from repro.strategies import AttackEngine

BUDGETS = [1000, 10000, 50000]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard each attack across N processes (1 = serial engine)",
    )
    args = parser.parse_args()
    rng = np.random.default_rng(3)
    alphabet = compact_alphabet()
    corpus = SyntheticRockYou(
        rng, SyntheticConfig(vocabulary_size=30, max_suffix_digits=2), alphabet
    ).generate(30000)
    flow_train = corpus[:5000]       # PassFlow gets the small subset...
    baseline_train = corpus[:15000]  # ...baselines get 3x more (paper: 78x)
    test_raw = corpus[20000:]

    print("training PassFlow...")
    config = PassFlowConfig(
        alphabet_chars=alphabet.chars, num_couplings=8, hidden=48,
        batch_size=256, epochs=60, seed=4,
    )
    model = PassFlow(config)
    dataset = PasswordDataset(flow_train, test_raw, model.encoder)
    model.fit(dataset)
    test_set = dataset.test_set
    print(f"test set: {len(test_set)} cleaned passwords")

    print("training PassGAN (WGAN with weight clipping)...")
    gan = PassGAN(PassGANConfig(alphabet_chars=alphabet.chars, hidden=96,
                                iterations=800, seed=5))
    gan.fit(baseline_train)

    print("training CWAE...")
    cwae = CWAE(CWAEConfig(alphabet_chars=alphabet.chars, latent_dim=48,
                           hidden=96, epochs=30, seed=6))
    cwae.fit(baseline_train)

    print("\nrunning attacks (count-based baselines fit from spec strings)...")
    runs = [
        # (display name, spec, pre-trained model or None, rng seed)
        ("Rule-based (HashCat-style)", "rules?wordlist=300", None, 10),
        ("Markov (order 3)", "markov:3", None, 11),
        ("PCFG (Weir)", "pcfg", None, 12),
        ("PassGAN", "passgan", gan, 13),
        ("CWAE", "cwae", cwae, 14),
        ("PassFlow-Static", "passflow:static?temperature=0.75", model, 15),
        (
            "PassFlow-Dynamic+GS",
            "passflow:dynamic+gs?alpha=1&batch=1024&gamma=2&sigma=0.12",
            model,
            16,
        ),
    ]
    reports = {}
    for name, spec, trained, seed in runs:
        source = StrategySource(
            spec, model=trained, corpus=baseline_train, alphabet=alphabet
        )
        strategy = source.build()  # fits count-based baselines once
        if args.workers == 1:
            reports[name] = AttackEngine(test_set, BUDGETS).run(
                strategy, np.random.default_rng(seed), method=name
            )
        else:
            reports[name] = ParallelAttackEngine(
                test_set, BUDGETS, workers=args.workers
            ).run(source.pin(strategy), seed=seed, method=name, label=f"{name}/")

    rows = []
    for name, report in reports.items():
        row = [name]
        for budget in BUDGETS:
            r = report.row_at(budget)
            row.append(f"{r.matched} ({r.match_percent:.2f}%)")
        rows.append(row)
    print("\n" + format_table(
        ["method"] + [f"matched @ {b:,}" for b in BUDGETS], rows
    ))
    print("\nNotes:")
    print("- PassFlow trained on 3x less data than every baseline")
    print("  (the paper's headline: 2 orders of magnitude less, Table II).")
    print("- Count-based models (Markov/PCFG/rules) are strong at this small")
    print("  synthetic scale: the corpus has narrow support that counting")
    print("  covers directly. The paper's neural-vs-PCFG gap appears at leak")
    print("  scale (Sec. VI / Melicher et al.), beyond a CPU reproduction.")


if __name__ == "__main__":
    main()

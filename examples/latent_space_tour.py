"""Latent-space tour: smoothness, locality and density (Sec. V-B, Fig. 2).

A guided walk through the properties that distinguish flows from GANs:

1. exact invertibility: every password has a latent point and returns from
   it bit-exactly,
2. locality: neighbourhoods of similar passwords cluster (the Fig. 2 t-SNE
   projection, rendered here as ASCII),
3. smoothness: density stays high while moving in a ball around a real
   password's latent,
4. exact density: PassFlow ranks candidate guesses by log p(x).

Run:  python examples/latent_space_tour.py
"""

import numpy as np

from repro import PassFlow, PassFlowConfig
from repro.analysis import TSNE, neighborhood_cloud
from repro.data import PasswordDataset, SyntheticConfig, SyntheticRockYou
from repro.data.alphabet import compact_alphabet
from repro.eval.metrics import cluster_separation


def ascii_scatter(points: np.ndarray, labels: np.ndarray, width: int = 64, height: int = 20) -> str:
    """Render a labelled 2-D point cloud as ASCII art."""
    glyphs = "abXO*+"
    mins, maxs = points.min(axis=0), points.max(axis=0)
    span = np.where(maxs - mins == 0, 1.0, maxs - mins)
    grid = [[" "] * width for _ in range(height)]
    for (x, y), label in zip(points, labels):
        col = int((x - mins[0]) / span[0] * (width - 1))
        row = int((y - mins[1]) / span[1] * (height - 1))
        grid[row][col] = glyphs[int(label) % len(glyphs)]
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    rng = np.random.default_rng(5)
    alphabet = compact_alphabet()
    corpus = SyntheticRockYou(
        rng, SyntheticConfig(vocabulary_size=30, max_suffix_digits=2), alphabet
    ).generate(8000)
    config = PassFlowConfig(
        alphabet_chars=alphabet.chars, num_couplings=8, hidden=48,
        batch_size=256, epochs=35, seed=9,
    )
    model = PassFlow(config)
    print("training the model...")
    model.fit(PasswordDataset(corpus[:6000], [], model.encoder))

    print("\n=== 1. Exact invertibility (Eq. 2) ===")
    passwords = ["love12", "maria99", "qwerty"]
    roundtrip = model.decode_latents(model.encode_passwords(passwords))
    for original, back in zip(passwords, roundtrip):
        print(f"  {original} -> f(x) -> f^-1(f(x)) = {back}  ({'OK' if original == back else 'FAIL'})")

    print("\n=== 2. Locality: Fig. 2 as ASCII (a='jaram'-like, b='royal'-like) ===")
    pivots = ["maria12", "qwerty"]
    latents, labels, decoded = neighborhood_cloud(
        model, pivots, sigma=0.08, count_per_pivot=40, rng=np.random.default_rng(0)
    )
    embedding = TSNE(perplexity=15, n_iter=250, seed=0).fit_transform(latents)
    print(ascii_scatter(embedding, labels))
    print(f"  cluster separation (inter/intra): "
          f"{cluster_separation(embedding, labels):.2f}")
    for index, pivot in enumerate(pivots):
        members = [d for d, lab in zip(decoded, labels) if lab == index][:6]
        print(f"  around {pivot!r}: {members}")

    print("\n=== 3. Smoothness: density along a random latent walk ===")
    center = model.encode_passwords(["love12"])[0]
    walk_rng = np.random.default_rng(1)
    point = center.copy()
    print("  step  password    log p(x)")
    for step in range(8):
        decoded_pw = model.decode_latents(point[None, :])[0]
        log_p = float(model.log_prob([decoded_pw])[0]) if decoded_pw else float("nan")
        print(f"  {step:>4}  {decoded_pw:<10}  {log_p:8.2f}")
        point = point + walk_rng.normal(0, 0.06, size=point.shape)

    print("\n=== 4. Exact density ranking (impossible with GANs) ===")
    candidates = ["love12", "maria99", "zzqqxxjj", "123456", "vvkpwq9z"]
    scores = model.log_prob(candidates)
    ranked = sorted(zip(candidates, scores), key=lambda kv: -kv[1])
    for password, score in ranked:
        print(f"  {password:<10} log p = {score:8.2f}")


if __name__ == "__main__":
    main()

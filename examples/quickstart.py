"""Quickstart: train PassFlow on a synthetic leak and run a guessing attack.

This is the end-to-end happy path of the library:

1. synthesize a RockYou-like corpus (the paper's data substitution),
2. split it and clean the test set (Sec. IV-D),
3. train a CPU-scale PassFlow model on exact NLL,
4. attack the test set with static sampling, Dynamic Sampling
   (Algorithm 1) and Dynamic Sampling + Gaussian Smoothing,
5. print the Table II/III-style comparison and some generated samples.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AttackEngine, PassFlow, PassFlowConfig, build
from repro.data import PasswordDataset, SyntheticConfig, SyntheticRockYou
from repro.data.alphabet import compact_alphabet
from repro.eval.reporting import format_table
from repro.flows.priors import StandardNormalPrior


def main() -> None:
    rng = np.random.default_rng(42)
    alphabet = compact_alphabet()

    print("=== 1. Data: synthetic RockYou-like corpus ===")
    generator = SyntheticRockYou(
        rng, SyntheticConfig(vocabulary_size=30, max_suffix_digits=2), alphabet
    )
    corpus = generator.generate(20000)
    print(f"corpus: {len(corpus)} passwords, e.g. {corpus[:6]}")

    print("\n=== 2. Split + clean (Sec. IV-D) ===")
    config = PassFlowConfig(
        alphabet_chars=alphabet.chars,
        num_couplings=8,
        hidden=48,
        batch_size=256,
        epochs=40,
        seed=1,
    )
    model = PassFlow(config)
    dataset = PasswordDataset(corpus[:5000], corpus[10000:], model.encoder)
    stats = dataset.stats()
    print(f"train={stats.train_size} (unique {stats.train_unique}), "
          f"cleaned test={stats.test_size_clean}")

    print("\n=== 3. Train (exact NLL, Eq. 7) ===")
    history = model.fit(dataset, verbose=False)
    print(f"NLL: {history.nll[0]:.2f} -> {history.nll[-1]:.2f} "
          f"(best epoch {history.best_epoch + 1}/{len(history.nll)})")

    print("\n=== 4. Generated samples ===")
    samples = model.sample_passwords(12, prior=StandardNormalPrior(10, sigma=0.75))
    print("  " + "  ".join(samples))

    print("\n=== 5. Guessing attacks (spec strings + streaming engine) ===")
    test_set = dataset.test_set
    engine = AttackEngine(test_set, budgets=[1000, 10000, 50000])
    dynamic_spec = "passflow:dynamic?alpha=1&batch=1024&gamma=2&sigma=0.12"

    static = engine.run(
        build("passflow:static?temperature=0.75", model=model),
        np.random.default_rng(1),
    )
    dynamic = engine.run(build(dynamic_spec, model=model), np.random.default_rng(2))
    # same seed as the plain Dynamic arm: paired comparison isolates the
    # effect of Gaussian Smoothing from sampling luck
    dynamic_gs = engine.run(
        build(dynamic_spec.replace(":dynamic?", ":dynamic+gs?"), model=model),
        np.random.default_rng(2),
    )

    rows = []
    for report in (static, dynamic, dynamic_gs):
        for row in report.rows:
            rows.append([report.method, row.guesses, row.unique, row.matched,
                         round(row.match_percent, 2)])
    print(format_table(["method", "guesses", "unique", "matched", "% of test"], rows))

    print("\nnon-matched (but human-like) samples:",
          "  ".join(dynamic_gs.non_matched_samples[:8]))


if __name__ == "__main__":
    main()

"""Micro-benchmark: vectorized policy masking vs the per-string predicate.

The ``policy(<spec>)`` wrapper's pitch is that encoded guess streams are
filtered without materializing strings: lengths from the PAD structure,
required classes through a class-bit LUT and one ``bitwise_or``
reduction.  This module pins that claim against the scalar
``CompositionPolicy.conforms`` reference on a large index-matrix batch:

* ``test_mask_paths_agree``       -- correctness precondition: the two
  paths are bitwise identical on the benchmark batch,
* ``test_vectorized_mask_speedup`` -- acceptance bar: ``mask_indices``
  >= 3x the decode-then-``conforms`` loop (>= 1.5x under ``CI=true``,
  the CI-relaxed convention of ``test_microbench_bank.py``).

The policy carries no denylist: deny patterns decode surviving rows on
both paths, which would blur the comparison the floor is about.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import assert_speedup, speedup_floor
from repro.data.alphabet import default_alphabet
from repro.data.encoding import PasswordEncoder
from repro.scenarios import CompositionPolicy

BATCH = 200_000
POLICY = CompositionPolicy(min_len=6, max_len=10, classes="ld")


@pytest.fixture(scope="module")
def encoded_batch():
    """A (BATCH, 10) index matrix of random variable-length passwords."""
    encoder = PasswordEncoder(default_alphabet())
    rng = np.random.default_rng(42)
    chars = encoder.alphabet.chars
    lengths = rng.integers(1, encoder.max_length + 1, size=BATCH)
    passwords = [
        "".join(chars[i] for i in rng.integers(0, len(chars), size=n))
        for n in lengths
    ]
    return encoder, encoder.indices_from_strings(passwords)


def _scalar_mask(encoder, matrix):
    decoded = encoder.strings_from_indices(matrix)
    return np.fromiter(
        (POLICY.conforms(p) for p in decoded), dtype=bool, count=len(decoded)
    )


def test_mask_paths_agree(encoded_batch):
    encoder, matrix = encoded_batch
    np.testing.assert_array_equal(
        POLICY.mask_indices(matrix, encoder), _scalar_mask(encoder, matrix)
    )


def test_vectorized_mask_speedup(encoded_batch):
    """Acceptance bar: index-space masking >= 3x the per-string loop."""
    encoder, matrix = encoded_batch
    assert_speedup(
        lambda: _scalar_mask(encoder, matrix),
        lambda: POLICY.mask_indices(matrix, encoder),
        floor=speedup_floor(3.0, 1.5),
        label=f"policy mask over {BATCH:,} encoded guesses",
    )

"""Ablation (paper future work, Sec. VII): alternative phi functions.

Compares the paper's step phi against linear and exponential decay and the
no-penalization control under identical Dynamic Sampling budgets.
"""

from repro.eval.reporting import format_table
from repro.strategies import AttackEngine, build

from benchmarks.conftest import run_once, shape_assertions_enabled

# phi variants as spec fragments (gamma doubles as the linear horizon)
PHI_VARIANTS = {
    "step(gamma=2)": "gamma=2&phi=step",
    "linear(horizon=4)": "gamma=4&phi=linear",
    "exponential(0.5)": "phi=exponential",
    "none (phi=1)": "phi=none",
}


def test_phi_variants(benchmark, ctx, model):
    budgets = ctx.settings.guess_budgets
    engine = AttackEngine(ctx.test_set, budgets)

    def run_all():
        results = {}
        for name, phi_params in PHI_VARIANTS.items():
            strategy = build(
                f"passflow:dynamic?alpha={ctx.DYNAMIC_ALPHA}&batch=1024"
                f"&sigma={ctx.DYNAMIC_SIGMA}&{phi_params}",
                model=model,
            )
            results[name] = engine.run(
                strategy, ctx.attack_rng(f"phi-{name}"), method=name
            )
        return results

    results = run_once(benchmark, run_all)
    rows = [
        [name] + [results[name].row_at(b).matched for b in budgets]
        for name in PHI_VARIANTS
    ]
    print("\n" + format_table(["phi"] + [f"{b:,}" for b in budgets], rows))

    if not shape_assertions_enabled(ctx):
        return
    final = {name: results[name].final().matched for name in PHI_VARIANTS}
    decaying_best = max(v for k, v in final.items() if "none" not in k)
    assert decaying_best >= final["none (phi=1)"], (
        f"some decaying phi should match the no-penalization control: {final}"
    )

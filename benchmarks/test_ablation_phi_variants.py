"""Ablation (paper future work, Sec. VII): alternative phi functions.

Compares the paper's step phi against linear and exponential decay and the
no-penalization control under identical Dynamic Sampling budgets.
"""

import pytest

from repro.core.dynamic import DynamicSampler, DynamicSamplingConfig
from repro.core.penalization import (
    ExponentialDecayPenalization,
    LinearDecayPenalization,
    NoPenalization,
    StepPenalization,
)
from repro.eval.reporting import format_table

from benchmarks.conftest import run_once, shape_assertions_enabled

PHI_VARIANTS = {
    "step(gamma=2)": lambda: StepPenalization(2),
    "linear(horizon=4)": lambda: LinearDecayPenalization(4),
    "exponential(0.5)": lambda: ExponentialDecayPenalization(0.5),
    "none (phi=1)": lambda: NoPenalization(),
}


def test_phi_variants(benchmark, ctx, model):
    budgets = ctx.settings.guess_budgets

    def run_all():
        results = {}
        for name, make_phi in PHI_VARIANTS.items():
            config = DynamicSamplingConfig(
                alpha=ctx.DYNAMIC_ALPHA,
                sigma=ctx.DYNAMIC_SIGMA,
                phi=make_phi(),
                batch_size=1024,
            )
            sampler = DynamicSampler(model, config)
            results[name] = sampler.attack(
                ctx.test_set, budgets, ctx.attack_rng(f"phi-{name}"), method=name
            )
        return results

    results = run_once(benchmark, run_all)
    rows = [
        [name] + [results[name].row_at(b).matched for b in budgets]
        for name in PHI_VARIANTS
    ]
    print("\n" + format_table(["phi"] + [f"{b:,}" for b in budgets], rows))

    if not shape_assertions_enabled(ctx):
        return
    final = {name: results[name].final().matched for name in PHI_VARIANTS}
    decaying_best = max(v for k, v in final.items() if "none" not in k)
    assert decaying_best >= final["none (phi=1)"], (
        f"some decaying phi should match the no-penalization control: {final}"
    )

"""Micro-benchmarks: bank replay vs live sampling of a PassFlow stream.

The bank subsystem's pitch is that a strategy's ranked guess stream is
expensive to sample (flow inverse passes dominate) but cheap to replay
(mmapped uint64 keys straight into the interned-id accounting).  This
module pins that claim on ``passflow:dynamic`` at 10^6 guesses:

* ``test_live_sampling_rate``   -- guesses/sec sampling the flow live
  (attack accounting included), measured over a 10^5-guess probe,
* ``test_bank_replay_rate``     -- guesses/sec replaying the banked
  10^6-guess stream through the same accounting, with the per-budget
  throughput trajectory printed at 10^4 / 10^5 / 10^6,
* ``test_replay_speedup_floor`` -- the acceptance bar: replay >= 5x the
  live sampling rate (>= 2.5x under ``CI=true``, matching the CI-relaxed
  convention of ``test_microbench_accounting.py``).

The bank is built with ``force=True``: dynamic sampling reads attack
feedback, so its *replay* reproduces the feedback-free build-time stream,
not a live adaptive attack -- which is exactly what a throughput
comparison wants (identical guess population on both sides of the
accounting), but means this bank must never stand in for a live dynamic
attack in a results table (``docs/bank.md``, invalidation rules).
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.bank import build_bank, replay_attack
from repro.strategies import AttackEngine

STREAM = 1_000_000
LIVE_PROBE = 100_000
BUDGETS = [10_000, 100_000, STREAM]
SPEC = "passflow:dynamic?alpha=1&gamma=2&sigma=0.12"
BANK_SEED = 1


@pytest.fixture(scope="module")
def dynamic_bank(tmp_path_factory, ctx, model):
    """The 10^6-guess ``passflow:dynamic`` stream, banked once per session."""
    out = tmp_path_factory.mktemp("bank") / "passflow-dynamic.bank"
    return build_bank(
        ctx.strategy(SPEC),
        STREAM,
        out,
        seed=BANK_SEED,
        encoder=model.encoder,
        force=True,
    )


def _live_run(ctx):
    engine = AttackEngine(ctx.test_set, [LIVE_PROBE])
    return engine.run(ctx.strategy(SPEC), np.random.default_rng(BANK_SEED))


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_live_sampling_rate(benchmark, ctx, model):
    report = run_once(benchmark, lambda: _live_run(ctx))
    assert report.rows[-1].guesses == LIVE_PROBE


def test_bank_replay_rate(benchmark, ctx, dynamic_bank):
    report = run_once(
        benchmark,
        lambda: replay_attack(dynamic_bank, ctx.test_set, BUDGETS, seed=BANK_SEED),
    )
    assert [row.guesses for row in report.rows] == BUDGETS
    # trajectory: replay throughput at each budget scale (mmap warm)
    rates = []
    for stop in range(1, len(BUDGETS) + 1):
        elapsed, _ = _timed(
            lambda stop=stop: replay_attack(
                dynamic_bank, ctx.test_set, BUDGETS[:stop], seed=BANK_SEED
            )
        )
        rates.append(f"{BUDGETS[stop - 1]:>9,}: {BUDGETS[stop - 1] / elapsed:>12,.0f}/s")
    print("\nbank replay trajectory (guesses: guesses/sec)\n  " + "\n  ".join(rates))


def test_replay_speedup_floor(ctx, dynamic_bank):
    """Acceptance bar: banked replay >= 5x live sampling at 10^6 guesses.

    Rates are guesses/sec with attack accounting included on both sides;
    the live side samples a 10^5 probe (the flow's rate is
    budget-independent), the replay side streams the full 10^6-guess
    artifact.  Re-measured up to 3 times, keeping the best ratio, so a
    transient load spike cannot fail the floor on its own; shared CI
    runners hold a relaxed 2.5x sanity floor.
    """
    floor = 2.5 if os.environ.get("CI") else 5.0
    speedup = live_rate = replay_rate = 0.0
    for attempt in range(3):
        live_time, live_report = _timed(lambda: _live_run(ctx))
        replay_time, replay_report = _timed(
            lambda: replay_attack(dynamic_bank, ctx.test_set, BUDGETS, seed=BANK_SEED)
        )
        assert replay_report.rows[-1].guesses == STREAM
        assert live_report.rows[-1].guesses == LIVE_PROBE
        live_rate = LIVE_PROBE / live_time
        replay_rate = STREAM / replay_time
        speedup = max(speedup, replay_rate / live_rate)
        if speedup >= floor:
            break
    print(
        f"\npassflow:dynamic at {STREAM:,} guesses: live {live_rate:,.0f}/s, "
        f"banked replay {replay_rate:,.0f}/s ({speedup:.1f}x)"
    )
    assert speedup >= floor, (
        f"bank replay only {speedup:.1f}x over live sampling (floor {floor}x)"
    )

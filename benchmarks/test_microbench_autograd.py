"""Micro-benchmarks: autograd engine primitives.

The engine is the substrate every training second is spent in; these
benchmarks track the cost of a representative forward+backward and of the
inference-mode (no-grad) fast path the samplers rely on.

``test_fused_coupling_forward_backward_floor`` pins the fused coupling
op's speedup over the seed-era composed-Tensor graph as a hard assert
(full bar off-CI, relaxed under ``CI=true``; see ``docs/kernels.md``).
"""

import numpy as np
import pytest

from repro import kernels
from repro.autograd import Tensor, fused_affine_coupling, no_grad
from repro.nn import Linear, ResidualMLP

from benchmarks.conftest import assert_speedup, speedup_floor


@pytest.fixture(scope="module")
def mlp():
    return ResidualMLP(10, 64, 10, num_blocks=2, rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(1).normal(size=(512, 10))


def test_forward_backward(benchmark, mlp, batch):
    def step():
        mlp.zero_grad()
        out = mlp(Tensor(batch))
        out.sum().backward()
        return out

    out = benchmark(step)
    assert out.shape == (512, 10)


def test_forward_no_grad(benchmark, mlp, batch):
    def infer():
        with no_grad():
            return mlp(Tensor(batch))

    out = benchmark(infer)
    assert out._backward is None  # fast path: no tape


def test_matmul_chain(benchmark):
    layers = [Linear(64, 64, rng=np.random.default_rng(i)) for i in range(8)]
    x = np.random.default_rng(9).normal(size=(256, 64))

    def chain():
        h = Tensor(x, requires_grad=True)
        for layer in layers:
            h = layer(h).relu()
        h.sum().backward()
        return h

    result = benchmark(chain)
    assert result.shape == (256, 64)


def test_logsumexp_large(benchmark):
    from repro.autograd import logsumexp

    x = np.random.default_rng(2).normal(size=(1024, 128))
    result = benchmark(lambda: logsumexp(Tensor(x), axis=1))
    assert result.shape == (1024,)


def test_fused_coupling_forward_backward_floor():
    """The fused coupling op beats the composed graph it replaced.

    The composed baseline is the seed-era AffineCoupling combine written
    out as individual Tensor ops (~12 tape nodes); the fused op collapses
    it into one node with closed-form backwards.
    """
    rng = np.random.default_rng(0)
    d = 16
    mask = (np.arange(d) % 2).astype(np.float64)
    inv_mask = 1.0 - mask
    xd = rng.normal(size=(512, d))
    rawd = rng.normal(size=(512, d)) * 3.0
    td = rng.normal(size=(512, d))

    def composed_step():
        x = Tensor(xd, True)
        raw, t = Tensor(rawd, True), Tensor(td, True)
        masked = x * Tensor(mask)
        scale = (raw * (1.0 / 2.0)).tanh() * 2.0
        z = masked + Tensor(inv_mask) * (x * scale.exp() + t)
        log_det = (Tensor(inv_mask) * scale).sum(axis=-1)
        ((z * z).sum() + log_det.sum()).backward()
        return x.grad

    def fused_step():
        with kernels.use_backend("numpy"):
            x = Tensor(xd, True)
            raw, t = Tensor(rawd, True), Tensor(td, True)
            z, log_det = fused_affine_coupling(x, raw, t, mask, inv_mask, 2.0)
            ((z * z).sum() + log_det.sum()).backward()
            return x.grad

    assert np.allclose(fused_step(), composed_step(), rtol=1e-9, atol=1e-9)
    for fn in (composed_step, fused_step):  # warm allocator arenas for both
        for _ in range(10):
            fn()
    assert_speedup(
        composed_step,
        fused_step,
        speedup_floor(full=1.25, relaxed=1.1),
        "fused coupling fwd+bwd",
    )

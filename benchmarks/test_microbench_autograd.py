"""Micro-benchmarks: autograd engine primitives.

The engine is the substrate every training second is spent in; these
benchmarks track the cost of a representative forward+backward and of the
inference-mode (no-grad) fast path the samplers rely on.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.nn import Linear, ResidualMLP


@pytest.fixture(scope="module")
def mlp():
    return ResidualMLP(10, 64, 10, num_blocks=2, rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(1).normal(size=(512, 10))


def test_forward_backward(benchmark, mlp, batch):
    def step():
        mlp.zero_grad()
        out = mlp(Tensor(batch))
        out.sum().backward()
        return out

    out = benchmark(step)
    assert out.shape == (512, 10)


def test_forward_no_grad(benchmark, mlp, batch):
    def infer():
        with no_grad():
            return mlp(Tensor(batch))

    out = benchmark(infer)
    assert out._backward is None  # fast path: no tape


def test_matmul_chain(benchmark):
    layers = [Linear(64, 64, rng=np.random.default_rng(i)) for i in range(8)]
    x = np.random.default_rng(9).normal(size=(256, 64))

    def chain():
        h = Tensor(x, requires_grad=True)
        for layer in layers:
            h = layer(h).relu()
        h.sum().backward()
        return h

    result = benchmark(chain)
    assert result.shape == (256, 64)


def test_logsumexp_large(benchmark):
    from repro.autograd import logsumexp

    x = np.random.default_rng(2).normal(size=(1024, 128))
    result = benchmark(lambda: logsumexp(Tensor(x), axis=1))
    assert result.shape == (1024,)

"""Benchmark: regenerate Fig. 4 (marginal improvement vs training-set size).

Asserts the paper's generalization claim at reduced scale: the largest
training set matches at least as well as the smallest, i.e. improvement is
non-negative where the paper shows a steep rise then plateau.
"""

from repro.eval.experiments import fig4

from benchmarks.conftest import run_once


def test_fig4(benchmark, ctx):
    result = run_once(benchmark, lambda: fig4.run(ctx))
    print("\n" + str(result))

    matches = [row[1] for row in result.rows]
    assert matches[-1] >= matches[0], (
        f"more training data must not reduce matches: {matches}"
    )
    improvements = [row[2] for row in result.rows]
    assert improvements[0] == 0.0  # baseline definition

"""Ablation: static-sampling temperature.

The static sampler draws z ~ N(0, T^2 I).  T is not a paper parameter (the
paper samples at T=1) but standard flow practice; this sweep justifies the
T=0.75 default the harness uses for the PassFlow-Static arm and shows the
precision/diversity trade-off.
"""

from repro.eval.reporting import format_table
from repro.strategies import AttackEngine, build

from benchmarks.conftest import run_once, shape_assertions_enabled

TEMPERATURES = (0.5, 0.75, 1.0, 1.25)


def test_temperature_sweep(benchmark, ctx, model):
    budget = ctx.settings.guess_budgets[-1]
    engine = AttackEngine(ctx.test_set, [budget])

    def run_all():
        results = {}
        for temperature in TEMPERATURES:
            strategy = build(
                f"passflow:static?temperature={temperature}", model=model
            )
            results[temperature] = engine.run(
                strategy, ctx.attack_rng(f"temp-{temperature}"),
                method=f"T={temperature}",
            ).final()
        return results

    results = run_once(benchmark, run_all)
    rows = [
        [temperature, results[temperature].unique, results[temperature].matched]
        for temperature in TEMPERATURES
    ]
    print("\n" + format_table(["temperature", "unique", "matched"], rows))

    if not shape_assertions_enabled(ctx):
        return
    # Empirical finding (kept as the assertion): tempered sampling (T < 1)
    # beats or matches T > 1 on matches.  High-temperature latents land in
    # poorly-modelled regions whose decodings clip to boundary strings, so
    # *both* uniqueness and precision degrade -- there is no diversity
    # upside to oversampling the prior tails on this model.
    matched = {t: results[t].matched for t in TEMPERATURES}
    assert max(matched[0.5], matched[0.75]) >= matched[1.25], (
        f"tempered sampling should not lose to T=1.25: {matched}"
    )

"""Micro-benchmarks: throughput of the flow's hot paths.

These are conventional pytest-benchmark measurements (many rounds): the
forward/inverse/log-prob/sampling costs that dominate guessing attacks.
The ``TestKernelSpeedupFloors`` class additionally pins the fused kernel
layer's speedup over the seed-era composed-Tensor paths as hard asserts
(full bar off-CI, relaxed under ``CI=true``; see ``docs/kernels.md``).
"""

import numpy as np
import pytest

from repro import kernels
from repro.autograd import Tensor, no_grad

from benchmarks.conftest import assert_speedup, speedup_floor

needs_numba = pytest.mark.skipif(
    not kernels.numba_available(), reason="numba not installed"
)


@pytest.fixture(scope="module")
def batch(ctx, model):
    rng = np.random.default_rng(0)
    passwords = ctx.corpus[:512]
    return model.encoder.encode_batch(passwords)


def tensor_decode(flow, z):
    """The pre-kernel decode: the composed-Tensor loop Flow.decode ran."""
    with no_grad():
        x = Tensor(np.atleast_2d(z))
        for bijector in reversed(flow.bijectors):
            x = bijector.inverse(x)
    return x.data


def tensor_encode(flow, x):
    """The pre-kernel encode loop (forward direction)."""
    with no_grad():
        z = Tensor(np.atleast_2d(x))
        for bijector in flow.bijectors:
            z, _ = bijector.forward(z)
    return z.data


def test_encode_throughput(benchmark, model, batch):
    result = benchmark(lambda: model.flow.encode(batch))
    assert result.shape == batch.shape


def test_decode_throughput(benchmark, model, batch):
    latents = model.flow.encode(batch)
    result = benchmark(lambda: model.flow.decode(latents))
    assert result.shape == batch.shape


def test_log_prob_throughput(benchmark, model, batch):
    result = benchmark(lambda: model.flow.log_prob(batch))
    assert np.all(np.isfinite(result))


def test_sample_passwords_throughput(benchmark, model):
    rng = np.random.default_rng(1)
    result = benchmark(lambda: model.sample_passwords(512, rng=rng))
    assert len(result) == 512


def test_roundtrip_exactness(model, batch):
    # correctness guard riding along with the perf suite
    assert model.flow.check_invertibility(batch[:64], atol=1e-7) < 1e-7


class TestKernelSpeedupFloors:
    """Hard speedup asserts for the fused kernel layer.

    Baselines are the seed-era composed-Tensor loops, re-run live so both
    sides see the same machine state.  Results must also stay bitwise (or,
    for numba, stream-) equal to the baseline -- a fast wrong kernel fails
    here, not just in the parity suite.

    The floors are set for the *warm-allocator* steady state (~1.2x): in a
    long-lived process glibc stops mmapping the baseline's large
    temporaries, which narrows the gap.  A fresh process -- every CLI
    ``attack``/``sample`` invocation -- pays those page faults and sees
    ~1.5-1.7x from the fused numpy backend (and ~3x+ with numba).
    """

    def test_fused_numpy_decode_floor(self, model, batch):
        flow = model.flow
        latents = flow.encode(batch)

        def fused():
            with kernels.use_backend("numpy"):
                return flow.decode(latents)

        assert np.array_equal(fused(), tensor_decode(flow, latents))
        assert_speedup(
            lambda: tensor_decode(flow, latents),
            fused,
            speedup_floor(full=1.12, relaxed=1.05),
            "fused numpy decode",
        )

    def test_fused_numpy_encode_log_prob_floor(self, model, batch):
        flow = model.flow

        def fused():
            with kernels.use_backend("numpy"):
                return flow.encode(batch)

        assert np.array_equal(fused(), tensor_encode(flow, batch))
        assert_speedup(
            lambda: tensor_encode(flow, batch),
            fused,
            speedup_floor(full=1.1, relaxed=1.05),
            "fused numpy encode",
        )

    def test_fused_numpy_sample_passwords_floor(self, model):
        def baseline_sample():
            latents = model.sample_latents(512, rng=np.random.default_rng(1))
            features = tensor_decode(model.flow, latents)
            return model.encoder.decode_batch(features)

        def fused_sample():
            with kernels.use_backend("numpy"):
                return model.sample_passwords(512, rng=np.random.default_rng(1))

        assert fused_sample() == baseline_sample()
        assert_speedup(
            baseline_sample,
            fused_sample,
            speedup_floor(full=1.12, relaxed=1.05),
            "fused sample_passwords",
        )

    @needs_numba
    def test_numba_decode_floor(self, model, batch):
        flow = model.flow
        latents = flow.encode(batch)

        def fused():
            with kernels.use_backend("numba"):
                return flow.decode(latents)

        fused()  # JIT warmup outside the timed region
        assert_speedup(
            lambda: tensor_decode(flow, latents),
            fused,
            speedup_floor(full=3.0, relaxed=1.5),
            "numba decode",
        )

    @needs_numba
    def test_numba_sample_passwords_stream_and_floor(self, model):
        def baseline_sample():
            latents = model.sample_latents(512, rng=np.random.default_rng(1))
            features = tensor_decode(model.flow, latents)
            return model.encoder.decode_batch(features)

        def fused_sample():
            with kernels.use_backend("numba"):
                return model.sample_passwords(512, rng=np.random.default_rng(1))

        # JIT warmup, and stream identity survives numba
        assert fused_sample() == baseline_sample()
        assert_speedup(
            baseline_sample,
            fused_sample,
            speedup_floor(full=3.0, relaxed=1.5),
            "numba sample_passwords",
        )

"""Micro-benchmarks: throughput of the flow's hot paths.

These are conventional pytest-benchmark measurements (many rounds): the
forward/inverse/log-prob/sampling costs that dominate guessing attacks.
"""

import numpy as np
import pytest


@pytest.fixture(scope="module")
def batch(ctx, model):
    rng = np.random.default_rng(0)
    passwords = ctx.corpus[:512]
    return model.encoder.encode_batch(passwords)


def test_encode_throughput(benchmark, model, batch):
    result = benchmark(lambda: model.flow.encode(batch))
    assert result.shape == batch.shape


def test_decode_throughput(benchmark, model, batch):
    latents = model.flow.encode(batch)
    result = benchmark(lambda: model.flow.decode(latents))
    assert result.shape == batch.shape


def test_log_prob_throughput(benchmark, model, batch):
    result = benchmark(lambda: model.flow.log_prob(batch))
    assert np.all(np.isfinite(result))


def test_sample_passwords_throughput(benchmark, model):
    rng = np.random.default_rng(1)
    result = benchmark(lambda: model.sample_passwords(512, rng=rng))
    assert len(result) == 512


def test_roundtrip_exactness(model, batch):
    # correctness guard riding along with the perf suite
    assert model.flow.check_invertibility(batch[:64], atol=1e-7) < 1e-7

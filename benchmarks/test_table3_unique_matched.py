"""Benchmark: regenerate Table III (unique + matched counts).

Asserts the paper's contraction/restoration shape: Dynamic generates fewer
unique guesses than Static (the Eq. 14 prior contracts the search), and
Gaussian Smoothing restores uniqueness.
"""

from repro.eval.experiments import table3
from repro.eval.experiments.common import collect_reports

from benchmarks.conftest import run_once, shape_assertions_enabled


def test_table3(benchmark, ctx):
    result = run_once(benchmark, lambda: table3.run(ctx))
    print("\n" + str(result))

    if not shape_assertions_enabled(ctx):
        return
    reports = collect_reports(ctx)
    final_budget = ctx.settings.guess_budgets[-1]
    static_unique = reports["PassFlow-Static"].row_at(final_budget).unique
    dynamic_unique = reports["PassFlow-Dynamic"].row_at(final_budget).unique
    gs_unique = reports["PassFlow-Dynamic+GS"].row_at(final_budget).unique

    assert dynamic_unique < static_unique, "Dynamic must contract unique guesses (Table III)"
    assert gs_unique > dynamic_unique, "GS must restore uniqueness (Table III)"

    cwae_matched = reports["CWAE"].row_at(final_budget).matched
    gs_matched = reports["PassFlow-Dynamic+GS"].row_at(final_budget).matched
    assert gs_matched > cwae_matched, "PassFlow must beat CWAE on matches (Table III)"

"""Benchmark: regenerate Fig. 2 (t-SNE projection of latent neighbourhoods).

Asserts that pivot neighbourhoods are spatially separated both in latent
space and in the 2-D embedding (the figure's visual claim).
"""

from repro.eval.experiments import fig2

from benchmarks.conftest import run_once, shape_assertions_enabled


def test_fig2(benchmark, ctx):
    result = run_once(benchmark, lambda: fig2.run(ctx))
    print("\n" + str(result))
    print(
        f"separation: latent={result.notes['separation_latent']:.2f} "
        f"embedded={result.notes['separation_embedded']:.2f}"
    )
    if not shape_assertions_enabled(ctx):
        return
    assert result.notes["separation_latent"] > 1.5, "pivot clouds must separate in latent space"
    assert result.notes["separation_embedded"] > 1.0, "separation must survive the embedding"

"""Benchmark: regenerate Fig. 5 (Dynamic Sampling with vs without phi).

Asserts the penalization function helps at the final budget, where the
paper's gap is widest (3.95% -> 8.08% at 10^8).
"""

from repro.eval.experiments import fig5

from benchmarks.conftest import run_once, shape_assertions_enabled


def test_fig5(benchmark, ctx):
    result = run_once(benchmark, lambda: fig5.run(ctx))
    print("\n" + str(result))

    if not shape_assertions_enabled(ctx):
        return
    final = result.rows[-1]
    without_phi, with_phi = final[1], final[2]
    assert with_phi >= without_phi, (
        f"phi must help at the largest budget: with={with_phi} without={without_phi}"
    )

"""Micro-benchmarks: the guess-accounting hot path.

Establishes the serial -> vectorized -> sharded performance trajectory on
a 1M-guess synthetic stream with a realistic repetition profile (guesses
drawn Zipf-ishly from a finite pool, the way samplers actually behave;
the paper's unique/total ratios are in the same regime):

* ``scalar``     -- the seed-era pipeline: per-password string decode
  (``from_indices``) feeding the per-password accounting loop
  (``observe_scalar``),
* ``vectorized`` -- one-pass batch decode feeding the batch-vectorized
  ``observe`` (what :class:`repro.strategies.AttackEngine` drives today),
* ``encoded``    -- ``observe_encoded`` on interned uint64 ids: strings
  never materialize except for matches and samples,
* ``sharded``    -- the same stream split over 4 shards by
  :class:`repro.runtime.ParallelAttackEngine` and merged at checkpoints.

``test_speedup_floor`` asserts the acceptance bar: the vectorized
accounting core is >= 5x faster than the scalar per-password loop on the
1M-guess stream (the encoded path is the one held to the bar; the string
path must clear a softer 2x floor since CPython string sets are already
C-speed).
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.guesser import GuessAccounting
from repro.data.alphabet import compact_alphabet
from repro.data.encoding import PasswordEncoder
from repro.runtime import LocalExecutor, ParallelAttackEngine
from repro.strategies.base import GuessBatch, GuessingStrategy

STREAM = 1_000_000
POOL = 300_000
BATCH = 8192
BUDGETS = [10_000, 100_000, STREAM]


@pytest.fixture(scope="module")
def codec():
    return PasswordEncoder(compact_alphabet())


@pytest.fixture(scope="module")
def stream(codec):
    """1M guesses drawn from a 300K-password pool, plus the target set."""
    rng = np.random.default_rng(0)
    pool = rng.integers(1, codec.vocab_size, size=(POOL, 10))
    # varied lengths: half the tail positions become PAD
    pool[:, 6:] = np.where(rng.random((POOL, 4)) < 0.5, 0, pool[:, 6:])
    draws = (rng.pareto(1.3, size=STREAM) * 1000).astype(np.int64) % POOL
    index_stream = pool[draws]
    test_rows = np.concatenate(
        [
            pool[rng.integers(0, POOL, 25_000)],
            rng.integers(1, codec.vocab_size, size=(25_000, 10)),
        ]
    )
    return {
        "pool_strings": codec.strings_from_indices(pool),
        "feats": codec.indices_to_floats(index_stream),
        "test_set": set(codec.strings_from_indices(test_rows)),
    }


def scalar_pipeline(codec, feats, test_set):
    accounting = GuessAccounting(set(test_set), BUDGETS)
    for start in range(0, len(feats), BATCH):
        indices = codec.floats_to_indices(feats[start : start + BATCH])
        accounting.observe_scalar([codec.from_indices(row) for row in indices])
    return accounting


def vectorized_pipeline(codec, feats, test_set):
    accounting = GuessAccounting(set(test_set), BUDGETS)
    for start in range(0, len(feats), BATCH):
        accounting.observe(codec.decode_batch(feats[start : start + BATCH]))
    return accounting


def encoded_pipeline(codec, feats, test_set):
    accounting = GuessAccounting(set(test_set), BUDGETS)
    for start in range(0, len(feats), BATCH):
        accounting.observe_encoded(
            codec.floats_to_indices(feats[start : start + BATCH]), codec
        )
    return accounting


class PoolReplayStrategy(GuessingStrategy):
    """Replays pool draws; each shard re-draws from its own RNG stream."""

    name = "pool-replay"

    def __init__(self, strings):
        super().__init__(spec="pool-replay")
        self._strings = strings

    def iter_guesses(self, rng):
        while True:
            count = self.context.next_count(BATCH)
            if count < 1:
                return
            draws = (rng.pareto(1.3, size=count) * 1000).astype(np.int64) % POOL
            yield GuessBatch([self._strings[i] for i in draws.tolist()])


def test_scalar_pipeline(benchmark, codec, stream):
    accounting = run_once(
        benchmark, lambda: scalar_pipeline(codec, stream["feats"], stream["test_set"])
    )
    assert accounting.done


def test_vectorized_pipeline(benchmark, codec, stream):
    accounting = run_once(
        benchmark,
        lambda: vectorized_pipeline(codec, stream["feats"], stream["test_set"]),
    )
    assert accounting.done


def test_encoded_pipeline(benchmark, codec, stream):
    accounting = run_once(
        benchmark,
        lambda: encoded_pipeline(codec, stream["feats"], stream["test_set"]),
    )
    assert accounting.done


def test_sharded_attack(benchmark, codec, stream):
    pool_strings = stream["pool_strings"]
    engine = ParallelAttackEngine(
        stream["test_set"], BUDGETS, workers=4, executor=LocalExecutor()
    )
    report = run_once(
        benchmark,
        lambda: engine.run(lambda: PoolReplayStrategy(pool_strings), seed=1),
    )
    assert [row.guesses for row in report.rows] == BUDGETS


def test_speedup_floor(codec, stream):
    """Acceptance bar: >= 5x over the scalar per-password loop at 1M guesses.

    Measured headroom is ~45% over the floors on an otherwise-idle core;
    a transient load spike during one measurement round is absorbed by
    re-measuring (both sides slow together under sustained load, so the
    ratios themselves are stable).
    """
    feats, test_set = stream["feats"], stream["test_set"]

    def timed(fn):
        start = time.perf_counter()
        result = fn()
        return time.perf_counter() - start, result

    def measure():
        scalar_time, scalar_acc = timed(
            lambda: scalar_pipeline(codec, feats, test_set)
        )
        vector_time, vector_acc = timed(
            lambda: vectorized_pipeline(codec, feats, test_set)
        )
        encoded_time, encoded_acc = timed(
            lambda: encoded_pipeline(codec, feats, test_set)
        )
        # all three paths agree on every checkpoint before timings count
        assert (
            [r.as_dict() for r in scalar_acc.rows]
            == [r.as_dict() for r in vector_acc.rows]
            == [r.as_dict() for r in encoded_acc.rows]
        )
        return scalar_time / encoded_time, scalar_time / vector_time

    # shared CI runners throttle unpredictably; hold the full acceptance
    # bar on dedicated hardware and a sanity floor elsewhere
    encoded_floor, vector_floor = (2.5, 1.2) if os.environ.get("CI") else (5.0, 2.0)
    encoded_speedup = vector_speedup = 0.0
    for attempt in range(3):
        e, v = measure()
        encoded_speedup = max(encoded_speedup, e)
        vector_speedup = max(vector_speedup, v)
        if encoded_speedup >= encoded_floor and vector_speedup >= vector_floor:
            break
    print(
        f"\naccounting 1M guesses: vectorized {vector_speedup:.1f}x, "
        f"encoded {encoded_speedup:.1f}x over the scalar per-password loop"
    )
    assert encoded_speedup >= encoded_floor, (
        f"encoded accounting only {encoded_speedup:.1f}x over the scalar loop"
    )
    assert vector_speedup >= vector_floor, (
        f"vectorized accounting only {vector_speedup:.1f}x over the scalar loop"
    )

"""Micro-benchmarks: the guess-accounting hot path.

Establishes the serial -> vectorized -> sharded performance trajectory on
a 1M-guess synthetic stream with a realistic repetition profile (guesses
drawn Zipf-ishly from a finite pool, the way samplers actually behave;
the paper's unique/total ratios are in the same regime):

* ``scalar``     -- the seed-era pipeline: per-password string decode
  (``from_indices``) feeding the per-password accounting loop
  (``observe_scalar``),
* ``vectorized`` -- one-pass batch decode feeding the batch-vectorized
  ``observe`` (what :class:`repro.strategies.AttackEngine` drives today),
* ``encoded``    -- ``observe_encoded`` on interned uint64 ids: strings
  never materialize except for matches and samples,
* ``sharded``    -- the same stream split over 4 shards by
  :class:`repro.runtime.ParallelAttackEngine` and merged at checkpoints.

``test_speedup_floor`` asserts the acceptance bar: the vectorized
accounting core is >= 5x faster than the scalar per-password loop on the
1M-guess stream (the encoded path is the one held to the bar; the string
path must clear a softer 2x floor since CPython string sets are already
C-speed).

``test_delta_payload_floor`` asserts the delta-transport bar: on a
1M-guess sharded run, the packed-uint64
:class:`~repro.core.guesser.KeyedCheckpointDelta` payloads crossing the
executor result queue are >= 5x smaller (pickled) than the string-list
:class:`~repro.core.guesser.CheckpointDelta` payloads the string fallback
ships, while merging to bit-identical rows.
"""

import os
import pickle
import sys
import time

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.guesser import GuessAccounting, KeyedCheckpointDelta
from repro.data.alphabet import compact_alphabet
from repro.data.encoding import PasswordEncoder
from repro.runtime import (
    LocalExecutor,
    ParallelAttackEngine,
    ShardPlanner,
    ShardTask,
    execute_shard,
)
from repro.strategies.base import GuessBatch, GuessingStrategy

STREAM = 1_000_000
POOL = 300_000
BATCH = 8192
BUDGETS = [10_000, 100_000, STREAM]


@pytest.fixture(scope="module")
def codec():
    return PasswordEncoder(compact_alphabet())


@pytest.fixture(scope="module")
def stream(codec):
    """1M guesses drawn from a 300K-password pool, plus the target set."""
    rng = np.random.default_rng(0)
    pool = rng.integers(1, codec.vocab_size, size=(POOL, 10))
    # varied lengths: half the tail positions become PAD
    pool[:, 6:] = np.where(rng.random((POOL, 4)) < 0.5, 0, pool[:, 6:])
    draws = (rng.pareto(1.3, size=STREAM) * 1000).astype(np.int64) % POOL
    index_stream = pool[draws]
    test_rows = np.concatenate(
        [
            pool[rng.integers(0, POOL, 25_000)],
            rng.integers(1, codec.vocab_size, size=(25_000, 10)),
        ]
    )
    return {
        "pool_rows": pool,
        "pool_strings": codec.strings_from_indices(pool),
        "feats": codec.indices_to_floats(index_stream),
        "test_set": set(codec.strings_from_indices(test_rows)),
    }


def scalar_pipeline(codec, feats, test_set):
    accounting = GuessAccounting(set(test_set), BUDGETS)
    for start in range(0, len(feats), BATCH):
        indices = codec.floats_to_indices(feats[start : start + BATCH])
        accounting.observe_scalar([codec.from_indices(row) for row in indices])
    return accounting


def vectorized_pipeline(codec, feats, test_set):
    accounting = GuessAccounting(set(test_set), BUDGETS)
    for start in range(0, len(feats), BATCH):
        accounting.observe(codec.decode_batch(feats[start : start + BATCH]))
    return accounting


def encoded_pipeline(codec, feats, test_set):
    accounting = GuessAccounting(set(test_set), BUDGETS)
    for start in range(0, len(feats), BATCH):
        accounting.observe_encoded(
            codec.floats_to_indices(feats[start : start + BATCH]), codec
        )
    return accounting


class PoolReplayStrategy(GuessingStrategy):
    """Replays pool draws; each shard re-draws from its own RNG stream."""

    name = "pool-replay"

    def __init__(self, strings):
        super().__init__(spec="pool-replay")
        self._strings = strings

    def iter_guesses(self, rng):
        while True:
            count = self.context.next_count(BATCH)
            if count < 1:
                return
            draws = (rng.pareto(1.3, size=count) * 1000).astype(np.int64) % POOL
            yield GuessBatch([self._strings[i] for i in draws.tolist()])


class EncodedPoolReplayStrategy(GuessingStrategy):
    """Identical draws to :class:`PoolReplayStrategy`, streamed as
    index-matrix batches so shard accounting runs in key space."""

    name = "encoded-pool-replay"

    def __init__(self, rows, codec):
        super().__init__(spec="encoded-pool-replay")
        self._rows = rows
        self._codec = codec

    def iter_guesses(self, rng):
        while True:
            count = self.context.next_count(BATCH)
            if count < 1:
                return
            draws = (rng.pareto(1.3, size=count) * 1000).astype(np.int64) % POOL
            yield GuessBatch(None, index_matrix=self._rows[draws], codec=self._codec)


def test_scalar_pipeline(benchmark, codec, stream):
    accounting = run_once(
        benchmark, lambda: scalar_pipeline(codec, stream["feats"], stream["test_set"])
    )
    assert accounting.done


def test_vectorized_pipeline(benchmark, codec, stream):
    accounting = run_once(
        benchmark,
        lambda: vectorized_pipeline(codec, stream["feats"], stream["test_set"]),
    )
    assert accounting.done


def test_encoded_pipeline(benchmark, codec, stream):
    accounting = run_once(
        benchmark,
        lambda: encoded_pipeline(codec, stream["feats"], stream["test_set"]),
    )
    assert accounting.done


def test_sharded_attack(benchmark, codec, stream):
    pool_strings = stream["pool_strings"]
    engine = ParallelAttackEngine(
        stream["test_set"], BUDGETS, workers=4, executor=LocalExecutor()
    )
    report = run_once(
        benchmark,
        lambda: engine.run(lambda: PoolReplayStrategy(pool_strings), seed=1),
    )
    assert [row.guesses for row in report.rows] == BUDGETS


def _string_delta_payload(deltas) -> int:
    """Materialized bytes of string-list deltas (list + str objects)."""
    total = 0
    for delta in deltas:
        for strings in (delta.new_unique, delta.new_matched):
            total += sys.getsizeof(strings) + sum(map(sys.getsizeof, strings))
    return total


def test_delta_payload_floor(codec, stream):
    """Acceptance bar: packed delta payloads >= 5x smaller than strings.

    Runs the same 1M-guess attack as 4 shards twice -- once with the
    string-batch strategy (string-mode accounting, string-list deltas),
    once with the index-matrix strategy (key-space accounting, packed
    uint64 deltas) -- and compares everything that leaves a shard:

    * **materialized payload** -- the bytes a worker accumulates and the
      merging parent holds live while unioning (str objects carry ~50
      bytes of CPython header each; a packed key is 8 bytes flat).  This
      is the asserted >= 5x floor.
    * **wire payload** -- the pickled bytes crossing the result queue
      (strings pickle compactly, so the shrink there is smaller but must
      never invert).

    Both transports must decode to identical checkpoint contents.
    """
    pool_rows, pool_strings = stream["pool_rows"], stream["pool_strings"]
    test_set = stream["test_set"]
    plans = ShardPlanner(BUDGETS, 4).plan()

    def run_shards(source):
        start = time.perf_counter()
        task = ShardTask(source=source, test_set=test_set, seed=1)
        outcomes = [execute_shard(task, plan) for plan in plans]
        return time.perf_counter() - start, outcomes

    string_time, string_outcomes = run_shards(lambda: PoolReplayStrategy(pool_strings))
    keyed_time, keyed_outcomes = run_shards(
        lambda: EncodedPoolReplayStrategy(pool_rows, codec)
    )
    assert all(
        isinstance(d, KeyedCheckpointDelta) for o in keyed_outcomes for d in o.deltas
    )
    # identical streams => identical checkpoint contents after decoding
    for string_outcome, keyed_outcome in zip(string_outcomes, keyed_outcomes):
        for sd, kd in zip(string_outcome.deltas, keyed_outcome.deltas):
            assert len(sd.new_unique) == len(kd.new_unique_keys)
            assert sorted(sd.new_matched) == sorted(kd.decode(codec).new_matched)

    string_payload = sum(_string_delta_payload(o.deltas) for o in string_outcomes)
    keyed_payload = sum(d.nbytes for o in keyed_outcomes for d in o.deltas)
    string_wire = sum(len(pickle.dumps(o.deltas)) for o in string_outcomes)
    keyed_wire = sum(len(pickle.dumps(o.deltas)) for o in keyed_outcomes)
    shrink = string_payload / keyed_payload
    wire_shrink = string_wire / keyed_wire
    print(
        f"\ndelta transport at {STREAM:,} guesses / 4 shards: "
        f"materialized {string_payload / 1e6:.1f} -> {keyed_payload / 1e6:.1f} MB "
        f"({shrink:.1f}x), wire {string_wire / 1e6:.1f} -> {keyed_wire / 1e6:.1f} MB "
        f"({wire_shrink:.1f}x); shard walltime {string_time:.1f}s -> {keyed_time:.1f}s"
    )
    assert shrink >= 5.0, (
        f"packed deltas only {shrink:.1f}x smaller than string deltas"
    )
    assert wire_shrink >= 1.1, (
        f"packed deltas pickle larger than strings ({wire_shrink:.2f}x)"
    )


def test_speedup_floor(codec, stream):
    """Acceptance bar: >= 5x over the scalar per-password loop at 1M guesses.

    Measured headroom is ~45% over the floors on an otherwise-idle core;
    a transient load spike during one measurement round is absorbed by
    re-measuring (both sides slow together under sustained load, so the
    ratios themselves are stable).
    """
    feats, test_set = stream["feats"], stream["test_set"]

    def timed(fn):
        start = time.perf_counter()
        result = fn()
        return time.perf_counter() - start, result

    def measure():
        scalar_time, scalar_acc = timed(
            lambda: scalar_pipeline(codec, feats, test_set)
        )
        vector_time, vector_acc = timed(
            lambda: vectorized_pipeline(codec, feats, test_set)
        )
        encoded_time, encoded_acc = timed(
            lambda: encoded_pipeline(codec, feats, test_set)
        )
        # all three paths agree on every checkpoint before timings count
        assert (
            [r.as_dict() for r in scalar_acc.rows]
            == [r.as_dict() for r in vector_acc.rows]
            == [r.as_dict() for r in encoded_acc.rows]
        )
        return scalar_time / encoded_time, scalar_time / vector_time

    # shared CI runners throttle unpredictably; hold the full acceptance
    # bar on dedicated hardware and a sanity floor elsewhere
    encoded_floor, vector_floor = (2.5, 1.2) if os.environ.get("CI") else (5.0, 2.0)
    encoded_speedup = vector_speedup = 0.0
    for attempt in range(3):
        e, v = measure()
        encoded_speedup = max(encoded_speedup, e)
        vector_speedup = max(vector_speedup, v)
        if encoded_speedup >= encoded_floor and vector_speedup >= vector_floor:
            break
    print(
        f"\naccounting 1M guesses: vectorized {vector_speedup:.1f}x, "
        f"encoded {encoded_speedup:.1f}x over the scalar per-password loop"
    )
    assert encoded_speedup >= encoded_floor, (
        f"encoded accounting only {encoded_speedup:.1f}x over the scalar loop"
    )
    assert vector_speedup >= vector_floor, (
        f"vectorized accounting only {vector_speedup:.1f}x over the scalar loop"
    )

"""Ablation: Gaussian Smoothing noise scale (the Sec. III-C trade-off).

Sweeps the GS perturbation scale under Dynamic Sampling.  Small scales
barely break collisions; large scales break them but drift away from the
matched neighbourhood.  The sweep exposes the trade-off the paper describes
qualitatively.
"""

from repro.eval.experiments.common import dynamic_spec
from repro.eval.reporting import format_table
from repro.strategies import AttackEngine, build

from benchmarks.conftest import run_once, shape_assertions_enabled

GS_SCALES = (0.25, 0.75, 1.5, 3.0)


def test_gs_scale_sweep(benchmark, ctx, model):
    budget = ctx.settings.guess_budgets[-1]
    engine = AttackEngine(ctx.test_set, [budget])

    def run_all():
        results = {}
        for scale in GS_SCALES:
            strategy = build(
                f"{dynamic_spec(ctx, smoothed=True)}&gs_scale={scale}", model=model
            )
            results[scale] = engine.run(
                strategy, ctx.attack_rng(f"gs-{scale}"),
                method=f"GS scale {scale}",
            ).final()
        # no-GS control
        control = engine.run(
            build(dynamic_spec(ctx), model=model),
            ctx.attack_rng("gs-none"), method="no GS",
        ).final()
        return results, control

    results, control = run_once(benchmark, run_all)
    rows = [["none", control.unique, control.matched]] + [
        [scale, results[scale].unique, results[scale].matched] for scale in GS_SCALES
    ]
    print("\n" + format_table(["GS scale", "unique", "matched"], rows))

    if not shape_assertions_enabled(ctx):
        return
    assert all(r.unique > control.unique for r in results.values()), (
        "every GS scale must improve uniqueness over no-GS"
    )

"""Benchmark: regenerate Table V (sigma-bounded neighbourhood sampling).

Asserts the paper's qualitative claim quantitatively: samples drift further
from the pivot as sigma grows (monotone mean edit distance, allowing one
inversion for sampling noise).
"""

from repro.eval.experiments import table5

from benchmarks.conftest import run_once, shape_assertions_enabled


def test_table5(benchmark, ctx):
    result = run_once(benchmark, lambda: table5.run(ctx))
    print("\n" + str(result))

    if not shape_assertions_enabled(ctx):
        return
    distances = result.notes["mean_edit_distance"]
    sigmas = sorted(distances)
    values = [distances[s] for s in sigmas]
    assert values[0] <= values[-1] + 0.5, (
        "smallest sigma should stay closest to the pivot"
    )
    inversions = sum(1 for a, b in zip(values, values[1:]) if a > b + 0.75)
    assert inversions <= 1, f"edit distance should grow with sigma, got {values}"

"""Ablation: affine (RealNVP) vs additive (NICE) couplings.

The paper builds on affine couplings [14]; NICE [13] is the
volume-preserving ancestor.  The scale term is what lets the flow
concentrate density on the password manifold, so the additive variant
should reach visibly worse NLL with the same budget.  Trains a small
additive model (not cached -- it exists only for this ablation).
"""

import numpy as np

from repro.core.model import PassFlow
from repro.data.dataset import PasswordDataset
from repro.eval.reporting import format_table

from benchmarks.conftest import run_once, shape_assertions_enabled


def test_affine_vs_additive(benchmark, ctx):
    train = ctx.corpus[: min(ctx.settings.train_size, 4000)]
    epochs = max(4, ctx.settings.flow_epochs // 4)

    def run_ablation():
        results = {}
        for coupling_type in ("affine", "additive"):
            config = ctx.passflow_config(seed=77)
            config.coupling_type = coupling_type
            config.epochs = epochs
            model = PassFlow(config)
            history = model.fit(PasswordDataset(train, [], model.encoder))
            results[coupling_type] = history.nll[-1]
        return results

    results = run_once(benchmark, run_ablation)
    print("\n" + format_table(
        ["coupling", "final NLL"],
        [[name, round(value, 3)] for name, value in results.items()],
    ))

    assert all(np.isfinite(v) for v in results.values())
    if not shape_assertions_enabled(ctx):
        return
    assert results["affine"] < results["additive"], (
        "affine couplings must reach lower NLL than volume-preserving "
        f"additive ones: {results}"
    )

"""Benchmark: regenerate Table VI (masking-strategy comparison).

The paper finds char-run-1 strictly best.  At reduced scale we assert the
weaker, statistically safe form: char-run-1 is not beaten by horizontal
masking at the final budget, and all three models train to finite NLL.
"""

import numpy as np

from repro.eval.experiments import table6

from benchmarks.conftest import run_once, shape_assertions_enabled


def test_table6(benchmark, ctx):
    result = run_once(benchmark, lambda: table6.run(ctx))
    print("\n" + str(result))
    print("final NLL per strategy:", result.notes["final_nll"])

    if not shape_assertions_enabled(ctx):
        return
    final_row = result.rows[-1]
    horizontal, char_run_2, char_run_1 = final_row[1], final_row[2], final_row[3]
    assert char_run_1 >= horizontal, (
        f"char-run-1 ({char_run_1}) must not lose to horizontal ({horizontal})"
    )
    assert all(np.isfinite(v) for v in result.notes["final_nll"].values())

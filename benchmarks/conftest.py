"""Benchmark fixtures.

The experiment context is session-scoped and disk-cached under
``.repro_cache/``: the first ``pytest benchmarks/ --benchmark-only`` run
trains every model (minutes); later runs reload checkpoints and only time
the experiments themselves.

Scale is selected with ``REPRO_BENCH_PROFILE`` (tiny / quick / full);
benchmarks default to ``quick``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.eval.harness import EvalContext, settings_from_env


@pytest.fixture(scope="session")
def ctx() -> EvalContext:
    return EvalContext(settings_from_env("quick"))


@pytest.fixture(scope="session")
def model(ctx):
    return ctx.passflow()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def run_once(benchmark, fn):
    """Run a whole-experiment benchmark exactly once (they're minutes-long)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def best_seconds(fn, repeats: int = 3) -> float:
    """Best-of-N wall time for a speedup-floor assertion (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def speedup_floor(full: float, relaxed: float) -> float:
    """The asserted speedup bar: the full bar off-CI, relaxed under CI=true.

    Shared CI runners are noisy and throttled, so the kernel speedup
    floors keep a regression-catching but forgiving bar there; local runs
    enforce the real perf contract.
    """
    return relaxed if os.environ.get("CI") else full


def assert_speedup(baseline_fn, fused_fn, floor: float, label: str, attempts: int = 4):
    """Assert best-of-N ``baseline/fused`` wall time beats ``floor``.

    Both sides run untimed first so they see the same warm allocator
    arenas (a cold baseline inflates the ratio; a cold fused path sinks
    it).  A losing measurement then re-runs both sides, interleaved,
    before failing: a concurrently running suite or a throttling shared
    machine can sink any single sample, and the floor is about the code,
    not the load.
    """
    for fn in (baseline_fn, fused_fn):
        fn()
        fn()
    ratio = 0.0
    for _ in range(attempts):
        baseline = best_seconds(baseline_fn)
        fused = best_seconds(fused_fn)
        ratio = max(ratio, baseline / fused)
        if ratio >= floor:
            return
    raise AssertionError(
        f"{label}: best speedup {ratio:.2f}x < {floor}x floor "
        f"after {attempts} measurement attempts"
    )


def shape_assertions_enabled(ctx) -> bool:
    """Whether the paper-shape assertions are statistically meaningful.

    The ``tiny`` profile trains for a handful of epochs purely to exercise
    the wiring; its match counts are ~0, so ordering claims degenerate.
    Assertions activate at ``quick`` scale and above.
    """
    return ctx.settings.name != "tiny"

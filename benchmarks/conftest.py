"""Benchmark fixtures.

The experiment context is session-scoped and disk-cached under
``.repro_cache/``: the first ``pytest benchmarks/ --benchmark-only`` run
trains every model (minutes); later runs reload checkpoints and only time
the experiments themselves.

Scale is selected with ``REPRO_BENCH_PROFILE`` (tiny / quick / full);
benchmarks default to ``quick``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import EvalContext, settings_from_env


@pytest.fixture(scope="session")
def ctx() -> EvalContext:
    return EvalContext(settings_from_env("quick"))


@pytest.fixture(scope="session")
def model(ctx):
    return ctx.passflow()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def run_once(benchmark, fn):
    """Run a whole-experiment benchmark exactly once (they're minutes-long)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def shape_assertions_enabled(ctx) -> bool:
    """Whether the paper-shape assertions are statistically meaningful.

    The ``tiny`` profile trains for a handful of epochs purely to exercise
    the wiring; its match counts are ~0, so ordering claims degenerate.
    Assertions activate at ``quick`` scale and above.
    """
    return ctx.settings.name != "tiny"

"""Benchmark: regenerate Fig. 3 (latent interpolation jimmy91 -> 123456).

Asserts exact endpoint recovery (flows are bijective, unlike GANs) and that
consecutive intermediate samples stay similar (latent smoothness).
"""

from repro.eval.experiments import fig3

from benchmarks.conftest import run_once, shape_assertions_enabled


def test_fig3(benchmark, ctx):
    result = run_once(benchmark, lambda: fig3.run(ctx))
    print("\n" + str(result))
    print(
        f"plausibility={result.notes['plausibility']:.2f} "
        f"mean consecutive edit distance={result.notes['mean_consecutive_edit_distance']:.2f}"
    )
    assert result.notes["endpoints_exact"] == (True, True)
    if not shape_assertions_enabled(ctx):
        return
    assert result.notes["mean_consecutive_edit_distance"] <= 5.0, (
        "consecutive interpolation samples should stay similar"
    )

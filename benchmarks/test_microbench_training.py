"""Micro-benchmarks: single training steps of every trainable model.

``test_adam_step_allocation_drop`` pins the fused in-place Adam's
allocation behaviour: once scratch is warm, a numpy-backend step must
allocate a small fraction of what the seed-era out-of-place update did
(tracemalloc peak; see ``docs/kernels.md``).
"""

import tracemalloc

import numpy as np
import pytest

from repro import kernels
from repro.autograd import Tensor
from repro.baselines.cwae import CWAE, CWAEConfig
from repro.baselines.gan import PassGAN, PassGANConfig
from repro.core.model import PassFlow, PassFlowConfig
from repro.nn.optim import Adam


@pytest.fixture(scope="module")
def flow_setup(ctx):
    config = ctx.passflow_config()
    model = PassFlow(config)
    batch = model.encoder.encode_batch(ctx.corpus[:256])
    optimizer = Adam(model.flow.parameters(), lr=1e-3)
    return model, batch, optimizer


def test_flow_training_step(benchmark, flow_setup):
    model, batch, optimizer = flow_setup

    def step():
        optimizer.zero_grad()
        loss = model.flow.nll(Tensor(batch))
        loss.backward()
        optimizer.step()
        return loss.item()

    loss = benchmark(step)
    assert np.isfinite(loss)


def test_adam_step_allocation_drop():
    """Warm fused Adam steps allocate ~nothing; the seed update allocated
    a fresh temporary per arithmetic op per parameter."""

    def make_optimizer(seed=0):
        rng = np.random.default_rng(seed)
        params = [Tensor(rng.normal(size=(64, 64)), True) for _ in range(8)]
        grads = [rng.normal(size=(64, 64)) for _ in range(8)]
        return Adam(params, lr=1e-3), params, grads

    def peak_step_bytes(backend):
        with kernels.use_backend(backend):
            optimizer, params, grads = make_optimizer()
            for _ in range(3):  # warm moment and scratch buffers
                for p, g in zip(params, grads):
                    p.grad = g.copy()
                optimizer.step()
            for p, g in zip(params, grads):
                p.grad = g.copy()
            tracemalloc.start()
            optimizer.step()
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        return peak

    peak_reference = peak_step_bytes("reference")
    peak_numpy = peak_step_bytes("numpy")
    assert peak_numpy < 0.2 * peak_reference, (
        f"fused Adam step peak {peak_numpy}B not < 20% of "
        f"reference {peak_reference}B"
    )


def test_gan_training_iteration(benchmark, ctx):
    gan = PassGAN(PassGANConfig(alphabet_chars=ctx.alphabet.chars, hidden=64, seed=0))
    features = gan.encoder.encode_batch(ctx.corpus[:512])
    rng = np.random.default_rng(0)

    def iteration():
        gan.trainer._critic_step(features[:128], rng)
        return gan.trainer._generator_step(rng)

    loss = benchmark(iteration)
    assert np.isfinite(loss)


def test_cwae_epoch_on_small_batch(benchmark, ctx):
    cwae = CWAE(
        CWAEConfig(alphabet_chars=ctx.alphabet.chars, latent_dim=32, hidden=64, seed=0)
    )
    subset = ctx.corpus[:256]

    def epoch():
        return cwae.fit(subset, epochs=1).reconstruction[-1]

    loss = benchmark.pedantic(epoch, rounds=3, iterations=1)
    assert np.isfinite(loss)

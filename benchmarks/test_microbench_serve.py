"""Micro-benchmarks: the serving tier's batched-scoring claim.

The daemon's pitch is that micro-batching amortizes the flow's per-call
fixed costs: one request per flow evaluation (what a naive scoring
service pays, and exactly what the scalar :meth:`StrengthEstimator.score`
path costs) versus up to ``max_batch`` requests per evaluation.  Two
acceptance bars:

* ``test_batched_throughput_floor`` -- ``score_batch`` over a probe set
  must beat the scalar loop by >= 3x wall time (>= 1.5x under ``CI=true``,
  the suite's relaxed-CI convention);
* ``test_daemon_p99_latency_ceiling`` -- a closed-loop 8-client soak
  through a threaded :class:`ServeApp` must keep p99 request latency
  under a generous ceiling, and must actually batch (fewer flushes than
  requests) -- the regression this catches is a scheduler that degrades
  to one-request batches or parks requests past its ``max_wait``.

Both run on the in-process scoring path (no sockets): transport cost is
negligible next to flow evaluation and would only add CI noise.
"""

from __future__ import annotations

import threading

import pytest

from benchmarks.conftest import assert_speedup, speedup_floor
from repro.core.strength import StrengthEstimator
from repro.serve import ServeApp

PROBE = 192  # passwords per throughput measurement
SOAK_CLIENTS = 8
SOAK_REQUESTS = 40  # per client, closed loop

#: p99 ceiling for single-password requests against a quick-profile model,
#: milliseconds.  A healthy daemon sits far below; the ceiling is a
#: tripwire for scheduler regressions, not a tight latency SLO.
P99_CEILING_MS = 150.0
P99_CEILING_MS_CI = 400.0


@pytest.fixture(scope="module")
def estimator(model, ctx):
    est = StrengthEstimator(model)
    est.calibrate(ctx.corpus[:2000])
    return est


@pytest.fixture(scope="module")
def serve_app(tmp_path_factory, model, ctx):
    tmp = tmp_path_factory.mktemp("serve-bench")
    model_path = tmp / "model.npz"
    model.save(model_path)
    corpus_path = tmp / "reference.txt"
    corpus_path.write_text("\n".join(ctx.corpus[:2000]) + "\n")
    app = ServeApp(
        [f"strength?model={model_path}&corpus={corpus_path}&sample=2000"],
        max_batch=64,
        max_wait_ms=2.0,
    )
    app.start()
    yield app
    app.close()


def test_batched_throughput_floor(estimator, ctx):
    passwords = ctx.corpus[:PROBE]

    def serial():
        for password in passwords:
            estimator.score(password)

    def batched():
        estimator.score_batch(passwords)

    assert_speedup(
        serial,
        batched,
        speedup_floor(3.0, 1.5),
        f"score_batch vs scalar loop over {PROBE} passwords",
    )


def test_daemon_p99_latency_ceiling(serve_app, ctx):
    import json

    pools = [
        ctx.corpus[i :: SOAK_CLIENTS][:SOAK_REQUESTS] for i in range(SOAK_CLIENTS)
    ]
    failures: list = []

    def client(idx: int) -> None:
        for password in pools[idx]:
            line = json.dumps({"op": "score", "password": password})
            response = json.loads(serve_app.handle_line(line))
            if not response.get("ok"):
                failures.append(response)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(SOAK_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not failures, failures[:3]

    stats = serve_app.stats_payload()
    served = SOAK_CLIENTS * SOAK_REQUESTS
    assert stats["requests"] >= served
    # micro-batching must actually happen under 8 concurrent closed loops
    assert stats["batches"] < served
    assert stats["mean_batch_size"] > 1.0
    ceiling = speedup_floor(P99_CEILING_MS, P99_CEILING_MS_CI)
    p99 = stats["latency"]["p99_ms"]
    assert p99 <= ceiling, (
        f"p99 request latency {p99:.1f} ms over the {ceiling:.0f} ms ceiling "
        f"(mean batch {stats['mean_batch_size']}, "
        f"histogram {stats['batch_size_histogram']})"
    )

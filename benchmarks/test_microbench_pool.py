"""Micro-benchmark: fork-server pool vs thread pool on a GIL-bound attack.

The whole point of :class:`~repro.runtime.ProcessPoolExecutor` is that a
GIL-bound strategy (markov, PCFG -- pure-Python sampling loops) gets real
multi-core throughput under the elastic schedule, where the thread-backed
:class:`~repro.runtime.WorkStealingExecutor` serializes every chunk on
one interpreter lock.  This bench runs the same elastic ``markov:3``
attack at 4 workers on both executors, checks the reports agree bit for
bit (the determinism contract at bench scale), and asserts the speedup
floor from the acceptance criteria: **>= 2x** elastic throughput over
threads.

The full 2x bar only makes sense with the cores to back it: on throttled
CI runners or boxes with fewer than 4 cores the floor relaxes to a
sanity bar (the pool must not be pathologically slower -- fork overhead,
delta shipping and the result queue all stay bounded), mirroring the
kernel benches' ``speedup_floor`` convention.
"""

import os

import numpy as np
import pytest

from benchmarks.conftest import best_seconds, speedup_floor
from repro.data.alphabet import compact_alphabet
from repro.data.synthetic import SyntheticConfig, SyntheticRockYou
from repro.runtime import ParallelAttackEngine, StrategySource

WORKERS = 4
BUDGETS = [15_000, 45_000]
SPEC = "markov:3?batch=256"


@pytest.fixture(scope="module")
def attack_data():
    alphabet = compact_alphabet()
    corpus = SyntheticRockYou(
        np.random.default_rng(5), SyntheticConfig(), alphabet
    ).generate(6000)
    split = len(corpus) // 2
    return {
        "train": corpus[:split],
        "test_set": set(corpus[split:]),
        "alphabet": alphabet,
    }


def _run(attack_data, executor):
    engine = ParallelAttackEngine(
        attack_data["test_set"],
        BUDGETS,
        workers=WORKERS,
        schedule="elastic",
        executor=executor,
    )
    source = StrategySource(
        SPEC, corpus=attack_data["train"], alphabet=attack_data["alphabet"]
    )
    return engine.run(source, seed=11)


def test_pool_speedup_floor_over_threads(attack_data):
    """Acceptance bar: >= 2x elastic throughput over the thread pool for a
    GIL-bound markov:3 attack at 4 workers (relaxed on CI / small boxes)."""
    try:
        thread_report = _run(attack_data, "worksteal")
        pool_report = _run(attack_data, "processpool")
    except ValueError:
        pytest.skip("no fork start method on this platform")
    # determinism before timings count: both executors must produce the
    # same report for this (seed, workers, schedule)
    rows = lambda r: [row.as_dict() for row in r.rows]  # noqa: E731
    assert rows(thread_report) == rows(pool_report)
    assert thread_report.matched_samples == pool_report.matched_samples

    thread_time = best_seconds(lambda: _run(attack_data, "worksteal"), repeats=2)
    pool_time = best_seconds(lambda: _run(attack_data, "processpool"), repeats=2)
    speedup = thread_time / pool_time
    full = 2.0 if (os.cpu_count() or 1) >= WORKERS else 0.25
    floor = speedup_floor(full, 0.25)
    assert speedup >= floor, (
        f"processpool {pool_time:.2f}s vs worksteal {thread_time:.2f}s "
        f"= {speedup:.2f}x, below the {floor}x floor"
    )

"""Benchmark: regenerate Table II (match % per method per budget).

Prints the scaled table and asserts the paper's headline ordering:
PassFlow-Static < PassFlow-Dynamic <= PassFlow-Dynamic+GS at the final
budget, with Dynamic+GS the best PassFlow variant.
"""

from repro.eval.experiments import table2
from repro.eval.experiments.common import collect_reports

from benchmarks.conftest import run_once, shape_assertions_enabled


def test_table2(benchmark, ctx):
    result = run_once(benchmark, lambda: table2.run(ctx))
    print("\n" + str(result))
    print("Table IV samples:", "  ".join(result.notes["non_matched_samples"][:8]))

    if not shape_assertions_enabled(ctx):
        return
    reports = collect_reports(ctx)
    final_budget = ctx.settings.guess_budgets[-1]
    static = reports["PassFlow-Static"].row_at(final_budget).matched
    dynamic = reports["PassFlow-Dynamic"].row_at(final_budget).matched
    dynamic_gs = reports["PassFlow-Dynamic+GS"].row_at(final_budget).matched

    assert dynamic > static, "Dynamic Sampling must beat static sampling (Table II)"
    assert dynamic_gs > static, "Dynamic+GS must beat static sampling (Table II)"
    # single-seed match counts carry sampling noise at reduced scale; GS
    # must stay within noise of plain Dynamic while restoring uniqueness
    # (the uniqueness claim is asserted by the Table III benchmark)
    assert dynamic_gs >= 0.75 * dynamic, (
        f"GS must not materially hurt Dynamic: gs={dynamic_gs} dynamic={dynamic}"
    )

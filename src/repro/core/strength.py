"""Password-strength estimation from the flow's exact density.

The defensive application of this model family (Melicher et al., USENIX
Security '16, discussed in the paper's related work): a guessing model
doubles as a strength meter, because a password's guessability is monotone
in the model's probability of generating it.

PassFlow offers something GANs cannot -- exact log p(x) -- so strength
estimation is a single forward pass:

* :meth:`StrengthEstimator.log_prob` -- exact per-password log-density,
* :meth:`StrengthEstimator.guess_rank` -- Monte-Carlo estimate of the
  expected number of guesses before the password is generated,
* :meth:`StrengthEstimator.score` -- a calibrated 0..4 strength band
  (percentile against a reference corpus, zxcvbn-style bands).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.model import PassFlow

BAND_LABELS = ("very weak", "weak", "fair", "strong", "very strong")


class StrengthEstimator:
    """Strength meter built on a trained PassFlow model."""

    def __init__(self, model: PassFlow, reference: Optional[Sequence[str]] = None) -> None:
        self.model = model
        self._reference_log_probs: Optional[np.ndarray] = None
        if reference is not None:
            self.calibrate(reference)

    # ------------------------------------------------------------------
    def calibrate(self, reference: Sequence[str]) -> None:
        """Fit the percentile bands against a reference password corpus."""
        reference = [p for p in reference if p]
        if len(reference) < 10:
            raise ValueError("calibration needs at least 10 reference passwords")
        self._reference_log_probs = np.sort(self.model.log_prob(reference))

    @property
    def calibrated(self) -> bool:
        return self._reference_log_probs is not None

    # ------------------------------------------------------------------
    def log_prob(self, password: str) -> float:
        """Exact log p(password) under the model (at bin centers)."""
        return float(self.model.log_prob([password])[0])

    def guess_rank(
        self,
        password: str,
        sample_size: int = 4096,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Monte-Carlo guess-rank estimate (Dell'Amico & Filippone 2015).

        The guess rank of x is the number of passwords the model considers
        at least as likely as x.  Sampling y ~ model, that count equals
        E[ 1{p(y) >= p(x)} / p(y) ], so the estimator averages inverse
        densities over the samples that beat the target.  Weak (common)
        passwords get small ranks, strong ones astronomically large ones.
        """
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        rng = rng if rng is not None else self.model.rng_streams.get("strength")
        # the model's log_prob is a continuous density; the discrete
        # probability of a password is density * bin volume (bin_width^D)
        log_bin_volume = self.model.encoder.max_length * np.log(
            self.model.encoder.bin_width
        )
        target = self.log_prob(password) + log_bin_volume
        guesses = [g for g in self.model.sample_passwords(sample_size, rng=rng) if g]
        if not guesses:
            return 1.0
        sample_log_probs = self.model.log_prob(guesses) + log_bin_volume
        beats = sample_log_probs >= target
        if not np.any(beats):
            return 1.0  # nothing likelier in the sample: rank ~ 1
        # average of 1/p(y) over beating samples, normalized by sample size
        inverse_probs = np.exp(-np.clip(sample_log_probs[beats], -60.0, None))
        return 1.0 + float(inverse_probs.sum() / len(guesses))

    def percentile(self, password: str) -> float:
        """Fraction of the reference corpus *weaker* (likelier) than this."""
        if not self.calibrated:
            raise RuntimeError("calibrate() the estimator first")
        target = self.log_prob(password)
        weaker = np.searchsorted(self._reference_log_probs, target)
        # likelier passwords sort to the right; weakness is high density
        return 1.0 - weaker / len(self._reference_log_probs)

    def score(self, password: str) -> int:
        """0..4 strength band from the reference percentile."""
        percentile = self.percentile(password)
        bands = np.array([0.2, 0.5, 0.8, 0.95])
        return int(np.searchsorted(bands, percentile))

    def label(self, password: str) -> str:
        """Human-readable strength band."""
        return BAND_LABELS[self.score(password)]

    def report(self, passwords: Sequence[str]) -> List[dict]:
        """Strength summary rows for a batch of passwords."""
        rows = []
        for password in passwords:
            entry = {"password": password, "log_prob": round(self.log_prob(password), 2)}
            if self.calibrated:
                entry["percentile"] = round(self.percentile(password), 3)
                entry["band"] = self.label(password)
            rows.append(entry)
        return rows

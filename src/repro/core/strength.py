"""Password-strength estimation from the flow's exact density.

The defensive application of this model family (Melicher et al., USENIX
Security '16, discussed in the paper's related work): a guessing model
doubles as a strength meter, because a password's guessability is monotone
in the model's probability of generating it.

PassFlow offers something GANs cannot -- exact log p(x) -- so strength
estimation is a single forward pass:

* :meth:`StrengthEstimator.log_prob` -- exact per-password log-density,
* :meth:`StrengthEstimator.guess_rank` -- Monte-Carlo estimate of the
  expected number of guesses before the password is generated,
* :meth:`StrengthEstimator.score` -- a calibrated 0..4 strength band
  (percentile against a reference corpus, zxcvbn-style bands).

Serving-tier hot path: the scalar methods cost one flow evaluation *per
password*, which is what a request-per-call service would pay.  The
``*_batch`` methods (:meth:`StrengthEstimator.log_prob_batch`,
:meth:`StrengthEstimator.percentile_batch`,
:meth:`StrengthEstimator.score_batch`) push a whole batch through the
vectorized encoder and one flow pass per ``batch_size`` chunk instead.

Bitwise determinism (the contract the micro-batching daemon in
:mod:`repro.serve` is built on): BLAS picks different accumulation
orders for different matrix shapes, so the *same* password can come back
with different low bits depending on how many rows share its evaluation.
The estimator therefore pads **every** flow evaluation -- scalar and
batched -- to exactly :data:`EVAL_ROWS` rows.  A password's row is then
always computed at one canonical gemm shape, and its result is bitwise
identical whether it was scored alone, in a CLI batch, or in whatever
micro-batch interleaving the daemon happened to flush (per-row results
are independent of the other rows' contents and positions; the padded
rows are discarded).

Unencodable passwords (over-length, out-of-alphabet) raise in the scalar
methods; the batch methods mark them with defined sentinels instead
(:data:`UNSCORABLE_SCORE` / ``nan`` log-probs), so one bad request in a
micro-batch cannot take down its neighbors.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.model import PassFlow

BAND_LABELS = ("very weak", "weak", "fair", "strong", "very strong")

#: Fixed row count of every strength evaluation.  Short chunks are padded
#: up to this shape (repeating a real row) so the flow always runs one
#: canonical gemm shape -- the mechanism behind the scalar == batched
#: bitwise guarantee; see the module docstring.  ``batch_size`` arguments
#: above this value are capped to it.
EVAL_ROWS = 64

#: Sentinel returned by :meth:`StrengthEstimator.score_batch` for
#: passwords the model's codec cannot represent (never a valid 0..4 band).
UNSCORABLE_SCORE = -1

#: Band label paired with :data:`UNSCORABLE_SCORE`.
UNSCORABLE_LABEL = "unscorable"


class StrengthEstimator:
    """Strength meter built on a trained PassFlow model."""

    def __init__(self, model: PassFlow, reference: Optional[Sequence[str]] = None) -> None:
        self.model = model
        self._reference_log_probs: Optional[np.ndarray] = None
        if reference is not None:
            self.calibrate(reference)

    # ------------------------------------------------------------------
    def calibrate(self, reference: Sequence[str]) -> None:
        """Fit the percentile bands against a reference password corpus."""
        reference = [p for p in reference if p]
        if len(reference) < 10:
            raise ValueError("calibration needs at least 10 reference passwords")
        self._reference_log_probs = np.sort(self.model.log_prob(reference))

    @property
    def calibrated(self) -> bool:
        return self._reference_log_probs is not None

    # ------------------------------------------------------------------
    def log_prob(self, password: str) -> float:
        """Exact log p(password) under the model (at bin centers).

        Routed through the same fixed-shape evaluation as the batch path,
        so the value is bitwise identical to the one a daemon micro-batch
        would return for this password.
        """
        if not self.model.encoder.can_encode(password):
            # surface the codec's own error, exactly as a direct call would
            self.model.log_prob([password])
        return float(self.log_prob_batch([password])[0])

    def guess_rank(
        self,
        password: str,
        sample_size: int = 4096,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Monte-Carlo guess-rank estimate (Dell'Amico & Filippone 2015).

        The guess rank of x is the number of passwords the model considers
        at least as likely as x.  Sampling y ~ model, that count equals
        E[ 1{p(y) >= p(x)} / p(y) ], so the estimator averages inverse
        densities over the samples that beat the target.  Weak (common)
        passwords get small ranks, strong ones astronomically large ones.
        """
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        rng = rng if rng is not None else self.model.rng_streams.get("strength")
        # the model's log_prob is a continuous density; the discrete
        # probability of a password is density * bin volume (bin_width^D)
        log_bin_volume = self.model.encoder.max_length * np.log(
            self.model.encoder.bin_width
        )
        target = self.log_prob(password) + log_bin_volume
        guesses = [g for g in self.model.sample_passwords(sample_size, rng=rng) if g]
        if not guesses:
            return 1.0
        sample_log_probs = self.model.log_prob(guesses) + log_bin_volume
        beats = sample_log_probs >= target
        if not np.any(beats):
            return 1.0  # nothing likelier in the sample: rank ~ 1
        # average of 1/p(y) over beating samples, normalized by sample size
        inverse_probs = np.exp(-np.clip(sample_log_probs[beats], -60.0, None))
        return 1.0 + float(inverse_probs.sum() / len(guesses))

    def percentile(self, password: str) -> float:
        """Fraction of the reference corpus *weaker* (likelier) than this."""
        if not self.calibrated:
            raise RuntimeError("calibrate() the estimator first")
        target = self.log_prob(password)
        weaker = np.searchsorted(self._reference_log_probs, target)
        # likelier passwords sort to the right; weakness is high density
        return 1.0 - weaker / len(self._reference_log_probs)

    def score(self, password: str) -> int:
        """0..4 strength band from the reference percentile."""
        percentile = self.percentile(password)
        bands = np.array([0.2, 0.5, 0.8, 0.95])
        return int(np.searchsorted(bands, percentile))

    def label(self, password: str) -> str:
        """Human-readable strength band."""
        return BAND_LABELS[self.score(password)]

    # ------------------------------------------------------------------
    # batch-vectorized path (the serving tier's hot path)
    # ------------------------------------------------------------------
    def log_prob_batch(
        self, passwords: Sequence[str], batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Exact log p per password in chunked vectorized flow passes.

        Returns an (N,) float64 array bitwise equal to
        ``[self.log_prob(p) for p in passwords]`` for encodable inputs;
        unencodable entries (over-length / out-of-alphabet, which the
        scalar path raises on) come back as ``nan`` sentinels.

        ``batch_size`` bounds the real rows per flow evaluation (capped
        at :data:`EVAL_ROWS`, the fixed evaluation shape): scoring N
        passwords makes exactly ``ceil(N_encodable / min(batch_size,
        EVAL_ROWS))`` flow calls (``None`` = full :data:`EVAL_ROWS`
        chunks), which is both the memory bound and the call-count seam
        the CLI/daemon tests pin.  Every call is padded to exactly
        :data:`EVAL_ROWS` rows, so the returned bits do not depend on
        the chunking.
        """
        passwords = list(passwords)
        out = np.full(len(passwords), np.nan, dtype=np.float64)
        if not passwords:
            return out
        encodable = [i for i, p in enumerate(passwords) if self.model.encoder.can_encode(p)]
        if not encodable:
            return out
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        step = EVAL_ROWS if batch_size is None else min(int(batch_size), EVAL_ROWS)
        for start in range(0, len(encodable), step):
            chunk = encodable[start : start + step]
            rows = [passwords[i] for i in chunk]
            # pad to the canonical shape: a few wasted flops buy
            # shape-invariant bits (see EVAL_ROWS)
            padded = rows + [rows[0]] * (EVAL_ROWS - len(rows))
            out[chunk] = self.model.log_prob(padded)[: len(rows)]
        return out

    def _percentiles_from_log_probs(self, log_probs: np.ndarray) -> np.ndarray:
        """Log-probs -> reference percentiles; ``nan`` passes through."""
        if not self.calibrated:
            raise RuntimeError("calibrate() the estimator first")
        valid = ~np.isnan(log_probs)
        out = np.full(log_probs.shape, np.nan, dtype=np.float64)
        weaker = np.searchsorted(self._reference_log_probs, log_probs[valid])
        out[valid] = 1.0 - weaker / len(self._reference_log_probs)
        return out

    @staticmethod
    def _scores_from_percentiles(percentiles: np.ndarray) -> np.ndarray:
        """Percentiles -> int64 bands; ``nan`` -> :data:`UNSCORABLE_SCORE`."""
        valid = ~np.isnan(percentiles)
        out = np.full(percentiles.shape, UNSCORABLE_SCORE, dtype=np.int64)
        bands = np.array([0.2, 0.5, 0.8, 0.95])
        out[valid] = np.searchsorted(bands, percentiles[valid])
        return out

    def percentile_batch(
        self, passwords: Sequence[str], batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Vectorized :meth:`percentile`; ``nan`` for unencodable entries."""
        return self._percentiles_from_log_probs(
            self.log_prob_batch(passwords, batch_size=batch_size)
        )

    def score_batch(
        self, passwords: Sequence[str], batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Vectorized :meth:`score`: (N,) int64 of 0..4 bands.

        Bitwise identical to ``[self.score(p) for p in passwords]`` for
        encodable inputs; unencodable entries are the
        :data:`UNSCORABLE_SCORE` sentinel (-1), never an exception.
        """
        return self._scores_from_percentiles(
            self.percentile_batch(passwords, batch_size=batch_size)
        )

    def evaluate_batch(
        self, passwords: Sequence[str], batch_size: Optional[int] = None
    ):
        """One flow pass, every strength view: ``(log_probs, percentiles,
        scores)`` arrays, sentinel-aware.

        The serving tier's flush function: computing the three views
        separately would cost three flow evaluations; this costs one.
        """
        log_probs = self.log_prob_batch(passwords, batch_size=batch_size)
        percentiles = self._percentiles_from_log_probs(log_probs)
        return log_probs, percentiles, self._scores_from_percentiles(percentiles)

    def labels_from_scores(self, scores: np.ndarray) -> List[str]:
        """Band labels for a :meth:`score_batch` result (sentinel-aware)."""
        return [
            UNSCORABLE_LABEL if score == UNSCORABLE_SCORE else BAND_LABELS[int(score)]
            for score in np.asarray(scores)
        ]

    def report(
        self, passwords: Sequence[str], batch_size: Optional[int] = None
    ) -> List[dict]:
        """Strength summary rows for a batch of passwords.

        Runs on the batch-vectorized path (one flow evaluation per
        ``batch_size`` chunk rather than per password); unencodable
        passwords get ``None`` log-probs and the ``unscorable`` band.
        """
        passwords = list(passwords)
        percentiles = scores = None
        if self.calibrated:
            log_probs, percentiles, scores = self.evaluate_batch(
                passwords, batch_size=batch_size
            )
        else:
            log_probs = self.log_prob_batch(passwords, batch_size=batch_size)
        rows = []
        for i, password in enumerate(passwords):
            encodable = not np.isnan(log_probs[i])
            entry = {
                "password": password,
                "log_prob": round(float(log_probs[i]), 2) if encodable else None,
            }
            if self.calibrated:
                entry["percentile"] = (
                    round(float(percentiles[i]), 3) if encodable else None
                )
                entry["band"] = (
                    BAND_LABELS[int(scores[i])] if encodable else UNSCORABLE_LABEL
                )
            rows.append(entry)
        return rows

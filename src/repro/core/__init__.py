"""PassFlow: the paper's primary contribution.

* :mod:`repro.core.model` -- the PassFlow model (flow over encoded
  passwords) and its NLL training loop (Sec. III, IV-D),
* :mod:`repro.core.penalization` -- the phi functions of Sec. III-B/IV-B
  (step function plus the decay variants proposed as future work),
* :mod:`repro.core.sampling` -- static sampling (PassFlow-Static),
* :mod:`repro.core.dynamic` -- Dynamic Sampling with Penalization
  (Algorithm 1, Table I parameters),
* :mod:`repro.core.smoothing` -- data-space Gaussian Smoothing (Sec. III-C),
* :mod:`repro.core.interpolation` -- latent interpolation (Algorithm 2),
* :mod:`repro.core.conditional` -- conditional guessing extension
  (Sec. VII future work),
* :mod:`repro.core.guesser` -- guess accounting and reports.

The strategy implementations themselves live behind the unified
:mod:`repro.strategies` API (protocol + spec-string registry + streaming
engine); :class:`StaticSampler`/:class:`DynamicSampler` remain as
deprecated facades over it.
"""

from repro.core.model import PassFlow, PassFlowConfig, TrainingHistory
from repro.core.penalization import (
    ExponentialDecayPenalization,
    LinearDecayPenalization,
    NoPenalization,
    PhiFunction,
    StepPenalization,
)
from repro.core.sampling import StaticSampler
from repro.core.dynamic import DynamicSampler, DynamicSamplingConfig, paper_schedule
from repro.core.smoothing import GaussianSmoother
from repro.core.interpolation import interpolate
from repro.core.conditional import ConditionalGuesser
from repro.core.guesser import GuessingAttack, GuessingReport
from repro.core.strength import StrengthEstimator

__all__ = [
    "PassFlow",
    "PassFlowConfig",
    "TrainingHistory",
    "PhiFunction",
    "StepPenalization",
    "LinearDecayPenalization",
    "ExponentialDecayPenalization",
    "NoPenalization",
    "StaticSampler",
    "DynamicSampler",
    "DynamicSamplingConfig",
    "paper_schedule",
    "GaussianSmoother",
    "interpolate",
    "ConditionalGuesser",
    "GuessingAttack",
    "GuessingReport",
    "StrengthEstimator",
]

"""Penalization functions phi (Sec. III-B, IV-B).

phi weights each matched latent point in the Eq. 14 mixture as a function of
how many iterations it has conditioned the prior (its usage count).  The
paper's experiments use a step function: weight 1 while the count is below a
threshold gamma, 0 after.  Sec. VII proposes studying other functions; we
provide smooth decays and ship an ablation benchmark comparing them.
"""

from __future__ import annotations

import numpy as np


class PhiFunction:
    """Maps a vector of usage counts to mixture weights in [0, 1]."""

    def __call__(self, usage_counts: np.ndarray) -> np.ndarray:
        counts = np.asarray(usage_counts, dtype=np.float64)
        if np.any(counts < 0):
            raise ValueError("usage counts must be non-negative")
        return self._weights(counts)

    def _weights(self, counts: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class NoPenalization(PhiFunction):
    """phi = 1: uniform weighting regardless of history.

    This is the Pasquini et al. [33] weighting and the "without phi" arm of
    Fig. 5.
    """

    def _weights(self, counts: np.ndarray) -> np.ndarray:
        return np.ones_like(counts)


class StepPenalization(PhiFunction):
    """The paper's phi: 1 while count < gamma, 0 afterwards (Sec. IV-B)."""

    def __init__(self, gamma: int) -> None:
        if gamma < 1:
            raise ValueError("gamma must be >= 1")
        self.gamma = int(gamma)

    def _weights(self, counts: np.ndarray) -> np.ndarray:
        return (counts < self.gamma).astype(np.float64)

    def __repr__(self) -> str:
        return f"StepPenalization(gamma={self.gamma})"


class LinearDecayPenalization(PhiFunction):
    """Weight decays linearly from 1 to 0 over ``horizon`` uses."""

    def __init__(self, horizon: int) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.horizon = int(horizon)

    def _weights(self, counts: np.ndarray) -> np.ndarray:
        return np.clip(1.0 - counts / self.horizon, 0.0, 1.0)

    def __repr__(self) -> str:
        return f"LinearDecayPenalization(horizon={self.horizon})"


class ExponentialDecayPenalization(PhiFunction):
    """Weight = decay^count; never exactly zero but vanishing."""

    def __init__(self, decay: float = 0.5) -> None:
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.decay = float(decay)

    def _weights(self, counts: np.ndarray) -> np.ndarray:
        return self.decay**counts

    def __repr__(self) -> str:
        return f"ExponentialDecayPenalization(decay={self.decay})"

"""Guessing-attack accounting and reports.

Every evaluation in the paper reduces to: generate N guesses from some
model/sampler, count how many *unique test-set passwords* were matched and
how many *unique guesses* were produced, at a series of guess budgets
(Tables II and III).  This module owns that accounting so every sampler and
baseline reports identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set


@dataclass
class BudgetRow:
    """One row of a Table II/III-style report."""

    guesses: int
    unique: int
    matched: int
    match_percent: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "guesses": self.guesses,
            "unique": self.unique,
            "matched": self.matched,
            "match_percent": self.match_percent,
        }


@dataclass
class GuessingReport:
    """Full result of one guessing attack."""

    method: str
    test_size: int
    rows: List[BudgetRow] = field(default_factory=list)
    non_matched_samples: List[str] = field(default_factory=list)
    matched_samples: List[str] = field(default_factory=list)

    def row_at(self, guesses: int) -> BudgetRow:
        for row in self.rows:
            if row.guesses == guesses:
                return row
        raise KeyError(f"no checkpoint at {guesses} guesses")

    def final(self) -> BudgetRow:
        if not self.rows:
            raise ValueError("report has no rows")
        return self.rows[-1]


class GuessAccounting:
    """Streaming accounting of generated guesses against a test set.

    Mirrors Algorithm 1's bookkeeping: ``total`` counts every generated
    guess (the num_guesses budget), ``unique`` the distinct guesses,
    ``matched`` the distinct test-set passwords hit (the set P).  Checkpoint
    rows are emitted exactly when the total crosses each requested budget.
    """

    def __init__(
        self,
        test_set: Set[str],
        budgets: Sequence[int],
        sample_cap: int = 16,
    ) -> None:
        if not budgets:
            raise ValueError("at least one guess budget is required")
        if sorted(budgets) != list(budgets):
            raise ValueError("budgets must be sorted ascending")
        if len(set(budgets)) != len(budgets):
            raise ValueError("budgets must be distinct")
        self.test_set = test_set
        self.budgets = list(budgets)
        self.sample_cap = sample_cap
        self.total = 0
        self.unique: Set[str] = set()
        self.matched: Set[str] = set()
        self.rows: List[BudgetRow] = []
        self.non_matched_samples: List[str] = []
        self.matched_samples: List[str] = []
        self._next_budget_index = 0

    @property
    def done(self) -> bool:
        """True once the largest budget has been reached."""
        return self._next_budget_index >= len(self.budgets)

    @property
    def remaining(self) -> int:
        """Guesses still to generate before the final budget."""
        if self.done:
            return 0
        return self.budgets[-1] - self.total

    def observe(self, passwords: Iterable[str]) -> List[int]:
        """Account a batch; returns indices (within batch) of new matches."""
        new_match_indices: List[int] = []
        for i, password in enumerate(passwords):
            if self.done:
                break
            self.total += 1
            if password not in self.unique:
                self.unique.add(password)
                if password in self.test_set:
                    if password not in self.matched:
                        self.matched.add(password)
                        new_match_indices.append(i)
                        if len(self.matched_samples) < self.sample_cap:
                            self.matched_samples.append(password)
                elif len(self.non_matched_samples) < self.sample_cap and password:
                    self.non_matched_samples.append(password)
            elif password in self.test_set and password not in self.matched:
                self.matched.add(password)
                new_match_indices.append(i)
            self._maybe_checkpoint()
        return new_match_indices

    def _maybe_checkpoint(self) -> None:
        while (
            self._next_budget_index < len(self.budgets)
            and self.total >= self.budgets[self._next_budget_index]
        ):
            budget = self.budgets[self._next_budget_index]
            percent = 100.0 * len(self.matched) / len(self.test_set) if self.test_set else 0.0
            self.rows.append(
                BudgetRow(
                    guesses=budget,
                    unique=len(self.unique),
                    matched=len(self.matched),
                    match_percent=percent,
                )
            )
            self._next_budget_index += 1

    def report(self, method: str) -> GuessingReport:
        """Finalize into a :class:`GuessingReport`."""
        return GuessingReport(
            method=method,
            test_size=len(self.test_set),
            rows=list(self.rows),
            non_matched_samples=list(self.non_matched_samples),
            matched_samples=list(self.matched_samples),
        )


class GuessingAttack:
    """Facade running any string generator through the accounting.

    ``generator`` is anything with ``sample_passwords(count, rng)`` or a
    plain callable ``(count, rng) -> list[str]``; this covers PassFlow in
    static mode and all the baselines.  Dynamic Sampling has its own driver
    (:class:`repro.core.dynamic.DynamicSampler`) because it feeds matches
    back into the prior.
    """

    def __init__(
        self,
        test_set: Set[str],
        budgets: Sequence[int],
        batch_size: int = 2048,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.test_set = set(test_set)
        self.budgets = list(budgets)
        self.batch_size = batch_size

    def run(self, generator, rng, method: str = "generator") -> GuessingReport:
        """Generate up to the final budget and return the report."""
        generate = getattr(generator, "sample_passwords", generator)
        accounting = GuessAccounting(self.test_set, self.budgets)
        while not accounting.done:
            count = min(self.batch_size, accounting.remaining)
            accounting.observe(generate(count, rng))
        return accounting.report(method)

"""Guessing-attack accounting and reports.

Every evaluation in the paper reduces to: generate N guesses from some
model/sampler, count how many *unique test-set passwords* were matched and
how many *unique guesses* were produced, at a series of guess budgets
(Tables II and III).  This module owns that accounting so every sampler and
baseline reports identically.

The accounting core is the hot path of the whole reproduction -- millions
of guesses flow through it per attack -- so :meth:`GuessAccounting.observe`
is batch-vectorized: test-set membership is decided for a whole batch at
once with a sorted int64 hash array and :func:`numpy.searchsorted`
(candidate hits are then verified exactly against the real set, so hash
collisions cannot corrupt a report), and uniqueness bookkeeping runs as
C-level set operations instead of a per-password Python loop.  The original
per-password loop survives as :meth:`GuessAccounting.observe_scalar` and is
the reference the parity tests compare against.

:meth:`GuessAccounting.observe_encoded` is the highest-throughput mode:
batches arrive as the (N, D) alphabet-index matrices every latent strategy
produces *before* string decoding, are interned into exact uint64 keys
(:meth:`repro.data.encoding.PasswordEncoder.pack_indices`), and membership,
uniqueness and checkpointing all run as integer array operations --
strings are materialized only for the handful of matches and report
samples.  An accounting instance locks into string or encoded mode on its
first observation; the two modes produce identical reports for identical
guess streams.

For the sharded runtime (:mod:`repro.runtime`) accounting states are

* **mergeable** -- :meth:`GuessAccounting.merge` folds another shard's
  counters into this one (totals add, unique/matched sets union),
* **snapshot/restorable** -- :meth:`GuessAccounting.snapshot` captures a
  picklable :class:`AccountingSnapshot` that
  :meth:`GuessAccounting.from_snapshot` rebuilds, and
* **delta-tracked** -- with ``track_deltas=True`` every checkpoint records
  the uniques/matches added since the previous checkpoint, which is what
  lets a merger reconstruct global Table II/III rows from per-shard
  streams.  String-mode accountings emit :class:`CheckpointDelta` (string
  lists); encoded-mode accountings emit :class:`KeyedCheckpointDelta`
  (packed uint64 arrays), so a 10^7-guess shard's delta payload is a few
  megabytes of integers instead of tens of megabytes of strings, and
  merging runs as sorted-array set operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

import numpy as np

from repro import kernels


@dataclass
class BudgetRow:
    """One row of a Table II/III-style report."""

    guesses: int
    unique: int
    matched: int
    match_percent: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form (JSON reports, cross-run row comparisons)."""
        return {
            "guesses": self.guesses,
            "unique": self.unique,
            "matched": self.matched,
            "match_percent": self.match_percent,
        }


@dataclass
class GuessingReport:
    """Full result of one guessing attack.

    ``shard_errors`` is non-empty only for elastic parallel runs in which
    a shard's strategy crashed and its budget was re-absorbed by the
    surviving shards: the rows are still exact for the guesses actually
    made, but the sample of the attack is smaller than requested, and
    consumers (the CLI prints a warning) should know.
    """

    method: str
    test_size: int
    rows: List[BudgetRow] = field(default_factory=list)
    non_matched_samples: List[str] = field(default_factory=list)
    matched_samples: List[str] = field(default_factory=list)
    shard_errors: List[str] = field(default_factory=list)
    kernel_backend: str = field(default_factory=kernels.active_name)

    def row_at(self, guesses: int) -> BudgetRow:
        """The checkpoint row at exactly ``guesses``; KeyError if absent."""
        for row in self.rows:
            if row.guesses == guesses:
                return row
        raise KeyError(f"no checkpoint at {guesses} guesses")

    def final(self) -> BudgetRow:
        """The last checkpoint row reached; ValueError on an empty report."""
        if not self.rows:
            raise ValueError("report has no rows")
        return self.rows[-1]

    def as_dict(self) -> Dict[str, object]:
        """Machine-readable form (``repro attack --report out.json``).

        ``kernel_backend`` records which kernel backend (see
        :mod:`repro.kernels`) produced the run, so reports from mixed
        environments stay attributable.  ``shard_errors`` appears only
        when a shard crashed.
        """
        payload: Dict[str, object] = {
            "method": self.method,
            "test_size": self.test_size,
            "kernel_backend": self.kernel_backend,
            "rows": [row.as_dict() for row in self.rows],
            "matched_samples": list(self.matched_samples),
            "non_matched_samples": list(self.non_matched_samples),
        }
        if self.shard_errors:
            payload["shard_errors"] = list(self.shard_errors)
        return payload


@dataclass
class CheckpointDelta:
    """Uniques/matches first seen between two consecutive checkpoints.

    The string-mode delta payload: ``new_unique`` holds every distinct
    guess first produced inside the checkpoint window, ``new_matched``
    every test-set password first hit inside it.  Contents are unordered
    (they are only ever unioned during merges).  Encoded-mode accountings
    emit :class:`KeyedCheckpointDelta` instead.
    """

    new_unique: List[str]
    new_matched: List[str]


@dataclass
class KeyedCheckpointDelta:
    """A checkpoint delta in interned-id key space (packed uint64 arrays).

    The encoded-mode counterpart of :class:`CheckpointDelta`:
    ``new_unique_keys`` is the *sorted* array of interned uint64 keys
    (:meth:`repro.data.encoding.PasswordEncoder.pack_indices`) first seen
    inside the checkpoint window; ``new_matched_keys`` the keys of test-set
    passwords first matched inside it.  Keys are in bijection with decoded
    strings (rows are canonicalized before packing), so unioning keyed
    deltas counts exactly what unioning the corresponding string deltas
    would -- at 8 bytes per unique guess instead of a Python string.
    Strings are only materialized on demand via :meth:`decode`.
    """

    new_unique_keys: np.ndarray
    new_matched_keys: np.ndarray

    @property
    def nbytes(self) -> int:
        """Raw transport payload size of both key arrays, in bytes."""
        return int(self.new_unique_keys.nbytes + self.new_matched_keys.nbytes)

    def decode(self, codec) -> CheckpointDelta:
        """Materialize the equivalent string-mode :class:`CheckpointDelta`.

        ``codec`` must be the :class:`~repro.data.encoding.PasswordEncoder`
        whose key space the delta was recorded in (shard outcomes carry
        it); decoding is exact because packing is a bijection on canonical
        rows.
        """
        return CheckpointDelta(
            new_unique=codec.strings_from_keys(self.new_unique_keys),
            new_matched=codec.strings_from_keys(self.new_matched_keys),
        )


#: Either delta flavor; one accounting emits only one flavor (its mode is
#: locked at first observation), but a merger may receive both.
Delta = Union[CheckpointDelta, KeyedCheckpointDelta]


def _copy_delta(delta: Delta) -> Delta:
    """Deep-enough copy of either delta flavor (snapshot/restore helper)."""
    if isinstance(delta, KeyedCheckpointDelta):
        return KeyedCheckpointDelta(
            new_unique_keys=np.array(delta.new_unique_keys, dtype=np.uint64),
            new_matched_keys=np.array(delta.new_matched_keys, dtype=np.uint64),
        )
    return CheckpointDelta(list(delta.new_unique), list(delta.new_matched))


@dataclass
class AccountingSnapshot:
    """Picklable capture of a :class:`GuessAccounting` (minus the test set).

    The test set is deliberately excluded -- it can be millions of entries
    and is shared by every shard -- so restoring requires passing the same
    set to :meth:`GuessAccounting.from_snapshot`.  ``seen_keys``,
    ``delta_base_keys`` and ``pending_matched_keys`` are only populated for
    encoded-mode accountings (the codec itself is not captured; the next
    ``observe_encoded`` call supplies it again).
    """

    budgets: List[int]
    sample_cap: int
    total: int
    unique: List[str]
    matched: List[str]
    rows: List[BudgetRow]
    non_matched_samples: List[str]
    matched_samples: List[str]
    next_budget_index: int
    track_deltas: bool
    deltas: List[Delta]
    pending_unique: List[str]
    pending_matched: List[str]
    mode: Optional[str] = None
    seen_keys: Optional[np.ndarray] = None
    delta_base_keys: Optional[np.ndarray] = None
    pending_matched_keys: Optional[List[int]] = None


def _hash_array(passwords: Iterable[str], count: int) -> np.ndarray:
    """int64 hashes of ``passwords`` (CPython caches str hashes, so later
    exact set operations on the same strings re-use this work)."""
    return np.fromiter(map(hash, passwords), dtype=np.int64, count=count)


def _sorted_contains(sorted_array: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Vectorized membership mask of ``values`` against a sorted array."""
    if sorted_array.size == 0:
        return np.zeros(len(values), dtype=bool)
    positions = np.minimum(
        np.searchsorted(sorted_array, values), sorted_array.size - 1
    )
    return sorted_array[positions] == values


def validate_budgets(budgets: Sequence[int]) -> List[int]:
    """The one guess-budget invariant: distinct, ascending, positive.

    Shared by the accounting, the shard planner, and (via a caught
    ValueError) the CLI, so the rule and its messages live in one place.
    """
    if not budgets:
        raise ValueError("at least one guess budget is required")
    if sorted(budgets) != list(budgets):
        raise ValueError("budgets must be sorted ascending")
    if len(set(budgets)) != len(budgets):
        raise ValueError("budgets must be distinct")
    if any(b < 1 for b in budgets):
        raise ValueError("budgets must be positive")
    return list(budgets)


def extend_samples(destination: List[str], additions: Sequence[str], cap: int) -> None:
    """Append fresh ``additions`` to a sample list, up to ``cap`` entries."""
    seen = set(destination)
    for password in additions:
        if len(destination) >= cap:
            return
        if password not in seen:
            destination.append(password)
            seen.add(password)


class GuessAccounting:
    """Streaming accounting of generated guesses against a test set.

    Mirrors Algorithm 1's bookkeeping: ``total`` counts every generated
    guess (the num_guesses budget), ``unique`` the distinct guesses,
    ``matched`` the distinct test-set passwords hit (the set P).  Checkpoint
    rows are emitted exactly when the total crosses each requested budget.
    """

    def __init__(
        self,
        test_set: Set[str],
        budgets: Sequence[int],
        sample_cap: int = 16,
        track_deltas: bool = False,
    ) -> None:
        self.test_set = test_set
        self.budgets = validate_budgets(budgets)
        self.sample_cap = sample_cap
        self.total = 0
        self.unique: Set[str] = set()
        self.matched: Set[str] = set()
        self.rows: List[BudgetRow] = []
        self.non_matched_samples: List[str] = []
        self.matched_samples: List[str] = []
        self._next_budget_index = 0
        self._track_deltas = bool(track_deltas)
        self.deltas: List[CheckpointDelta] = []
        self._pending_unique: Set[str] = set()
        self._pending_matched: List[str] = []
        # Sorted hash array backing the vectorized membership test; hash
        # hits are always verified against the real set, so this is a
        # filter, never an oracle.
        if test_set:
            self._test_hashes: Optional[np.ndarray] = np.sort(
                _hash_array(test_set, len(test_set))
            )
        else:
            self._test_hashes = None
        # Encoded ("interned id") mode state: an accounting locks into
        # string or encoded mode on first observation.
        self._mode: Optional[str] = None
        self._packed_test: Optional[np.ndarray] = None
        self._seen_keys = np.empty(0, dtype=np.uint64)
        self._pending_keys: List[np.ndarray] = []
        # Encoded delta tracking: the seen-key array as of the previous
        # checkpoint (diffed at the next one) plus the keys of matches made
        # since; the codec is remembered so merges can intern fresh matches.
        self._delta_base_keys = np.empty(0, dtype=np.uint64)
        self._pending_matched_keys: List[int] = []
        self._codec = None

    @property
    def done(self) -> bool:
        """True once the largest budget has been reached."""
        return self._next_budget_index >= len(self.budgets)

    @property
    def remaining(self) -> int:
        """Guesses still to generate before the final budget."""
        if self.done:
            return 0
        return self.budgets[-1] - self.total

    def _lock_mode(self, mode: str) -> None:
        if self._mode is None:
            self._mode = mode
        elif self._mode != mode:
            raise ValueError(
                f"accounting already observed in {self._mode!r} mode; "
                f"cannot switch to {mode!r}"
            )

    def _unique_count(self) -> int:
        """Distinct guesses so far (exact in both modes)."""
        if self._mode == "encoded":
            self._compact_keys()
            return int(self._seen_keys.size)
        return len(self.unique)

    @property
    def mode(self) -> Optional[str]:
        """``"strings"``, ``"encoded"``, or ``None`` before any observation."""
        return self._mode

    @property
    def supports_encoded(self) -> bool:
        """Whether :meth:`observe_encoded` is usable on this accounting.

        True until a string-mode observation locks the string path; delta
        tracking is available in both modes (encoded accountings emit
        :class:`KeyedCheckpointDelta` payloads).
        """
        return self._mode in (None, "encoded")

    @property
    def codec(self):
        """The codec of encoded observations so far (``None`` otherwise).

        Recorded on the first :meth:`observe_encoded` call; shard outcomes
        ship it alongside keyed deltas so a merger can decode them back to
        strings when a sibling shard fell back to string-mode deltas.
        """
        return self._codec

    # ------------------------------------------------------------------
    # vectorized path (the default)
    # ------------------------------------------------------------------
    def observe(self, passwords: Iterable[str]) -> List[int]:
        """Account a batch; returns indices (within batch) of new matches.

        Batch-vectorized: equivalent to :meth:`observe_scalar` item for
        item (same counters, rows, samples, and returned indices) but runs
        set membership and uniqueness updates at batch granularity.
        """
        self._lock_mode("strings")
        if self.done:
            return []
        batch = passwords if isinstance(passwords, list) else list(passwords)
        new_match_indices: List[int] = []
        offset = 0
        while offset < len(batch) and not self.done:
            # split at the next budget boundary so every checkpoint row
            # captures the counters at exactly the crossing guess
            boundary = self.budgets[self._next_budget_index] - self.total
            take = min(len(batch) - offset, boundary)
            self._observe_segment(batch[offset : offset + take], offset, new_match_indices)
            self.total += take
            offset += take
            self._maybe_checkpoint()
        return new_match_indices

    def _observe_segment(
        self, segment: List[str], offset: int, new_match_indices: List[int]
    ) -> None:
        """Account one budget-aligned slice of a batch (no checkpointing)."""
        # -- matches: vectorized hash filter, exact verification on hits --
        if self._test_hashes is not None and segment:
            hashes = _hash_array(segment, len(segment))
            hits = np.nonzero(_sorted_contains(self._test_hashes, hashes))[0]
            for i in hits.tolist():
                password = segment[i]
                if password in self.matched or password not in self.test_set:
                    continue  # repeat match, or a raw hash collision
                self.matched.add(password)
                new_match_indices.append(offset + i)
                if self._track_deltas:
                    self._pending_matched.append(password)
                if (
                    password not in self.unique
                    and len(self.matched_samples) < self.sample_cap
                ):
                    self.matched_samples.append(password)
        # -- non-matched samples: ordered scan only until the cap fills --
        if len(self.non_matched_samples) < self.sample_cap:
            seen_in_scan: Set[str] = set()
            for password in segment:
                if len(self.non_matched_samples) >= self.sample_cap:
                    break
                if (
                    password
                    and password not in seen_in_scan
                    and password not in self.unique
                    and password not in self.test_set
                ):
                    self.non_matched_samples.append(password)
                seen_in_scan.add(password)
        # -- uniqueness: one C-level set union --
        if self._track_deltas:
            fresh = set(segment)
            fresh.difference_update(self.unique)
            self._pending_unique |= fresh
        self.unique.update(segment)

    # ------------------------------------------------------------------
    # scalar reference path (parity tests, Algorithm 1 verbatim)
    # ------------------------------------------------------------------
    def observe_scalar(self, passwords: Iterable[str]) -> List[int]:
        """The original per-password loop; semantics-defining reference."""
        self._lock_mode("strings")
        new_match_indices: List[int] = []
        for i, password in enumerate(passwords):
            if self.done:
                break
            self.total += 1
            if password not in self.unique:
                self.unique.add(password)
                if self._track_deltas:
                    self._pending_unique.add(password)
                if password in self.test_set:
                    if password not in self.matched:
                        self._note_match(password, i, new_match_indices, sample=True)
                elif len(self.non_matched_samples) < self.sample_cap and password:
                    self.non_matched_samples.append(password)
            elif password in self.test_set and password not in self.matched:
                self._note_match(password, i, new_match_indices, sample=False)
            self._maybe_checkpoint()
        return new_match_indices

    def _note_match(
        self, password: str, index: int, out: List[int], sample: bool
    ) -> None:
        self.matched.add(password)
        out.append(index)
        if self._track_deltas:
            self._pending_matched.append(password)
        if sample and len(self.matched_samples) < self.sample_cap:
            self.matched_samples.append(password)

    # ------------------------------------------------------------------
    # encoded path (interned uint64 ids; strings only for matches/samples)
    # ------------------------------------------------------------------
    def observe_encoded(self, index_matrix: np.ndarray, codec) -> List[int]:
        """Account a batch given as an (N, D) alphabet-index matrix.

        ``codec`` is a :class:`~repro.data.encoding.PasswordEncoder` (or
        anything with ``pack_indices`` / ``pack_passwords`` /
        ``strings_from_indices`` / ``strings_from_keys``).  Rows are
        interned into exact uint64 keys, so membership and uniqueness run
        entirely on integer arrays; the report is identical to
        ``observe(codec.strings_from_indices(m))`` but skips string
        materialization for everything except matches and samples.  With
        ``track_deltas`` each checkpoint emits a
        :class:`KeyedCheckpointDelta` -- packed key arrays, never strings
        -- which is how shard workers keep result-queue traffic compact.
        An accounting cannot mix string and encoded observations.
        """
        self._lock_mode("encoded")
        if self._codec is None:
            self._codec = codec
        index_matrix = np.asarray(index_matrix, dtype=np.int64)
        if self.done or index_matrix.size == 0:
            return []
        index_matrix = np.atleast_2d(index_matrix)
        keys = codec.pack_indices(index_matrix)
        if self._packed_test is None:
            if self.test_set:
                # targets the codec cannot represent (over-length,
                # out-of-alphabet) can never be produced by an encoded
                # stream, so dropping them from the packed filter is exact
                try:
                    packable = self.test_set
                    packed = codec.pack_passwords(packable)
                except (KeyError, ValueError):
                    packable = [p for p in self.test_set if codec.can_encode(p)]
                    packed = codec.pack_passwords(packable)
                self._packed_test = np.sort(packed)
            else:
                self._packed_test = np.empty(0, dtype=np.uint64)
        new_match_indices: List[int] = []
        offset = 0
        while offset < len(keys) and not self.done:
            boundary = self.budgets[self._next_budget_index] - self.total
            take = min(len(keys) - offset, boundary)
            self._observe_keys_segment(
                keys[offset : offset + take],
                index_matrix[offset : offset + take],
                offset,
                codec,
                new_match_indices,
            )
            self.total += take
            offset += take
            self._maybe_checkpoint()
        return new_match_indices

    def _observe_keys_segment(
        self,
        seg_keys: np.ndarray,
        seg_rows: np.ndarray,
        offset: int,
        codec,
        new_match_indices: List[int],
    ) -> None:
        sampling = len(self.non_matched_samples) < self.sample_cap
        if sampling:
            # compact so the sample scan can test seenness with one sorted
            # array; cheap while the cap is still filling (early stream)
            self._compact_keys()
        # -- matches: exact interned-id membership, decode hits only --
        if self._packed_test.size:
            hits = np.nonzero(_sorted_contains(self._packed_test, seg_keys))[0]
            if hits.size:
                hit_strings = codec.strings_from_indices(seg_rows[hits])
                for i, password in zip(hits.tolist(), hit_strings):
                    if password in self.matched:
                        continue
                    self.matched.add(password)
                    new_match_indices.append(offset + int(i))
                    if self._track_deltas:
                        self._pending_matched_keys.append(int(seg_keys[i]))
                    if len(self.matched_samples) < self.sample_cap and not self._key_seen(
                        seg_keys[i]
                    ):
                        self.matched_samples.append(password)
        # -- non-matched samples: first occurrences of fresh non-test keys --
        if sampling:
            first_keys, first_positions = np.unique(seg_keys, return_index=True)
            wanted = first_keys != 0  # drop the empty password
            wanted &= ~_sorted_contains(self._packed_test, first_keys)
            wanted &= ~_sorted_contains(self._seen_keys, first_keys)
            for i in np.sort(first_positions[wanted]).tolist():
                if len(self.non_matched_samples) >= self.sample_cap:
                    break
                self.non_matched_samples.append(
                    codec.strings_from_indices(seg_rows[i : i + 1])[0]
                )
        self._pending_keys.append(np.array(seg_keys, copy=True))

    def _key_seen(self, key: np.uint64) -> bool:
        """Was this interned id observed in any *previous* segment?"""
        if bool(_sorted_contains(self._seen_keys, np.array([key]))[0]):
            return True
        return any(bool((block == key).any()) for block in self._pending_keys)

    def _compact_keys(self) -> None:
        """Fold pending per-batch key arrays into the sorted seen array."""
        if not self._pending_keys:
            return
        new = np.unique(np.concatenate(self._pending_keys))
        self._pending_keys = []
        if not self._seen_keys.size:
            self._seen_keys = new
            return
        fresh = new[~_sorted_contains(self._seen_keys, new)]
        if fresh.size:
            insert_at = np.searchsorted(self._seen_keys, fresh)
            self._seen_keys = np.insert(self._seen_keys, insert_at, fresh)

    # ------------------------------------------------------------------
    def _emit_row(self, guesses: int) -> BudgetRow:
        """Append one checkpoint row (and its delta, when tracked)."""
        percent = (
            100.0 * len(self.matched) / len(self.test_set) if self.test_set else 0.0
        )
        row = BudgetRow(
            guesses=guesses,
            unique=self._unique_count(),
            matched=len(self.matched),
            match_percent=percent,
        )
        self.rows.append(row)
        if self._track_deltas:
            self.deltas.append(self._take_delta())
        return row

    def _maybe_checkpoint(self) -> None:
        """Emit a row (and delta, when tracked) per budget the total crossed."""
        while (
            self._next_budget_index < len(self.budgets)
            and self.total >= self.budgets[self._next_budget_index]
        ):
            self._emit_row(self.budgets[self._next_budget_index])
            self._next_budget_index += 1

    def cut_checkpoint(self) -> Optional[BudgetRow]:
        """Force a checkpoint at the current total, off the budget grid.

        The elastic runtime closes every budget *window* with a cut: a row
        labeled with exactly the guesses accounted so far plus (when delta
        tracking is on) the delta of everything added since the previous
        checkpoint -- which is how a shard that ran dry mid-window still
        ships its tail guesses to the merger.  A no-op returning ``None``
        when the total already sits on the last emitted checkpoint (or
        nothing was observed yet), so callers may invoke it defensively.
        """
        if self.total == 0 or (self.rows and self.rows[-1].guesses == self.total):
            return None
        return self._emit_row(self.total)

    def _take_delta(self) -> Delta:
        """Collect what this checkpoint window added, resetting the window.

        Encoded mode diffs the sorted seen-key array against its state at
        the previous checkpoint (both arrays are sorted and unique, so the
        diff is one :func:`numpy.setdiff1d` pass) and emits a
        :class:`KeyedCheckpointDelta`; string mode drains the pending
        string sets into a :class:`CheckpointDelta`.
        """
        if self._mode == "encoded":
            self._compact_keys()
            new_unique_keys = np.setdiff1d(
                self._seen_keys, self._delta_base_keys, assume_unique=True
            )
            self._delta_base_keys = self._seen_keys
            new_matched_keys = np.array(self._pending_matched_keys, dtype=np.uint64)
            self._pending_matched_keys = []
            return KeyedCheckpointDelta(
                new_unique_keys=new_unique_keys, new_matched_keys=new_matched_keys
            )
        delta = CheckpointDelta(
            new_unique=list(self._pending_unique),
            new_matched=list(self._pending_matched),
        )
        self._pending_unique = set()
        self._pending_matched = []
        return delta

    # ------------------------------------------------------------------
    # merge / snapshot (the sharded runtime's primitives)
    # ------------------------------------------------------------------
    def merge(self, other: "GuessAccounting") -> "GuessAccounting":
        """Fold another accounting (e.g. a finished shard) into this one.

        Totals add and unique/matched sets union, so overlapping shards
        are counted correctly (a password guessed by two shards is one
        unique guess and at most one match).  Sample lists concatenate in
        argument order up to the cap.  Checkpoint rows for budgets crossed
        by the *combined* total are emitted with the merged counters --
        the merge-at-checkpoint discipline -- so only merge states that
        are aligned on a budget boundary when row history matters
        (:class:`repro.runtime.ParallelAttackEngine` guarantees this via
        its shard planner).  Returns ``self``.
        """
        if self.budgets != other.budgets:
            raise ValueError(
                f"cannot merge accountings with different budgets: "
                f"{self.budgets} vs {other.budgets}"
            )
        modes = {self._mode, other._mode} - {None}
        if len(modes) == 2:
            raise ValueError("cannot merge string-mode and encoded-mode accountings")
        if "encoded" in modes:
            self._compact_keys()
            other._compact_keys()
            self._seen_keys = np.union1d(self._seen_keys, other._seen_keys)
            self._mode = "encoded"
            if self._packed_test is None:
                self._packed_test = other._packed_test
            if self._codec is None:
                self._codec = other._codec
            if self._track_deltas:
                # unique-key deltas need no bookkeeping here: the next
                # checkpoint diff against _delta_base_keys picks up every
                # merged-in key; fresh matches are interned so the delta
                # stays in key space
                fresh_matches = sorted(other.matched - self.matched)
                if fresh_matches:
                    if self._codec is None:
                        raise ValueError(
                            "cannot merge matches into a delta-tracked encoded "
                            "accounting before any observation supplies a codec"
                        )
                    self._pending_matched_keys.extend(
                        int(key) for key in self._codec.pack_passwords(fresh_matches)
                    )
        elif self._track_deltas:
            self._pending_unique |= other.unique - self.unique
            already = set(self._pending_matched)
            self._pending_matched.extend(
                p for p in sorted(other.matched - self.matched) if p not in already
            )
        self.total += other.total
        self.unique |= other.unique
        self.matched |= other.matched
        self._extend_samples(self.matched_samples, other.matched_samples)
        self._extend_samples(self.non_matched_samples, other.non_matched_samples)
        self._maybe_checkpoint()
        return self

    def _extend_samples(self, mine: List[str], theirs: Sequence[str]) -> None:
        extend_samples(mine, theirs, self.sample_cap)

    def snapshot(self) -> AccountingSnapshot:
        """Capture the full mutable state (test set excluded) picklably."""
        self._compact_keys()
        return AccountingSnapshot(
            budgets=list(self.budgets),
            sample_cap=self.sample_cap,
            total=self.total,
            unique=sorted(self.unique),
            matched=sorted(self.matched),
            rows=[BudgetRow(**row.as_dict()) for row in self.rows],
            non_matched_samples=list(self.non_matched_samples),
            matched_samples=list(self.matched_samples),
            next_budget_index=self._next_budget_index,
            track_deltas=self._track_deltas,
            deltas=[_copy_delta(d) for d in self.deltas],
            pending_unique=sorted(self._pending_unique),
            pending_matched=list(self._pending_matched),
            mode=self._mode,
            seen_keys=self._seen_keys.copy() if self._mode == "encoded" else None,
            delta_base_keys=(
                self._delta_base_keys.copy() if self._mode == "encoded" else None
            ),
            pending_matched_keys=list(self._pending_matched_keys),
        )

    @classmethod
    def from_snapshot(
        cls, snapshot: AccountingSnapshot, test_set: Set[str]
    ) -> "GuessAccounting":
        """Rebuild an accounting from :meth:`snapshot` and its test set."""
        accounting = cls(
            test_set,
            snapshot.budgets,
            sample_cap=snapshot.sample_cap,
            track_deltas=snapshot.track_deltas,
        )
        accounting.total = snapshot.total
        accounting.unique = set(snapshot.unique)
        accounting.matched = set(snapshot.matched)
        accounting.rows = [BudgetRow(**row.as_dict()) for row in snapshot.rows]
        accounting.non_matched_samples = list(snapshot.non_matched_samples)
        accounting.matched_samples = list(snapshot.matched_samples)
        accounting._next_budget_index = snapshot.next_budget_index
        accounting.deltas = [_copy_delta(d) for d in snapshot.deltas]
        accounting._pending_unique = set(snapshot.pending_unique)
        accounting._pending_matched = list(snapshot.pending_matched)
        accounting._mode = snapshot.mode
        if snapshot.seen_keys is not None:
            accounting._seen_keys = np.array(snapshot.seen_keys, dtype=np.uint64)
        if snapshot.delta_base_keys is not None:
            accounting._delta_base_keys = np.array(
                snapshot.delta_base_keys, dtype=np.uint64
            )
        if snapshot.pending_matched_keys:
            accounting._pending_matched_keys = list(snapshot.pending_matched_keys)
        return accounting

    def report(self, method: str) -> GuessingReport:
        """Finalize into a :class:`GuessingReport`."""
        return GuessingReport(
            method=method,
            test_size=len(self.test_set),
            rows=list(self.rows),
            non_matched_samples=list(self.non_matched_samples),
            matched_samples=list(self.matched_samples),
        )


class GuessingAttack:
    """Facade running any string generator through the accounting.

    ``generator`` is anything with ``sample_passwords(count, rng)`` or a
    plain callable ``(count, rng) -> list[str]``; this covers PassFlow in
    static mode and all the baselines.  Dynamic Sampling has its own driver
    (:class:`repro.core.dynamic.DynamicSampler`) because it feeds matches
    back into the prior.
    """

    def __init__(
        self,
        test_set: Set[str],
        budgets: Sequence[int],
        batch_size: int = 2048,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.test_set = set(test_set)
        self.budgets = list(budgets)
        self.batch_size = batch_size

    def run(self, generator, rng, method: str = "generator") -> GuessingReport:
        """Generate up to the final budget and return the report."""
        generate = getattr(generator, "sample_passwords", generator)
        accounting = GuessAccounting(self.test_set, self.budgets)
        while not accounting.done:
            count = min(self.batch_size, accounting.remaining)
            accounting.observe(generate(count, rng))
        return accounting.report(method)

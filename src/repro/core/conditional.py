"""Conditional password guessing (Sec. VII future work, implemented).

The paper notes PassFlow cannot directly do conditional guessing ("given
'jimmy**', guess 'jimmy91'") because plain flows model the joint density
only.  We implement the extension via *latent evolutionary search*: treat
the known characters as a constraint, search the latent space for
high-density points whose decodings satisfy it.

The procedure:

1. seed a population by encoding random completions of the template,
2. iterate: perturb latents with Gaussian noise, decode, discard candidates
   that violate the fixed positions, rank survivors by exact model
   log-density (a capability GANs cannot offer), keep the elite,
3. return the distinct feasible decodings, highest density first.

This leans on the two properties the paper proves: latent smoothness
(neighbours of feasible points are near-feasible) and exact density
evaluation (ranking).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import PassFlow

WILDCARD = "*"


def matches_template(password: str, template: str) -> bool:
    """Whether ``password`` satisfies the template's fixed characters."""
    if len(password) != len(template):
        return False
    return all(t == WILDCARD or p == t for p, t in zip(password, template))


class ConditionalGuesser:
    """Template-constrained guessing over a trained PassFlow model."""

    def __init__(
        self,
        model: PassFlow,
        population: int = 128,
        elite_fraction: float = 0.25,
        noise_scale: float = 0.15,
    ) -> None:
        if population < 4:
            raise ValueError("population must be >= 4")
        if not 0.0 < elite_fraction <= 1.0:
            raise ValueError("elite_fraction must be in (0, 1]")
        if noise_scale <= 0:
            raise ValueError("noise_scale must be positive")
        self.model = model
        self.population = population
        self.elite = max(1, int(population * elite_fraction))
        self.noise_scale = noise_scale

    # ------------------------------------------------------------------
    def _random_completions(self, template: str, count: int, rng) -> List[str]:
        chars = self.model.alphabet.chars
        out = []
        for _ in range(count):
            filled = [
                ch if ch != WILDCARD else chars[int(rng.integers(0, len(chars)))]
                for ch in template
            ]
            out.append("".join(filled))
        return out

    def _feasible_scores(self, passwords: List[str], template: str) -> Tuple[List[str], np.ndarray]:
        feasible = [p for p in passwords if matches_template(p, template)]
        if not feasible:
            return [], np.empty(0)
        return feasible, self.model.log_prob(feasible)

    # ------------------------------------------------------------------
    def guess(
        self,
        template: str,
        rounds: int = 8,
        top_k: int = 10,
        rng: Optional[np.random.Generator] = None,
    ) -> List[str]:
        """Return up to ``top_k`` completions, highest model density first."""
        if WILDCARD not in template:
            return [template]
        if len(template) > self.model.encoder.max_length:
            raise ValueError("template longer than model max_length")
        if not all(
            ch == WILDCARD or ch in self.model.alphabet for ch in template
        ):
            raise ValueError("template contains characters outside the alphabet")
        rng = rng if rng is not None else self.model.rng_streams.get("conditional")

        seeds = self._random_completions(template, self.population, rng)
        latents = self.model.encode_passwords(seeds)
        best: Dict[str, float] = {}

        for _ in range(rounds):
            noise = rng.normal(0.0, self.noise_scale, size=latents.shape)
            candidates = latents + noise
            decoded = self.model.decode_latents(candidates)
            feasible, scores = self._feasible_scores(decoded, template)
            for password, score in zip(feasible, scores):
                previous = best.get(password)
                if previous is None or score > previous:
                    best[password] = float(score)
            if best:
                elite_passwords = [
                    p for p, _ in sorted(best.items(), key=lambda kv: -kv[1])[: self.elite]
                ]
                elite_latents = self.model.encode_passwords(elite_passwords)
                repeats = int(np.ceil(self.population / len(elite_latents)))
                latents = np.tile(elite_latents, (repeats, 1))[: self.population]
            # else keep wandering from the current population

        ranked = sorted(best.items(), key=lambda kv: -kv[1])
        return [password for password, _ in ranked[:top_k]]

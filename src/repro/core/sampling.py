"""Static sampling: PassFlow-Static (Table II/III).

Draw latents from the trained prior, invert the flow, bin to strings.  No
feedback, no prior adaptation -- the plain generative process of Sec. II.
Optionally applies Gaussian Smoothing to break collisions.

.. deprecated::
    The streaming implementation lives in
    :class:`repro.strategies.passflow.StaticStrategy`; drive it with an
    :class:`repro.strategies.AttackEngine`.  :meth:`StaticSampler.attack`
    remains as a thin shim and produces bit-identical reports.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence, Set

import numpy as np

from repro.core.guesser import GuessingReport
from repro.core.model import PassFlow
from repro.core.smoothing import GaussianSmoother
from repro.flows.priors import Prior


class StaticSampler:
    """Fixed-prior guess generator over a trained PassFlow model.

    Deprecated facade over :class:`repro.strategies.passflow.StaticStrategy`.
    """

    def __init__(
        self,
        model: PassFlow,
        batch_size: int = 2048,
        smoother: Optional[GaussianSmoother] = None,
        prior: Optional[Prior] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model = model
        self.batch_size = batch_size
        self.smoother = smoother
        self.prior = prior

    def attack(
        self,
        test_set: Set[str],
        budgets: Sequence[int],
        rng: np.random.Generator,
        method: str = "PassFlow-Static",
    ) -> GuessingReport:
        """Generate guesses up to the final budget; return the report."""
        warnings.warn(
            "StaticSampler.attack is deprecated; build a strategy with "
            "repro.strategies.build('passflow:static', model=...) and run it "
            "through repro.strategies.AttackEngine",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.strategies.engine import AttackEngine
        from repro.strategies.passflow import StaticStrategy

        strategy = StaticStrategy(
            self.model,
            prior=self.prior,
            smoother=self.smoother,
            batch_size=self.batch_size,
            name=method,
        )
        return AttackEngine(test_set, budgets).run(strategy, rng, method=method)

"""Static sampling: PassFlow-Static (Table II/III).

Draw latents from the trained prior, invert the flow, bin to strings.  No
feedback, no prior adaptation -- the plain generative process of Sec. II.
Optionally applies Gaussian Smoothing to break collisions.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

import numpy as np

from repro.core.guesser import GuessAccounting, GuessingReport
from repro.core.model import PassFlow
from repro.core.smoothing import GaussianSmoother
from repro.flows.priors import Prior


class StaticSampler:
    """Fixed-prior guess generator over a trained PassFlow model."""

    def __init__(
        self,
        model: PassFlow,
        batch_size: int = 2048,
        smoother: Optional[GaussianSmoother] = None,
        prior: Optional[Prior] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model = model
        self.batch_size = batch_size
        self.smoother = smoother
        self.prior = prior

    def attack(
        self,
        test_set: Set[str],
        budgets: Sequence[int],
        rng: np.random.Generator,
        method: str = "PassFlow-Static",
    ) -> GuessingReport:
        """Generate guesses up to the final budget; return the report."""
        accounting = GuessAccounting(set(test_set), list(budgets))
        while not accounting.done:
            count = min(self.batch_size, accounting.remaining)
            latents = self.model.sample_latents(count, rng=rng, prior=self.prior)
            features = self.model.decode_latents_to_features(latents)
            passwords = self.model.encoder.decode_batch(features)
            if self.smoother is not None:
                passwords = self.smoother.smooth(
                    passwords, features, accounting.unique, rng
                )
            accounting.observe(passwords)
        return accounting.report(method)

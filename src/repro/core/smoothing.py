"""Data-space Gaussian Smoothing (Sec. III-C).

The flow maps the continuous latent space onto a discrete password space, so
distinct latents frequently decode to the same string (collisions) --
especially under Dynamic Sampling with small sigma.  GS breaks collisions by
incrementally adding small Gaussian perturbations *in data space* to samples
that collide with an already-generated guess, re-binning after each
perturbation.  The noise scale is kept on the order of one encoding bin so
the perturbed password stays in the neighbourhood of the original.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

from repro.data.encoding import PasswordEncoder


class GaussianSmoother:
    """Collision-breaking perturbation in data space.

    Parameters
    ----------
    encoder:
        The password codec (provides bin geometry and decoding).
    sigma_scale:
        Noise std as a multiple of the encoding bin width.  The paper keeps
        "the variance of the Gaussian small" so samples remain neighbours.
    max_attempts:
        How many incremental perturbations to try per colliding sample.
    """

    def __init__(
        self,
        encoder: PasswordEncoder,
        sigma_scale: float = 0.75,
        max_attempts: int = 4,
    ) -> None:
        if sigma_scale <= 0:
            raise ValueError("sigma_scale must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.encoder = encoder
        self.sigma = sigma_scale * encoder.bin_width
        self.max_attempts = max_attempts

    def smooth(
        self,
        passwords: Sequence[str],
        features: Optional[np.ndarray],
        seen: Set[str],
        rng: np.random.Generator,
    ) -> List[str]:
        """Return passwords with collisions perturbed away where possible.

        ``features`` are the pre-binning data-space floats the passwords
        were decoded from; when ``None`` (string-only generators) the bin
        centers of the passwords are used as the starting point.
        """
        passwords = list(passwords)
        if features is None:
            features = self.encoder.encode_batch(passwords)
        features = np.array(np.atleast_2d(features), dtype=np.float64, copy=True)
        if features.shape[0] != len(passwords):
            raise ValueError("features/passwords length mismatch")

        # Collisions are duplicates against everything generated so far,
        # *including earlier samples of this batch*.
        working = set(seen)
        colliding: List[int] = []
        for i, password in enumerate(passwords):
            if password and password not in working:
                working.add(password)
            else:
                colliding.append(i)
        if not colliding:
            return passwords

        for _ in range(self.max_attempts):
            if not colliding:
                break
            idx = np.array(colliding)
            noise = rng.normal(0.0, self.sigma, size=(len(idx), features.shape[1]))
            features[idx] += noise
            decoded = self.encoder.decode_batch(features[idx])
            still: List[int] = []
            for j, candidate in zip(idx, decoded):
                if candidate and candidate not in working:
                    working.add(candidate)
                    passwords[j] = candidate
                else:
                    still.append(int(j))
            colliding = still
        return passwords

"""Dynamic Sampling with Penalization (Algorithm 1, Sec. III-B / IV-A/B).

The sampler starts from the trained prior.  Once more than ``alpha`` test
passwords have been matched, the sampling prior becomes the Eq. 14 mixture
of Gaussians centered on the latents of matched passwords, each weighted by
phi of its usage count.  phi drives exploration: a component that has
conditioned the prior for gamma batches is dropped (step phi), pushing the
search into fresher high-density regions.

The streaming implementation (batching notes included) lives in
:class:`repro.strategies.passflow.DynamicStrategy`; this module keeps the
Algorithm 1 configuration/schedule plus :class:`DynamicSampler`, a
deprecated facade whose ``attack`` produces bit-identical reports through
the :class:`repro.strategies.AttackEngine`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.core.guesser import GuessingReport
from repro.core.model import PassFlow
from repro.core.penalization import PhiFunction, StepPenalization
from repro.core.smoothing import GaussianSmoother
from repro.flows.priors import GaussianMixturePrior


@dataclass
class DynamicSamplingConfig:
    """Algorithm 1 parameters (Table I)."""

    alpha: int = 5
    sigma: float = 0.12
    phi: PhiFunction = field(default_factory=lambda: StepPenalization(gamma=2))
    batch_size: int = 2048
    max_components: int = 512

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.max_components < 1:
            raise ValueError("max_components must be >= 1")


#: Table I — "the dynamic sampling parameters used to obtain the number of
#: matches reported in Table III", keyed by guess budget.
PAPER_SCHEDULE = {
    10**4: {"alpha": 1, "sigma": 0.12, "gamma": 2},
    10**5: {"alpha": 1, "sigma": 0.12, "gamma": 2},
    10**6: {"alpha": 5, "sigma": 0.12, "gamma": 2},
    10**7: {"alpha": 50, "sigma": 0.12, "gamma": 10},
    10**8: {"alpha": 50, "sigma": 0.15, "gamma": 10},
}


def paper_schedule(num_guesses: int, batch_size: int = 2048) -> DynamicSamplingConfig:
    """Table I parameters for a guess budget (nearest bucket at or below).

    Budgets below 10^4 reuse the 10^4 row, matching the paper's smallest
    reported scale.
    """
    if num_guesses < 1:
        raise ValueError("num_guesses must be >= 1")
    eligible = [b for b in sorted(PAPER_SCHEDULE) if b <= num_guesses]
    bucket = eligible[-1] if eligible else min(PAPER_SCHEDULE)
    row = PAPER_SCHEDULE[bucket]
    return DynamicSamplingConfig(
        alpha=row["alpha"],
        sigma=row["sigma"],
        phi=StepPenalization(gamma=row["gamma"]),
        batch_size=batch_size,
    )


class DynamicSampler:
    """Algorithm 1: feedback-driven guess generation.

    Deprecated facade over
    :class:`repro.strategies.passflow.DynamicStrategy`; the matched-latent
    memory (M, Mh) lives on the wrapped strategy and is exposed through the
    ``matched_latents`` / ``usage_counts`` properties for continuity.
    """

    def __init__(
        self,
        model: PassFlow,
        config: Optional[DynamicSamplingConfig] = None,
        smoother: Optional[GaussianSmoother] = None,
    ) -> None:
        from repro.strategies.passflow import DynamicStrategy

        self._strategy = DynamicStrategy(model, config, smoother=smoother)

    @property
    def model(self) -> PassFlow:
        return self._strategy.model

    @property
    def config(self) -> DynamicSamplingConfig:
        return self._strategy.config

    @property
    def smoother(self) -> Optional[GaussianSmoother]:
        return self._strategy.smoother

    # The sets M and Mh of Algorithm 1 (delegated to the strategy).
    @property
    def matched_latents(self) -> List[np.ndarray]:
        return self._strategy.matched_latents

    @matched_latents.setter
    def matched_latents(self, value: List[np.ndarray]) -> None:
        self._strategy.matched_latents = list(value)

    @property
    def usage_counts(self) -> List[int]:
        return self._strategy.usage_counts

    @usage_counts.setter
    def usage_counts(self, value: List[int]) -> None:
        self._strategy.usage_counts = list(value)

    # ------------------------------------------------------------------
    # prior construction (Eq. 14)
    # ------------------------------------------------------------------
    def _mixture_prior(self) -> Optional[GaussianMixturePrior]:
        return self._strategy.mixture_prior()

    def _note_usage(self) -> None:
        self._strategy._note_usage()

    # ------------------------------------------------------------------
    # attack loop
    # ------------------------------------------------------------------
    def attack(
        self,
        test_set: Set[str],
        budgets: Sequence[int],
        rng: np.random.Generator,
        method: str = "PassFlow-Dynamic",
    ) -> GuessingReport:
        """Run Algorithm 1 up to the final budget; return the report."""
        warnings.warn(
            "DynamicSampler.attack is deprecated; build a strategy with "
            "repro.strategies.build('passflow:dynamic', model=...) and run it "
            "through repro.strategies.AttackEngine",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.strategies.engine import AttackEngine

        return AttackEngine(test_set, budgets).run(self._strategy, rng, method=method)

"""Dynamic Sampling with Penalization (Algorithm 1, Sec. III-B / IV-A/B).

The sampler starts from the trained prior.  Once more than ``alpha`` test
passwords have been matched, the sampling prior becomes the Eq. 14 mixture
of Gaussians centered on the latents of matched passwords, each weighted by
phi of its usage count.  phi drives exploration: a component that has
conditioned the prior for gamma batches is dropped (step phi), pushing the
search into fresher high-density regions.

Implementation notes (Sec. IV-A is written per-guess; we batch):

* usage counts (the Mh dictionary) increment once per *batch* for every
  component active in the mixture that produced the batch;
* when every component is penalized to zero weight, the sampler falls back
  to the base prior (the paper leaves this case unspecified; falling back
  resumes global exploration, and new matches re-enable the mixture);
* the latent stored in M for a matched password is the sampled z that
  produced it, exactly as in Algorithm 1 line 8;
* ``max_components`` caps the mixture at the most recent matches to bound
  per-batch cost at paper-scale budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.core.guesser import GuessAccounting, GuessingReport
from repro.core.model import PassFlow
from repro.core.penalization import PhiFunction, StepPenalization
from repro.core.smoothing import GaussianSmoother
from repro.flows.priors import GaussianMixturePrior


@dataclass
class DynamicSamplingConfig:
    """Algorithm 1 parameters (Table I)."""

    alpha: int = 5
    sigma: float = 0.12
    phi: PhiFunction = field(default_factory=lambda: StepPenalization(gamma=2))
    batch_size: int = 2048
    max_components: int = 512

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.max_components < 1:
            raise ValueError("max_components must be >= 1")


#: Table I — "the dynamic sampling parameters used to obtain the number of
#: matches reported in Table III", keyed by guess budget.
PAPER_SCHEDULE = {
    10**4: {"alpha": 1, "sigma": 0.12, "gamma": 2},
    10**5: {"alpha": 1, "sigma": 0.12, "gamma": 2},
    10**6: {"alpha": 5, "sigma": 0.12, "gamma": 2},
    10**7: {"alpha": 50, "sigma": 0.12, "gamma": 10},
    10**8: {"alpha": 50, "sigma": 0.15, "gamma": 10},
}


def paper_schedule(num_guesses: int, batch_size: int = 2048) -> DynamicSamplingConfig:
    """Table I parameters for a guess budget (nearest bucket at or below).

    Budgets below 10^4 reuse the 10^4 row, matching the paper's smallest
    reported scale.
    """
    if num_guesses < 1:
        raise ValueError("num_guesses must be >= 1")
    eligible = [b for b in sorted(PAPER_SCHEDULE) if b <= num_guesses]
    bucket = eligible[-1] if eligible else min(PAPER_SCHEDULE)
    row = PAPER_SCHEDULE[bucket]
    return DynamicSamplingConfig(
        alpha=row["alpha"],
        sigma=row["sigma"],
        phi=StepPenalization(gamma=row["gamma"]),
        batch_size=batch_size,
    )


class DynamicSampler:
    """Algorithm 1: feedback-driven guess generation."""

    def __init__(
        self,
        model: PassFlow,
        config: Optional[DynamicSamplingConfig] = None,
        smoother: Optional[GaussianSmoother] = None,
    ) -> None:
        self.model = model
        self.config = config or DynamicSamplingConfig()
        self.smoother = smoother
        # The sets M and Mh of Algorithm 1.
        self.matched_latents: List[np.ndarray] = []
        self.usage_counts: List[int] = []

    # ------------------------------------------------------------------
    # prior construction (Eq. 14)
    # ------------------------------------------------------------------
    def _mixture_prior(self) -> Optional[GaussianMixturePrior]:
        if len(self.matched_latents) <= self.config.alpha:
            return None
        start = max(0, len(self.matched_latents) - self.config.max_components)
        latents = np.stack(self.matched_latents[start:])
        counts = np.asarray(self.usage_counts[start:], dtype=np.float64)
        weights = self.config.phi(counts)
        if weights.sum() <= 0.0:
            return None  # everything penalized: fall back to base prior
        self._active_window = (start, weights > 0.0)
        return GaussianMixturePrior(latents, self.config.sigma, weights)

    def _note_usage(self) -> None:
        start, active = self._active_window
        for offset, is_active in enumerate(active):
            if is_active:
                self.usage_counts[start + offset] += 1

    # ------------------------------------------------------------------
    # attack loop
    # ------------------------------------------------------------------
    def attack(
        self,
        test_set: Set[str],
        budgets: Sequence[int],
        rng: np.random.Generator,
        method: str = "PassFlow-Dynamic",
    ) -> GuessingReport:
        """Run Algorithm 1 up to the final budget; return the report."""
        accounting = GuessAccounting(set(test_set), list(budgets))
        while not accounting.done:
            count = min(self.config.batch_size, accounting.remaining)
            prior = self._mixture_prior()
            latents = self.model.sample_latents(count, rng=rng, prior=prior)
            if prior is not None:
                self._note_usage()
            features = self.model.decode_latents_to_features(latents)
            passwords = self.model.encoder.decode_batch(features)
            if self.smoother is not None:
                passwords = self.smoother.smooth(
                    passwords, features, accounting.unique, rng
                )
            new_match_indices = accounting.observe(passwords)
            for index in new_match_indices:
                self.matched_latents.append(latents[index])
                self.usage_counts.append(0)
        return accounting.report(method)

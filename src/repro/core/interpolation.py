"""Latent interpolation (Algorithm 2, Sec. IV-C / Fig. 3).

Walk a straight line in latent space from the representation of a start
password to that of a target password, mapping each intermediate point back
through f^-1.  The smoothness of the learned latent space (Sec. V-B) makes
the intermediate points decode to realistic passwords.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.model import PassFlow


def interpolate(
    model: PassFlow,
    start: str,
    target: str,
    steps: int = 10,
    include_endpoints: bool = True,
) -> List[str]:
    """Algorithm 2: passwords along the latent line start -> target.

    Returns ``steps + 1`` decoded passwords (j = 0..steps), the first/last
    of which decode the endpoint latents themselves.  Set
    ``include_endpoints=False`` to return only the interior points.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    z = model.encode_passwords([start, target])
    z1, z2 = z[0], z[1]
    delta = (z2 - z1) / steps
    js = np.arange(0, steps + 1)
    points = z1[None, :] + delta[None, :] * js[:, None]
    decoded = model.decode_latents(points)
    if include_endpoints:
        return decoded
    return decoded[1:-1]


def interpolation_grid(
    model: PassFlow,
    anchors: List[str],
    steps: int = 6,
) -> List[List[str]]:
    """Pairwise interpolations between consecutive anchor passwords.

    Convenience for qualitative latent-space tours (examples / Fig. 3
    variants): returns one interpolation list per consecutive anchor pair.
    """
    if len(anchors) < 2:
        raise ValueError("need at least two anchors")
    return [
        interpolate(model, a, b, steps=steps)
        for a, b in zip(anchors[:-1], anchors[1:])
    ]

"""The PassFlow model: configuration, construction and training.

Architecture (Sec. III-A, IV-D): a dequantize+logit preprocessing bijector
followed by 18 affine coupling layers whose s/t nets are residual MLPs
(2 blocks, hidden 256), with alternating char-run-1 binary masks; trained
with Adam (lr 1e-3, batch 512) on exact NLL (Eq. 7).  All sizes are
configurable so tests and CPU-scale experiments can shrink the network; the
``paper()`` constructor pins the published values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.autograd import Tensor
from repro.data.alphabet import Alphabet, default_alphabet
from repro.data.dataset import PasswordDataset
from repro.data.encoding import PasswordEncoder
from repro.flows import (
    ActNorm,
    AffineCoupling,
    Flow,
    LogitTransform,
    StandardNormalPrior,
    alternating_masks,
)
from repro.flows.priors import Prior
from repro.nn.optim import Adam
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream
from repro.utils.serialization import load_checkpoint, save_checkpoint

logger = get_logger("core.model")


@dataclass
class PassFlowConfig:
    """Hyper-parameters of the PassFlow architecture and training loop."""

    max_length: int = 10
    alphabet_chars: Optional[str] = None  # None -> library default alphabet
    num_couplings: int = 18
    hidden: int = 256
    num_blocks: int = 2
    coupling_type: str = "affine"  # "affine" (RealNVP, the paper) or "additive" (NICE)
    mask_strategy: str = "char-run-1"
    scale_clamp: float = 2.0
    logit_alpha: float = 0.05
    use_actnorm: bool = False
    learning_rate: float = 1e-3
    batch_size: int = 512
    epochs: int = 400
    grad_clip_norm: Optional[float] = 50.0
    seed: int = 0

    @classmethod
    def paper(cls) -> "PassFlowConfig":
        """Exactly the published configuration (Sec. IV-D)."""
        return cls()

    @classmethod
    def small(cls, seed: int = 0) -> "PassFlowConfig":
        """CPU-scale configuration for experiments in this repository."""
        return cls(num_couplings=8, hidden=48, epochs=30, batch_size=256, seed=seed)

    @classmethod
    def tiny(cls, seed: int = 0) -> "PassFlowConfig":
        """Smallest useful configuration, for unit tests."""
        return cls(num_couplings=4, hidden=24, epochs=5, batch_size=128, seed=seed)


@dataclass
class TrainingHistory:
    """Per-epoch records produced by :meth:`PassFlow.fit`."""

    nll: List[float] = field(default_factory=list)
    grad_norm: List[float] = field(default_factory=list)
    val_nll: List[float] = field(default_factory=list)

    @property
    def best_epoch(self) -> int:
        """Index of the lowest-NLL epoch ("we pick the best performing epoch").

        Uses validation NLL when it was tracked, training NLL otherwise.
        """
        series = self.val_nll if self.val_nll else self.nll
        if not series:
            raise ValueError("history is empty")
        return int(np.argmin(series))


class PassFlow:
    """Flow-based password guessing model.

    High-level API:

    * :meth:`fit` -- NLL training on a :class:`PasswordDataset` or raw list,
    * :meth:`sample_passwords` -- draw guesses (optionally under an
      alternative prior: this is the hook Dynamic Sampling uses),
    * :meth:`encode_passwords` / :meth:`decode_latents` -- the explicit
      latent mapping f / f^-1 that GANs lack (Sec. I),
    * :meth:`log_prob` -- exact per-password log-density,
    * :meth:`save` / :meth:`load` -- checkpointing.
    """

    def __init__(self, config: Optional[PassFlowConfig] = None) -> None:
        self.config = config or PassFlowConfig()
        chars = self.config.alphabet_chars
        self.alphabet = Alphabet(chars) if chars else default_alphabet()
        self.encoder = PasswordEncoder(self.alphabet, max_length=self.config.max_length)
        self.rng_streams = RngStream(self.config.seed)
        self.flow = self._build_flow()
        self.history = TrainingHistory()

    def _build_flow(self) -> Flow:
        cfg = self.config
        dim = cfg.max_length
        init_rng = self.rng_streams.get("weights")
        if cfg.coupling_type not in ("affine", "additive"):
            raise ValueError("coupling_type must be 'affine' or 'additive'")
        bijectors = [LogitTransform(alpha=cfg.logit_alpha)]
        masks = alternating_masks(cfg.mask_strategy, dim, cfg.num_couplings)
        for mask in masks:
            if cfg.use_actnorm:
                bijectors.append(ActNorm(dim))
            if cfg.coupling_type == "affine":
                bijectors.append(
                    AffineCoupling(
                        mask,
                        hidden=cfg.hidden,
                        num_blocks=cfg.num_blocks,
                        scale_clamp=cfg.scale_clamp,
                        rng=init_rng,
                    )
                )
            else:
                from repro.flows.additive import AdditiveCoupling

                bijectors.append(
                    AdditiveCoupling(
                        mask, hidden=cfg.hidden, num_blocks=cfg.num_blocks, rng=init_rng
                    )
                )
        return Flow(bijectors, prior=StandardNormalPrior(dim))

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(
        self,
        data: Union[PasswordDataset, Sequence[str]],
        epochs: Optional[int] = None,
        batch_size: Optional[int] = None,
        verbose: bool = False,
        keep_best: bool = False,
        validation: Optional[Sequence[str]] = None,
    ) -> TrainingHistory:
        """Train by minimizing Eq. 7's mean NLL; returns the epoch history.

        With ``keep_best=True`` the weights of the best epoch are restored
        at the end -- Sec. IV-D: "We pick the best performing epoch for our
        password generation task".  "Best" means lowest validation NLL when
        ``validation`` passwords are given, lowest training NLL otherwise.
        """
        dataset = self._as_dataset(data)
        epochs = epochs if epochs is not None else self.config.epochs
        batch_size = batch_size if batch_size is not None else self.config.batch_size
        optimizer = Adam(
            self.flow.parameters(),
            lr=self.config.learning_rate,
            clip_norm=self.config.grad_clip_norm,
        )
        train_rng = self.rng_streams.get("train")
        val_features = (
            self.encoder.encode_batch(list(validation)) if validation else None
        )
        best_metric = np.inf
        best_state = None
        self.flow.train()
        for epoch in range(epochs):
            losses: List[float] = []
            norms: List[float] = []
            for batch in dataset.batches(batch_size, train_rng):
                optimizer.zero_grad()
                loss = self.flow.nll(Tensor(batch))
                loss.backward()
                norms.append(optimizer.grad_global_norm())
                optimizer.step()
                losses.append(loss.item())
            epoch_nll = float(np.mean(losses))
            if not np.isfinite(epoch_nll):
                raise FloatingPointError(
                    f"training diverged at epoch {epoch + 1} (NLL={epoch_nll})"
                )
            self.history.nll.append(epoch_nll)
            self.history.grad_norm.append(float(np.mean(norms)))
            if val_features is not None:
                metric = -float(np.mean(self.flow.log_prob(val_features)))
                self.history.val_nll.append(metric)
            else:
                metric = epoch_nll
            if keep_best and metric < best_metric:
                best_metric = metric
                best_state = self.flow.state_dict()
            if verbose:
                logger.info("epoch %d/%d nll=%.4f", epoch + 1, epochs, epoch_nll)
        if keep_best and best_state is not None:
            self.flow.load_state_dict(best_state)
        self.flow.eval()
        return self.history

    def _as_dataset(self, data: Union[PasswordDataset, Sequence[str]]) -> PasswordDataset:
        if isinstance(data, PasswordDataset):
            return data
        return PasswordDataset(list(data), [], self.encoder)

    # ------------------------------------------------------------------
    # latent-space API
    # ------------------------------------------------------------------
    def encode_passwords(self, passwords: Sequence[str]) -> np.ndarray:
        """Passwords -> latent points z = f(x) (bin-center features)."""
        features = self.encoder.encode_batch(passwords)
        return self.flow.encode(features)

    def decode_latents(self, latents: np.ndarray) -> List[str]:
        """Latent points -> password strings via f^-1 and binning."""
        features = self.flow.decode(latents)
        return self.encoder.decode_batch(features)

    def decode_latents_to_features(self, latents: np.ndarray) -> np.ndarray:
        """Latent points -> raw data-space floats (pre-binning).

        Gaussian Smoothing perturbs these floats rather than the strings.
        """
        return self.flow.decode(latents)

    def sample_latents(
        self, count: int, rng: Optional[np.random.Generator] = None, prior: Optional[Prior] = None
    ) -> np.ndarray:
        rng = rng if rng is not None else self.rng_streams.get("latent")
        source = prior if prior is not None else self.flow.prior
        return source.sample(count, rng)

    def sample_passwords(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        prior: Optional[Prior] = None,
    ) -> List[str]:
        """Draw ``count`` password guesses from the generative process."""
        latents = self.sample_latents(count, rng=rng, prior=prior)
        return self.decode_latents(latents)

    def log_prob(self, passwords: Sequence[str]) -> np.ndarray:
        """Exact log p_theta per password (at bin centers)."""
        features = self.encoder.encode_batch(passwords)
        return self.flow.log_prob(features)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Persist weights + config + history to an ``.npz`` checkpoint."""
        metadata = {
            "config": asdict(self.config),
            "history_nll": self.history.nll,
            "history_grad_norm": self.history.grad_norm,
        }
        return save_checkpoint(path, self.flow.state_dict(), metadata)

    @classmethod
    def load(cls, path: str | Path) -> "PassFlow":
        """Restore a model saved by :meth:`save`."""
        state, metadata = load_checkpoint(path)
        config = PassFlowConfig(**metadata["config"])
        model = cls(config)
        model.flow.load_state_dict(state)
        model.history = TrainingHistory(
            nll=list(metadata.get("history_nll", [])),
            grad_norm=list(metadata.get("history_grad_norm", [])),
        )
        model.flow.eval()
        return model

"""Deterministic random-number plumbing.

Every stochastic component (data synthesis, weight init, dequantization
noise, latent sampling, Gaussian smoothing) draws from its own named child
stream of a single root seed, so experiments are reproducible end-to-end and
components can be re-run independently without perturbing each other.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def spawn_rng(seed: int, label: str = "") -> np.random.Generator:
    """Create a generator from ``seed`` mixed with a string ``label``."""
    mixed = np.random.SeedSequence([seed, _label_entropy(label)])
    return np.random.default_rng(mixed)


def _label_entropy(label: str) -> int:
    value = 0
    for ch in label:
        value = (value * 131 + ord(ch)) % (2**31 - 1)
    return value


class RngStream:
    """A registry of named, independently-seeded generators.

    >>> streams = RngStream(seed=7)
    >>> a = streams.get("weights")
    >>> b = streams.get("latent")
    >>> streams.get("weights") is a
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._streams:
            self._streams[name] = spawn_rng(self.seed, name)
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (resets its stream)."""
        self._streams[name] = spawn_rng(self.seed, name)
        return self._streams[name]

"""Lightweight progress reporting for long training/guessing loops."""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.utils.logging import get_logger

logger = get_logger("progress")


class ProgressReporter:
    """Rate-limited progress callbacks.

    Training loops call :meth:`update` every step; the reporter invokes the
    sink at most every ``interval`` seconds (and always on :meth:`close`),
    keeping logging overhead negligible during numpy-heavy loops.
    """

    def __init__(
        self,
        total: Optional[int] = None,
        interval: float = 5.0,
        sink: Optional[Callable[[str], None]] = None,
        label: str = "",
    ) -> None:
        self.total = total
        self.interval = float(interval)
        self.sink = sink if sink is not None else logger.info
        self.label = label
        self.count = 0
        self._start = time.monotonic()
        self._last_emit = self._start

    def update(self, increment: int = 1, extra: str = "") -> None:
        self.count += increment
        now = time.monotonic()
        if now - self._last_emit >= self.interval:
            self._emit(extra)
            self._last_emit = now

    def _emit(self, extra: str = "") -> None:
        elapsed = time.monotonic() - self._start
        rate = self.count / elapsed if elapsed > 0 else 0.0
        pieces = [self.label or "progress", f"{self.count}"]
        if self.total:
            pieces.append(f"/{self.total}")
        pieces.append(f"({rate:.1f}/s)")
        if extra:
            pieces.append(extra)
        self.sink(" ".join(str(p) for p in pieces))

    def close(self, extra: str = "") -> None:
        self._emit(extra)

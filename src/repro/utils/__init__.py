"""Shared utilities: seeding, logging, checkpoint IO, progress reporting."""

from repro.utils.rng import RngStream, spawn_rng
from repro.utils.logging import get_logger
from repro.utils.serialization import load_checkpoint, save_checkpoint
from repro.utils.progress import ProgressReporter

__all__ = [
    "RngStream",
    "spawn_rng",
    "get_logger",
    "save_checkpoint",
    "load_checkpoint",
    "ProgressReporter",
]

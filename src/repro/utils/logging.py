"""Library logging: namespaced loggers, quiet by default."""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"
_configured = False


def get_logger(name: str = "") -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    The root library logger gets a NullHandler so importing the library never
    configures global logging (applications opt in themselves).
    """
    global _configured
    if not _configured:
        logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())
        _configured = True
    full = _ROOT_NAME if not name else f"{_ROOT_NAME}.{name}"
    return logging.getLogger(full)


def enable_console_logging(level: int = logging.INFO) -> None:
    """Convenience for examples/benchmarks: log to stderr."""
    logger = logging.getLogger(_ROOT_NAME)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s"))
        logger.addHandler(handler)
    logger.setLevel(level)

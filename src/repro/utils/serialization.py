"""Checkpoint IO: model state dicts to/from ``.npz`` files."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Tuple

import numpy as np


def save_checkpoint(
    path: str | Path,
    state: Dict[str, np.ndarray],
    metadata: Dict[str, Any] | None = None,
) -> Path:
    """Write a state dict (plus JSON-serializable metadata) to ``path``.

    The metadata rides along as a JSON string under the reserved key
    ``__metadata__`` so a checkpoint is a single self-describing file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(state)
    if "__metadata__" in payload:
        raise ValueError("'__metadata__' is a reserved checkpoint key")
    payload["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(path: str | Path) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Read back ``(state_dict, metadata)`` written by :func:`save_checkpoint`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        state = {k: archive[k] for k in archive.files if k != "__metadata__"}
        metadata = json.loads(archive["__metadata__"].tobytes().decode("utf-8"))
    return state, metadata

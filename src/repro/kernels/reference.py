"""Reference kernel backend: the seed-era op order, spelled in plain numpy.

Each function here is a transliteration of the :class:`Tensor` composition
it replaces -- the same floating-point operations, applied in the same
order, with the same intermediate temporaries numpy would allocate.  That
makes this backend the *semantics anchor*: ``tests/kernels/`` pins the
``numpy`` backend bit-identical to it (``np.array_equal``) and the
``numba`` backend equal to the last ulp, and pins it in turn against the
live ``Tensor`` graph, so a fixed ``(seed, spec)`` guess stream decodes to
the same passwords no matter which backend sampled it.

It is deliberately not fast -- use it for parity tests, debugging, and as
the baseline the fused backends are benchmarked against.

Shared conventions (all backends):

* arrays are float64; kernels never mutate their inputs (``adam_step``,
  which updates ``param``/``m``/``v`` in place by contract, is the one
  exception);
* ``mlp_forward`` may return an internal scratch buffer -- the value is
  only guaranteed until the next call with the same ``scratch`` dict;
* ``mask``/``inv_mask`` are the binary coupling masks ``b`` / ``1 - b``;
  ``masked`` is the precomputed ``x * b`` (callers already need it to
  feed the conditioner networks);
* ``*_train_forward`` variants additionally return the intermediates the
  matching ``*_backward_*`` kernels consume, so one forward pass serves
  both directions of the tape.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

NAME = "reference"

Array = np.ndarray


# ----------------------------------------------------------------------
# residual MLP (Linear -> relu -> blocks of x + relu(fc2(relu(fc1 x))))
# ----------------------------------------------------------------------
def mlp_forward(params: List[Array], x: Array, num_blocks: int, scratch: Dict) -> Array:
    """Forward of :class:`~repro.nn.residual.ResidualMLP` on raw arrays.

    ``params`` is the flat weight list ``[W_in, b_in, (W1, b1, W2, b2) per
    block..., W_out, b_out]``; ``scratch`` is ignored by this backend.
    """
    h = x @ params[0] + params[1]
    h = h * (h > 0)
    i = 2
    for _ in range(num_blocks):
        w1, b1, w2, b2 = params[i : i + 4]
        i += 4
        a = h @ w1 + b1
        a = a * (a > 0)
        c = a @ w2 + b2
        c = c * (c > 0)
        h = h + c
    return h @ params[i] + params[i + 1]


# ----------------------------------------------------------------------
# affine coupling (RealNVP Eq. 13): z = b*x + (1-b)(x e^s + t)
# ----------------------------------------------------------------------
def coupling_forward(
    x: Array, masked: Array, inv_mask: Array, raw_scale: Array, translate: Array, clamp: float
) -> Tuple[Array, Array]:
    scale = np.tanh(raw_scale * (1.0 / clamp)) * clamp
    z = masked + inv_mask * (x * np.exp(scale) + translate)
    log_det = (inv_mask * scale).sum(axis=-1)
    return z, log_det


def coupling_inverse(
    z: Array, masked: Array, inv_mask: Array, raw_scale: Array, translate: Array, clamp: float
) -> Array:
    scale = np.tanh(raw_scale * (1.0 / clamp)) * clamp
    return masked + inv_mask * ((z - translate) * np.exp(-scale))


def coupling_train_forward(
    x: Array, masked: Array, inv_mask: Array, raw_scale: Array, translate: Array, clamp: float
) -> Tuple[Array, Array, Array, Array]:
    """Forward plus the backward intermediates ``exp(s)`` and ``1 - tanh^2``."""
    th = np.tanh(raw_scale * (1.0 / clamp))
    scale = th * clamp
    exp_s = np.exp(scale)
    z = masked + inv_mask * (x * exp_s + translate)
    log_det = (inv_mask * scale).sum(axis=-1)
    dtanh = 1.0 - th * th
    return z, log_det, exp_s, dtanh


def coupling_backward_z(
    gz: Array, x: Array, mask: Array, inv_mask: Array, exp_s: Array, dtanh: Array
) -> Tuple[Array, Array, Array]:
    """Adjoints of ``z`` w.r.t. ``x``, ``raw_scale``, ``translate``."""
    gx = (inv_mask * exp_s + mask) * gz
    gt = gz * inv_mask
    graw = gt * x
    graw = graw * exp_s
    graw = graw * dtanh
    return gx, graw, gt


def coupling_backward_log_det(gld: Array, inv_mask: Array, dtanh: Array) -> Array:
    """Adjoint of ``log_det = sum((1-b) * s)`` w.r.t. ``raw_scale``."""
    graw = inv_mask * dtanh
    graw = graw * gld[:, None]
    return graw


# ----------------------------------------------------------------------
# additive coupling (NICE): z = b*x + (1-b)(x + t), log|det J| = 0
# ----------------------------------------------------------------------
def additive_forward(
    x: Array, masked: Array, inv_mask: Array, translate: Array
) -> Tuple[Array, Array]:
    z = masked + inv_mask * (x + translate)
    return z, np.zeros(x.shape[0])


def additive_inverse(z: Array, masked: Array, inv_mask: Array, translate: Array) -> Array:
    return masked + inv_mask * (z - translate)


# ----------------------------------------------------------------------
# logit transform: y = logit(a + (1-2a) x)
# ----------------------------------------------------------------------
def logit_forward(x: Array, alpha: float) -> Tuple[Array, Array]:
    p = x * (1.0 - 2.0 * alpha) + alpha
    lp = np.log(p)
    l1p = np.log(1.0 - p)
    y = lp - l1p
    log_det = (np.log(1.0 - 2.0 * alpha) - lp - l1p).sum(axis=-1)
    return y, log_det


def logit_inverse(z: Array, alpha: float) -> Array:
    # the numerically stable logistic, exactly as Tensor.sigmoid computes it
    p = np.where(
        z >= 0,
        1.0 / (1.0 + np.exp(-np.clip(z, -500, 500))),
        np.exp(np.clip(z, -500, 500)) / (1.0 + np.exp(np.clip(z, -500, 500))),
    )
    return (p - alpha) * (1.0 / (1.0 - 2.0 * alpha))


def logit_train_forward(x: Array, alpha: float) -> Tuple[Array, Array, Array]:
    p = x * (1.0 - 2.0 * alpha) + alpha
    lp = np.log(p)
    l1p = np.log(1.0 - p)
    y = lp - l1p
    log_det = (np.log(1.0 - 2.0 * alpha) - lp - l1p).sum(axis=-1)
    return y, log_det, p


def logit_backward_y(gy: Array, p: Array, alpha: float) -> Array:
    gx = 1.0 / p + 1.0 / (1.0 - p)
    gx = gx * (1.0 - 2.0 * alpha)
    gx = gx * gy
    return gx


def logit_backward_log_det(gld: Array, p: Array, alpha: float) -> Array:
    gx = 1.0 / (1.0 - p) - 1.0 / p
    gx = gx * (1.0 - 2.0 * alpha)
    gx = gx * gld[:, None]
    return gx


# ----------------------------------------------------------------------
# actnorm: z = (x - bias) * exp(log_scale)
# ----------------------------------------------------------------------
def actnorm_forward(x: Array, bias: Array, log_scale: Array) -> Tuple[Array, Array]:
    z = (x - bias) * np.exp(log_scale)
    log_det = np.sum(log_scale) * np.ones(x.shape[0])
    return z, log_det


def actnorm_inverse(z: Array, bias: Array, log_scale: Array) -> Array:
    return z * np.exp(-log_scale) + bias


def actnorm_train_forward(
    x: Array, bias: Array, log_scale: Array
) -> Tuple[Array, Array, Array]:
    exp_ls = np.exp(log_scale)
    z = (x - bias) * exp_ls
    log_det = np.sum(log_scale) * np.ones(x.shape[0])
    return z, log_det, exp_ls


def actnorm_backward_z(gz: Array, z: Array, exp_ls: Array) -> Tuple[Array, Array, Array]:
    """Adjoints of ``z`` w.r.t. ``x``, ``bias``, ``log_scale``."""
    gx = gz * exp_ls
    gbias = np.sum(gx, axis=0)
    gbias = -gbias
    gls = np.sum(gz * z, axis=0)
    return gx, gbias, gls


# ----------------------------------------------------------------------
# Adam (Kingma & Ba) with bias correction, exactly the seed update order
# ----------------------------------------------------------------------
def adam_step(
    param: Array,
    grad: Array,
    m: Array,
    v: Array,
    lr: float,
    beta1: float,
    beta2: float,
    eps: float,
    bias_c1: float,
    bias_c2: float,
    scratch: Dict,
) -> None:
    """One in-place Adam update; ``bias_c*`` are ``1 - beta*^t``."""
    m *= beta1
    m += (1.0 - beta1) * grad
    v *= beta2
    v += (1.0 - beta2) * grad**2
    m_hat = m / bias_c1
    v_hat = v / bias_c2
    param -= lr * m_hat / (np.sqrt(v_hat) + eps)

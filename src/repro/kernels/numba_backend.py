"""Numba kernel backend: ``@njit``-compiled loops for the sampling paths.

Optional -- importing this module raises :class:`ImportError` when numba
is not installed, and the registry (``repro.kernels``) turns that into a
one-line error / the ``auto`` fallback to the fused numpy backend.

What is compiled here: the inference hot path (residual-MLP forward for
the paper's 2-block shape, coupling forward/inverse, additive coupling,
logit, actnorm, and the Adam step) -- the loops a live attack or a
``bank build`` spends its time in.  The training-tape kernels
(``*_train_forward`` / ``*_backward_*``) delegate to the fused numpy
backend: training under numba is therefore bit-identical to the numpy
backend, and only sampling/log-prob differ -- and those only at the last
ulp, because libm's ``exp``/``tanh``/``log`` may round differently than
numpy's SIMD loops and log-det sums accumulate sequentially instead of
pairwise.  Decoded guess streams quantize features into alphabet bins,
which absorbs ulp noise, so streams and bank artifacts match the numpy
backend exactly; the parity suite pins both claims.

``fastmath`` stays off everywhere: reassociation would break the
ulp-level contract for no measurable win on these loops.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
from numba import njit

from repro.kernels import numpy_backend as _np_backend
from repro.kernels.numpy_backend import (  # noqa: F401  (re-exported API)
    actnorm_backward_z,
    actnorm_train_forward,
    coupling_backward_log_det,
    coupling_backward_z,
    coupling_train_forward,
    logit_backward_log_det,
    logit_backward_y,
    logit_train_forward,
)

NAME = "numba"

Array = np.ndarray


@njit(cache=True)
def _mlp2(x, wi, bi, w1a, b1a, w2a, b2a, w1b, b1b, w2b, b2b, wo, bo):
    h = np.dot(x, wi)
    n, width = h.shape
    for i in range(n):
        for j in range(width):
            value = h[i, j] + bi[j]
            h[i, j] = value if value > 0.0 else 0.0
    a = np.dot(h, w1a)
    for i in range(n):
        for j in range(width):
            value = a[i, j] + b1a[j]
            a[i, j] = value if value > 0.0 else 0.0
    c = np.dot(a, w2a)
    for i in range(n):
        for j in range(width):
            value = c[i, j] + b2a[j]
            if value > 0.0:
                h[i, j] += value
    a = np.dot(h, w1b)
    for i in range(n):
        for j in range(width):
            value = a[i, j] + b1b[j]
            a[i, j] = value if value > 0.0 else 0.0
    c = np.dot(a, w2b)
    for i in range(n):
        for j in range(width):
            value = c[i, j] + b2b[j]
            if value > 0.0:
                h[i, j] += value
    out = np.dot(h, wo)
    for i in range(n):
        for j in range(out.shape[1]):
            out[i, j] += bo[j]
    return out


def mlp_forward(params: List[Array], x: Array, num_blocks: int, scratch: Dict) -> Array:
    if num_blocks != 2:  # only the paper's shape is specialized
        return _np_backend.mlp_forward(params, x, num_blocks, scratch)
    return _mlp2(np.ascontiguousarray(x), *params)


@njit(cache=True)
def _coupling_forward(x, inv_mask, raw_scale, translate, clamp):
    n, d = x.shape
    z = np.empty((n, d))
    log_det = np.empty(n)
    inv_clamp = 1.0 / clamp
    for i in range(n):
        acc = 0.0
        for j in range(d):
            if inv_mask[j] == 0.0:
                z[i, j] = x[i, j]
            else:
                s = np.tanh(raw_scale[i, j] * inv_clamp) * clamp
                z[i, j] = x[i, j] * np.exp(s) + translate[i, j]
                acc += s
        log_det[i] = acc
    return z, log_det


def coupling_forward(
    x: Array, masked: Array, inv_mask: Array, raw_scale: Array, translate: Array, clamp: float
) -> Tuple[Array, Array]:
    return _coupling_forward(x, inv_mask, raw_scale, translate, clamp)


@njit(cache=True)
def _coupling_inverse(z, inv_mask, raw_scale, translate, clamp):
    n, d = z.shape
    x = np.empty((n, d))
    inv_clamp = 1.0 / clamp
    for i in range(n):
        for j in range(d):
            if inv_mask[j] == 0.0:
                x[i, j] = z[i, j]
            else:
                s = np.tanh(raw_scale[i, j] * inv_clamp) * clamp
                x[i, j] = (z[i, j] - translate[i, j]) * np.exp(-s)
    return x


def coupling_inverse(
    z: Array, masked: Array, inv_mask: Array, raw_scale: Array, translate: Array, clamp: float
) -> Array:
    return _coupling_inverse(z, inv_mask, raw_scale, translate, clamp)


@njit(cache=True)
def _additive_forward(x, inv_mask, translate):
    n, d = x.shape
    z = np.empty((n, d))
    for i in range(n):
        for j in range(d):
            if inv_mask[j] == 0.0:
                z[i, j] = x[i, j]
            else:
                z[i, j] = x[i, j] + translate[i, j]
    return z


def additive_forward(
    x: Array, masked: Array, inv_mask: Array, translate: Array
) -> Tuple[Array, Array]:
    return _additive_forward(x, inv_mask, translate), np.zeros(x.shape[0])


@njit(cache=True)
def _additive_inverse(z, inv_mask, translate):
    n, d = z.shape
    x = np.empty((n, d))
    for i in range(n):
        for j in range(d):
            if inv_mask[j] == 0.0:
                x[i, j] = z[i, j]
            else:
                x[i, j] = z[i, j] - translate[i, j]
    return x


def additive_inverse(z: Array, masked: Array, inv_mask: Array, translate: Array) -> Array:
    return _additive_inverse(z, inv_mask, translate)


@njit(cache=True)
def _logit_forward(x, alpha):
    n, d = x.shape
    y = np.empty((n, d))
    log_det = np.empty(n)
    k = 1.0 - 2.0 * alpha
    log_k = np.log(k)
    for i in range(n):
        acc = 0.0
        for j in range(d):
            p = x[i, j] * k + alpha
            lp = np.log(p)
            l1p = np.log(1.0 - p)
            y[i, j] = lp - l1p
            acc += log_k - lp - l1p
        log_det[i] = acc
    return y, log_det


def logit_forward(x: Array, alpha: float) -> Tuple[Array, Array]:
    return _logit_forward(x, alpha)


@njit(cache=True)
def _logit_inverse(z, alpha):
    n, d = z.shape
    x = np.empty((n, d))
    inv_k = 1.0 / (1.0 - 2.0 * alpha)
    for i in range(n):
        for j in range(d):
            value = z[i, j]
            clipped = min(max(value, -500.0), 500.0)
            if value >= 0.0:
                p = 1.0 / (1.0 + np.exp(-clipped))
            else:
                e = np.exp(clipped)
                p = e / (1.0 + e)
            x[i, j] = (p - alpha) * inv_k
    return x


def logit_inverse(z: Array, alpha: float) -> Array:
    return _logit_inverse(z, alpha)


@njit(cache=True)
def _actnorm_forward(x, bias, log_scale):
    n, d = x.shape
    z = np.empty((n, d))
    total = 0.0
    for j in range(d):
        total += log_scale[j]
    for i in range(n):
        for j in range(d):
            z[i, j] = (x[i, j] - bias[j]) * np.exp(log_scale[j])
    log_det = np.full(n, total)
    return z, log_det


def actnorm_forward(x: Array, bias: Array, log_scale: Array) -> Tuple[Array, Array]:
    return _actnorm_forward(x, bias, log_scale)


@njit(cache=True)
def _actnorm_inverse(z, bias, log_scale):
    n, d = z.shape
    x = np.empty((n, d))
    for i in range(n):
        for j in range(d):
            x[i, j] = z[i, j] * np.exp(-log_scale[j]) + bias[j]
    return x


def actnorm_inverse(z: Array, bias: Array, log_scale: Array) -> Array:
    return _actnorm_inverse(z, bias, log_scale)


@njit(cache=True)
def _adam_step(param, grad, m, v, lr, beta1, beta2, eps, bias_c1, bias_c2):
    for i in range(param.size):
        m[i] = m[i] * beta1 + (1.0 - beta1) * grad[i]
        v[i] = v[i] * beta2 + (1.0 - beta2) * (grad[i] * grad[i])
        m_hat = m[i] / bias_c1
        v_hat = v[i] / bias_c2
        param[i] -= lr * m_hat / (np.sqrt(v_hat) + eps)


def adam_step(
    param: Array,
    grad: Array,
    m: Array,
    v: Array,
    lr: float,
    beta1: float,
    beta2: float,
    eps: float,
    bias_c1: float,
    bias_c2: float,
    scratch: Dict,
) -> None:
    _adam_step(
        param.reshape(-1),
        np.ascontiguousarray(grad).reshape(-1),
        m.reshape(-1),
        v.reshape(-1),
        lr,
        beta1,
        beta2,
        eps,
        bias_c1,
        bias_c2,
    )

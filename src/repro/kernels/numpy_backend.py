"""Fused numpy kernel backend (the default).

Bit-identical to :mod:`repro.kernels.reference` -- every kernel executes
the same floating-point operations in the same order -- but with the
temporaries eliminated: preallocated scratch buffers for the MLP forward
and the Adam step, and ``out=`` arithmetic everywhere an intermediate
would otherwise be allocated.  Only IEEE-exact rewrites are used
(commuting a multiply, ``a - b`` for ``a + (-b)``, ``np.full`` for
``scalar * ones``), so fixed ``(seed, spec)`` guess streams and bank
checksums are unchanged from the seed-era Tensor path.

MLP scratch buffers are keyed by ``(thread id, batch shape)``: the
elastic runtime runs shard chunks on threads sharing one model, so two
concurrent decodes must never write into the same buffer.

See :mod:`repro.kernels.reference` for the shared kernel conventions
(argument meanings, mutation rules, ``*_train_forward`` contracts).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

import numpy as np

NAME = "numpy"

Array = np.ndarray


class _MLPScratch:
    """Preallocated buffers for one (thread, batch, hidden, out) shape."""

    __slots__ = ("h", "a", "c", "mask", "out")

    def __init__(self, n: int, hidden: int, out_dim: int) -> None:
        self.h = np.empty((n, hidden))
        self.a = np.empty((n, hidden))
        self.c = np.empty((n, hidden))
        self.mask = np.empty((n, hidden), dtype=bool)
        self.out = np.empty((n, out_dim))


def mlp_forward(params: List[Array], x: Array, num_blocks: int, scratch: Dict) -> Array:
    """Residual-MLP forward into scratch buffers (valid until the next call)."""
    n = x.shape[0]
    hidden = params[0].shape[1]
    out_dim = params[-2].shape[1]
    key = (threading.get_ident(), n, hidden, out_dim)
    bufs = scratch.get(key)
    if bufs is None:
        bufs = scratch[key] = _MLPScratch(n, hidden, out_dim)
    h, a, c, mask = bufs.h, bufs.a, bufs.c, bufs.mask
    np.matmul(x, params[0], out=h)
    np.add(h, params[1], out=h)
    np.greater(h, 0, out=mask)
    np.multiply(h, mask, out=h)
    i = 2
    for _ in range(num_blocks):
        w1, b1, w2, b2 = params[i : i + 4]
        i += 4
        np.matmul(h, w1, out=a)
        np.add(a, b1, out=a)
        np.greater(a, 0, out=mask)
        np.multiply(a, mask, out=a)
        np.matmul(a, w2, out=c)
        np.add(c, b2, out=c)
        np.greater(c, 0, out=mask)
        np.multiply(c, mask, out=c)
        np.add(h, c, out=h)
    np.matmul(h, params[i], out=bufs.out)
    np.add(bufs.out, params[i + 1], out=bufs.out)
    return bufs.out


# ----------------------------------------------------------------------
# affine coupling
# ----------------------------------------------------------------------
def coupling_forward(
    x: Array, masked: Array, inv_mask: Array, raw_scale: Array, translate: Array, clamp: float
) -> Tuple[Array, Array]:
    s = np.multiply(raw_scale, 1.0 / clamp)
    np.tanh(s, out=s)
    np.multiply(s, clamp, out=s)
    z = np.exp(s)
    np.multiply(x, z, out=z)
    np.add(z, translate, out=z)
    np.multiply(z, inv_mask, out=z)
    np.add(z, masked, out=z)
    np.multiply(s, inv_mask, out=s)
    return z, np.sum(s, axis=-1)


def coupling_inverse(
    z: Array, masked: Array, inv_mask: Array, raw_scale: Array, translate: Array, clamp: float
) -> Array:
    s = np.multiply(raw_scale, 1.0 / clamp)
    np.tanh(s, out=s)
    np.multiply(s, clamp, out=s)
    np.negative(s, out=s)
    np.exp(s, out=s)
    x = np.subtract(z, translate)
    np.multiply(x, s, out=x)
    np.multiply(x, inv_mask, out=x)
    np.add(x, masked, out=x)
    return x


def coupling_train_forward(
    x: Array, masked: Array, inv_mask: Array, raw_scale: Array, translate: Array, clamp: float
) -> Tuple[Array, Array, Array, Array]:
    th = np.multiply(raw_scale, 1.0 / clamp)
    np.tanh(th, out=th)
    s = np.multiply(th, clamp)
    exp_s = np.exp(s)
    z = np.multiply(x, exp_s)
    np.add(z, translate, out=z)
    np.multiply(z, inv_mask, out=z)
    np.add(z, masked, out=z)
    np.multiply(s, inv_mask, out=s)
    log_det = np.sum(s, axis=-1)
    np.multiply(th, th, out=th)
    np.subtract(1.0, th, out=th)
    return z, log_det, exp_s, th


def coupling_backward_z(
    gz: Array, x: Array, mask: Array, inv_mask: Array, exp_s: Array, dtanh: Array
) -> Tuple[Array, Array, Array]:
    gx = np.multiply(inv_mask, exp_s)
    np.add(gx, mask, out=gx)
    np.multiply(gx, gz, out=gx)
    gt = np.multiply(gz, inv_mask)
    graw = np.multiply(gt, x)
    np.multiply(graw, exp_s, out=graw)
    np.multiply(graw, dtanh, out=graw)
    return gx, graw, gt


def coupling_backward_log_det(gld: Array, inv_mask: Array, dtanh: Array) -> Array:
    graw = np.multiply(inv_mask, dtanh)
    np.multiply(graw, gld[:, None], out=graw)
    return graw


# ----------------------------------------------------------------------
# additive coupling
# ----------------------------------------------------------------------
def additive_forward(
    x: Array, masked: Array, inv_mask: Array, translate: Array
) -> Tuple[Array, Array]:
    z = np.add(x, translate)
    np.multiply(z, inv_mask, out=z)
    np.add(z, masked, out=z)
    return z, np.zeros(x.shape[0])


def additive_inverse(z: Array, masked: Array, inv_mask: Array, translate: Array) -> Array:
    x = np.subtract(z, translate)
    np.multiply(x, inv_mask, out=x)
    np.add(x, masked, out=x)
    return x


# ----------------------------------------------------------------------
# logit transform
# ----------------------------------------------------------------------
def logit_forward(x: Array, alpha: float) -> Tuple[Array, Array]:
    y, log_det, _ = logit_train_forward(x, alpha)
    return y, log_det


def logit_inverse(z: Array, alpha: float) -> Array:
    p = np.where(
        z >= 0,
        1.0 / (1.0 + np.exp(-np.clip(z, -500, 500))),
        np.exp(np.clip(z, -500, 500)) / (1.0 + np.exp(np.clip(z, -500, 500))),
    )
    np.subtract(p, alpha, out=p)
    np.multiply(p, 1.0 / (1.0 - 2.0 * alpha), out=p)
    return p


def logit_train_forward(x: Array, alpha: float) -> Tuple[Array, Array, Array]:
    p = np.multiply(x, 1.0 - 2.0 * alpha)
    np.add(p, alpha, out=p)
    lp = np.log(p)
    l1p = np.subtract(1.0, p)
    np.log(l1p, out=l1p)
    y = np.subtract(lp, l1p)
    np.subtract(np.log(1.0 - 2.0 * alpha), lp, out=lp)
    np.subtract(lp, l1p, out=lp)
    return y, np.sum(lp, axis=-1), p


def logit_backward_y(gy: Array, p: Array, alpha: float) -> Array:
    gx = np.divide(1.0, p)
    omp = np.subtract(1.0, p)
    np.divide(1.0, omp, out=omp)
    np.add(gx, omp, out=gx)
    np.multiply(gx, 1.0 - 2.0 * alpha, out=gx)
    np.multiply(gx, gy, out=gx)
    return gx


def logit_backward_log_det(gld: Array, p: Array, alpha: float) -> Array:
    gx = np.subtract(1.0, p)
    np.divide(1.0, gx, out=gx)
    omp = np.divide(1.0, p)
    np.subtract(gx, omp, out=gx)
    np.multiply(gx, 1.0 - 2.0 * alpha, out=gx)
    np.multiply(gx, gld[:, None], out=gx)
    return gx


# ----------------------------------------------------------------------
# actnorm
# ----------------------------------------------------------------------
def actnorm_forward(x: Array, bias: Array, log_scale: Array) -> Tuple[Array, Array]:
    exp_ls = np.exp(log_scale)
    z = np.subtract(x, bias)
    np.multiply(z, exp_ls, out=z)
    return z, np.full(x.shape[0], np.sum(log_scale))


def actnorm_inverse(z: Array, bias: Array, log_scale: Array) -> Array:
    exp_nls = np.negative(log_scale)
    np.exp(exp_nls, out=exp_nls)
    x = np.multiply(z, exp_nls)
    np.add(x, bias, out=x)
    return x


def actnorm_train_forward(
    x: Array, bias: Array, log_scale: Array
) -> Tuple[Array, Array, Array]:
    exp_ls = np.exp(log_scale)
    z = np.subtract(x, bias)
    np.multiply(z, exp_ls, out=z)
    return z, np.full(x.shape[0], np.sum(log_scale)), exp_ls


def actnorm_backward_z(gz: Array, z: Array, exp_ls: Array) -> Tuple[Array, Array, Array]:
    gx = np.multiply(gz, exp_ls)
    gbias = np.sum(gx, axis=0)
    np.negative(gbias, out=gbias)
    gls = np.multiply(gz, z)
    gls = np.sum(gls, axis=0)
    return gx, gbias, gls


# ----------------------------------------------------------------------
# Adam
# ----------------------------------------------------------------------
def adam_step(
    param: Array,
    grad: Array,
    m: Array,
    v: Array,
    lr: float,
    beta1: float,
    beta2: float,
    eps: float,
    bias_c1: float,
    bias_c2: float,
    scratch: Dict,
) -> None:
    """In-place Adam update with two preallocated scratch buffers."""
    s1 = scratch.get("s1")
    if s1 is None or s1.shape != param.shape:
        s1 = scratch["s1"] = np.empty_like(param)
        scratch["s2"] = np.empty_like(param)
    s2 = scratch["s2"]
    np.multiply(m, beta1, out=m)
    np.multiply(grad, 1.0 - beta1, out=s1)
    np.add(m, s1, out=m)
    np.multiply(v, beta2, out=v)
    np.power(grad, 2, out=s1)
    np.multiply(s1, 1.0 - beta2, out=s1)
    np.add(v, s1, out=v)
    np.divide(m, bias_c1, out=s1)
    np.multiply(s1, lr, out=s1)
    np.divide(v, bias_c2, out=s2)
    np.sqrt(s2, out=s2)
    np.add(s2, eps, out=s2)
    np.divide(s1, s2, out=s1)
    np.subtract(param, s1, out=param)

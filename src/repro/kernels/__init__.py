"""Fused kernel backends for the flow/NN hot paths.

Every numeric hot loop in the system -- coupling forward/inverse, the
logit and actnorm transforms, the residual-MLP forward, the fused
autograd backwards, and the Adam step -- dispatches through one of the
backends registered here instead of being spelled inline:

``reference``
    A plain-numpy transliteration of the seed-era :class:`Tensor`
    compositions, op for op.  It is the semantics anchor: the parity
    suite (``tests/kernels/``) pins every other backend against it.
``numpy``
    The default.  Same floating-point operations in the same order as
    ``reference`` (results are bit-identical), but fused: preallocated
    scratch buffers, ``out=`` arithmetic, no per-op temporaries.
``numba``
    Optional (``pip install numba``): ``@njit``-compiled loops.  Decoded
    guess streams and bank artifacts are identical to ``numpy``; raw
    float intermediates may differ at the last ulp (see
    ``docs/kernels.md`` for the exact contract).

Selection follows the same pattern as ``REPRO_ATTACK_WORKERS``: the
``REPRO_KERNELS`` environment variable (``auto`` / ``numpy`` / ``numba``
/ ``reference``, default ``auto`` = numba when importable, else numpy)
resolved lazily on first use, or an explicit ``--kernels`` CLI flag /
:func:`select` call.  Invalid values raise a one-line :class:`ValueError`.
"""

from __future__ import annotations

import contextlib
import importlib
import importlib.util
import os
from typing import Iterator, Optional

VALID_BACKENDS = ("auto", "numpy", "numba", "reference")

_MODULES = {
    "reference": "repro.kernels.reference",
    "numpy": "repro.kernels.numpy_backend",
    "numba": "repro.kernels.numba_backend",
}

_active = None  # lazily resolved backend module


def numba_available() -> bool:
    """Whether the optional numba dependency can be imported."""
    return importlib.util.find_spec("numba") is not None


def resolve(name: Optional[str] = None) -> str:
    """Resolve a backend name (or the ``REPRO_KERNELS`` env default).

    ``auto`` picks ``numba`` when importable, else ``numpy``.  Raises a
    one-line :class:`ValueError` for unknown names and for an explicit
    ``numba`` request when numba is not installed.
    """
    if name is None:
        name = os.environ.get("REPRO_KERNELS", "auto")
    if name not in VALID_BACKENDS:
        raise ValueError(
            f"REPRO_KERNELS must be one of auto|numpy|numba|reference, got {name!r}"
        )
    if name == "auto":
        return "numba" if numba_available() else "numpy"
    if name == "numba" and not numba_available():
        raise ValueError(
            "kernels backend 'numba' requested but numba is not installed "
            "(pip install numba, or select the numpy backend)"
        )
    return name


def _load(name: str):
    return importlib.import_module(_MODULES[name])


def select(name: Optional[str] = None) -> str:
    """Set the process-wide backend (``None`` = re-resolve from env).

    Returns the resolved backend name.  The choice sticks until the next
    :func:`select`; worker processes resolve independently from their own
    environment, which is why the CLI exports ``REPRO_KERNELS`` when
    ``--kernels`` is given.
    """
    global _active
    _active = _load(resolve(name))
    return _active.NAME


def active():
    """The active backend module, resolving ``REPRO_KERNELS`` on first use."""
    global _active
    if _active is None:
        _active = _load(resolve())
    return _active


def active_name() -> str:
    """Name of the active backend (``numpy`` / ``numba`` / ``reference``)."""
    return active().NAME


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily switch backends (parity tests and benchmarks)."""
    global _active
    previous = _active
    _active = _load(resolve(name))
    try:
        yield
    finally:
        _active = previous


__all__ = [
    "VALID_BACKENDS",
    "active",
    "active_name",
    "numba_available",
    "resolve",
    "select",
    "use_backend",
]

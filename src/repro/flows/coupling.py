"""Affine coupling layer (Dinh et al. RealNVP, Eqs. 9-13 of the paper).

Masked formulation (Eq. 13):

    z = b*x + (1-b) * (x * exp(s(b*x)) + t(b*x))

with ``s``/``t`` residual-block networks (Sec. III-A).  The Jacobian is
triangular, so

    log|det J| = sum_j [(1-b) * s(b*x)]_j        (Eq. 12)

and the inverse is closed-form because ``b*z = b*x``:

    x = b*z + (1-b) * (z - t(b*z)) * exp(-s(b*z))

The raw scale output is squashed with ``clamp * tanh(s/clamp)``: an exact,
invertible reparameterization that bounds |s| and keeps exp(s) from
overflowing early in training (standard in RealNVP/Glow implementations).

Hot-path dispatch: the training ``forward`` routes the combine + log-det
through :func:`repro.autograd.fused_affine_coupling` (one tape node instead
of ~ten), and the ``*_array`` inference paths call the active kernel
backend directly.  ``inverse`` keeps the seed-era Tensor composition -- it
is off the training path, and doubles as the pre-kernel baseline the
benchmarks measure speedups against.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import kernels
from repro.autograd import Tensor, fused_affine_coupling
from repro.flows.bijector import Bijector
from repro.nn.residual import ResidualMLP


class AffineCoupling(Bijector):
    """One coupling step with learnable scale/translation networks.

    Parameters
    ----------
    mask:
        Binary vector ``b`` of length D.  Coordinates with ``b=1`` pass
        through unchanged and condition the rest.
    hidden:
        Width of the s/t residual MLPs (paper: 256).
    num_blocks:
        Residual blocks per network (paper: 2).
    scale_clamp:
        Bound on |s| via tanh squashing.
    rng:
        Init generator.
    """

    def __init__(
        self,
        mask: np.ndarray,
        hidden: int = 256,
        num_blocks: int = 2,
        scale_clamp: float = 2.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        mask = np.asarray(mask, dtype=np.float64)
        if mask.ndim != 1:
            raise ValueError("mask must be 1-D")
        if not np.all((mask == 0.0) | (mask == 1.0)):
            raise ValueError("mask must be binary")
        if mask.sum() == 0 or mask.sum() == mask.size:
            raise ValueError("mask must have both zeros and ones")
        if scale_clamp <= 0:
            raise ValueError("scale_clamp must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        dim = mask.size
        self.dim = dim
        self.scale_clamp = float(scale_clamp)
        self.register_buffer("mask", mask)
        self.scale_net = ResidualMLP(dim, hidden, dim, num_blocks=num_blocks, rng=rng)
        self.translate_net = ResidualMLP(dim, hidden, dim, num_blocks=num_blocks, rng=rng)

    def _scale_translate(self, masked: Tensor) -> Tuple[Tensor, Tensor]:
        raw_scale = self.scale_net(masked)
        scale = (raw_scale * (1.0 / self.scale_clamp)).tanh() * self.scale_clamp
        translate = self.translate_net(masked)
        return scale, translate

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        masked = x * Tensor(self.mask)
        raw_scale = self.scale_net(masked)
        translate = self.translate_net(masked)
        return fused_affine_coupling(
            x,
            raw_scale,
            translate,
            self.mask,
            1.0 - self.mask,
            self.scale_clamp,
            masked.data,
        )

    def inverse(self, z: Tensor) -> Tensor:
        mask = Tensor(self.mask)
        inv_mask = Tensor(1.0 - self.mask)
        masked = z * mask
        scale, translate = self._scale_translate(masked)
        return masked + inv_mask * ((z - translate) * (-scale).exp())

    def forward_array(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        backend = kernels.active()
        masked = x * self.mask
        raw_scale = self.scale_net.forward_array(masked)
        translate = self.translate_net.forward_array(masked)
        return backend.coupling_forward(
            x, masked, 1.0 - self.mask, raw_scale, translate, self.scale_clamp
        )

    def inverse_array(self, z: np.ndarray) -> np.ndarray:
        backend = kernels.active()
        masked = z * self.mask
        raw_scale = self.scale_net.forward_array(masked)
        translate = self.translate_net.forward_array(masked)
        return backend.coupling_inverse(
            z, masked, 1.0 - self.mask, raw_scale, translate, self.scale_clamp
        )

"""Affine coupling layer (Dinh et al. RealNVP, Eqs. 9-13 of the paper).

Masked formulation (Eq. 13):

    z = b*x + (1-b) * (x * exp(s(b*x)) + t(b*x))

with ``s``/``t`` residual-block networks (Sec. III-A).  The Jacobian is
triangular, so

    log|det J| = sum_j [(1-b) * s(b*x)]_j        (Eq. 12)

and the inverse is closed-form because ``b*z = b*x``:

    x = b*z + (1-b) * (z - t(b*z)) * exp(-s(b*z))

The raw scale output is squashed with ``clamp * tanh(s/clamp)``: an exact,
invertible reparameterization that bounds |s| and keeps exp(s) from
overflowing early in training (standard in RealNVP/Glow implementations).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import Tensor
from repro.flows.bijector import Bijector
from repro.nn.residual import ResidualMLP


class AffineCoupling(Bijector):
    """One coupling step with learnable scale/translation networks.

    Parameters
    ----------
    mask:
        Binary vector ``b`` of length D.  Coordinates with ``b=1`` pass
        through unchanged and condition the rest.
    hidden:
        Width of the s/t residual MLPs (paper: 256).
    num_blocks:
        Residual blocks per network (paper: 2).
    scale_clamp:
        Bound on |s| via tanh squashing.
    rng:
        Init generator.
    """

    def __init__(
        self,
        mask: np.ndarray,
        hidden: int = 256,
        num_blocks: int = 2,
        scale_clamp: float = 2.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        mask = np.asarray(mask, dtype=np.float64)
        if mask.ndim != 1:
            raise ValueError("mask must be 1-D")
        if not np.all((mask == 0.0) | (mask == 1.0)):
            raise ValueError("mask must be binary")
        if mask.sum() == 0 or mask.sum() == mask.size:
            raise ValueError("mask must have both zeros and ones")
        if scale_clamp <= 0:
            raise ValueError("scale_clamp must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        dim = mask.size
        self.dim = dim
        self.scale_clamp = float(scale_clamp)
        self.register_buffer("mask", mask)
        self.scale_net = ResidualMLP(dim, hidden, dim, num_blocks=num_blocks, rng=rng)
        self.translate_net = ResidualMLP(dim, hidden, dim, num_blocks=num_blocks, rng=rng)

    def _scale_translate(self, masked: Tensor) -> Tuple[Tensor, Tensor]:
        raw_scale = self.scale_net(masked)
        scale = (raw_scale * (1.0 / self.scale_clamp)).tanh() * self.scale_clamp
        translate = self.translate_net(masked)
        return scale, translate

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        mask = Tensor(self.mask)
        inv_mask = Tensor(1.0 - self.mask)
        masked = x * mask
        scale, translate = self._scale_translate(masked)
        z = masked + inv_mask * (x * scale.exp() + translate)
        log_det = (inv_mask * scale).sum(axis=-1)
        return z, log_det

    def inverse(self, z: Tensor) -> Tensor:
        mask = Tensor(self.mask)
        inv_mask = Tensor(1.0 - self.mask)
        masked = z * mask
        scale, translate = self._scale_translate(masked)
        return masked + inv_mask * ((z - translate) * (-scale).exp())

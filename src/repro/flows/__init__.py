"""Generative flows (Sec. II and III of the paper).

* :mod:`repro.flows.bijector` -- the invertible-transform interface,
* :mod:`repro.flows.masks` -- binary masking strategies for coupling layers
  (horizontal and char-run m, Sec. III-A.1 and V-C),
* :mod:`repro.flows.coupling` -- affine coupling layers (Eqs. 9-13),
* :mod:`repro.flows.logit` -- dequantization-to-logit preprocessing bijector,
* :mod:`repro.flows.actnorm` -- activation normalization (Glow-style
  extension; ablatable),
* :mod:`repro.flows.flow` -- composition with exact log-likelihood
  (Eqs. 5-8) and numpy fast paths for sampling,
* :mod:`repro.flows.priors` -- the factorized standard-normal prior and the
  penalized Gaussian-mixture posterior of Eq. 14.
"""

from repro.flows.bijector import Bijector
from repro.flows.masks import alternating_masks, char_run_mask, horizontal_mask
from repro.flows.coupling import AffineCoupling
from repro.flows.additive import AdditiveCoupling
from repro.flows.permutation import Permutation
from repro.flows.logit import LogitTransform
from repro.flows.actnorm import ActNorm
from repro.flows.flow import Flow
from repro.flows.priors import GaussianMixturePrior, Prior, StandardNormalPrior

__all__ = [
    "Bijector",
    "horizontal_mask",
    "char_run_mask",
    "alternating_masks",
    "AffineCoupling",
    "AdditiveCoupling",
    "Permutation",
    "LogitTransform",
    "ActNorm",
    "Flow",
    "Prior",
    "StandardNormalPrior",
    "GaussianMixturePrior",
]

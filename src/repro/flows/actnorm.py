"""Activation normalization (ActNorm, from Glow).

An optional extension over the paper's architecture: a per-coordinate affine
``z = (x - bias) * exp(log_scale)`` whose parameters are data-dependently
initialized on the first batch so activations start zero-mean/unit-variance.
Ablation benchmarks measure its effect on NLL convergence.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import Tensor
from repro.flows.bijector import Bijector
from repro.nn.module import Parameter


class ActNorm(Bijector):
    """Per-dimension affine bijector with data-dependent initialization."""

    def __init__(self, dim: int) -> None:
        super().__init__()
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        self.log_scale = Parameter(np.zeros(dim), name="log_scale")
        self.bias = Parameter(np.zeros(dim), name="bias")
        self._initialized = False

    def initialize_from(self, batch: np.ndarray) -> None:
        """Set bias/scale so this batch maps to zero mean, unit variance."""
        batch = np.asarray(batch, dtype=np.float64)
        mean = batch.mean(axis=0)
        std = batch.std(axis=0) + 1e-6
        self.bias.data = mean
        self.log_scale.data = -np.log(std)
        self._initialized = True

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        if not self._initialized and self.training:
            self.initialize_from(x.data)
        z = (x - self.bias) * self.log_scale.exp()
        batch = x.shape[0] if x.ndim > 1 else 1
        log_det = self.log_scale.sum() * Tensor(np.ones(batch))
        return z, log_det

    def inverse(self, z: Tensor) -> Tensor:
        return z * (-self.log_scale).exp() + self.bias

"""Activation normalization (ActNorm, from Glow).

An optional extension over the paper's architecture: a per-coordinate affine
``z = (x - bias) * exp(log_scale)`` whose parameters are data-dependently
initialized on the first batch so activations start zero-mean/unit-variance.
Ablation benchmarks measure its effect on NLL convergence.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import kernels
from repro.autograd import Tensor, fused_actnorm
from repro.flows.bijector import Bijector
from repro.nn.module import Parameter


class ActNorm(Bijector):
    """Per-dimension affine bijector with data-dependent initialization."""

    def __init__(self, dim: int) -> None:
        super().__init__()
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        self.log_scale = Parameter(np.zeros(dim), name="log_scale")
        self.bias = Parameter(np.zeros(dim), name="bias")
        self._initialized = False

    def initialize_from(self, batch: np.ndarray) -> None:
        """Set bias/scale so this batch maps to zero mean, unit variance."""
        batch = np.asarray(batch, dtype=np.float64)
        mean = batch.mean(axis=0)
        std = batch.std(axis=0) + 1e-6
        self.bias.data = mean
        self.log_scale.data = -np.log(std)
        self._initialized = True

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        if not self._initialized and self.training:
            self.initialize_from(x.data)
        if x.ndim > 1:
            return fused_actnorm(x, self.bias, self.log_scale)
        z = (x - self.bias) * self.log_scale.exp()
        log_det = self.log_scale.sum() * Tensor(np.ones(1))
        return z, log_det

    def inverse(self, z: Tensor) -> Tensor:
        return z * (-self.log_scale).exp() + self.bias

    def forward_array(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if not self._initialized and self.training:
            self.initialize_from(x)
        return kernels.active().actnorm_forward(x, self.bias.data, self.log_scale.data)

    def inverse_array(self, z: np.ndarray) -> np.ndarray:
        return kernels.active().actnorm_inverse(z, self.bias.data, self.log_scale.data)

"""Flow composition: exact log-likelihood and bidirectional numpy paths.

Implements Eqs. 1-8: a stack of bijectors ``f_k o ... o f_1`` with

    log p_theta(x) = log p_z(f(x)) + sum_i log|det J_i|

and the sampling direction ``x = f^{-1}(z)``, ``z ~ p_z``.  The sampling
prior is an argument (defaulting to the training prior) so Dynamic Sampling
can swap in the Eq. 14 mixture without touching the trained bijectors.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.flows.bijector import Bijector
from repro.flows.priors import Prior, StandardNormalPrior
from repro.nn.module import Module


class Flow(Module):
    """A composed invertible model with exact density evaluation.

    Parameters
    ----------
    bijectors:
        Ordered transforms; ``forward`` applies them first-to-last
        (data -> latent), ``inverse`` last-to-first.
    prior:
        Latent prior used for training NLL (default standard normal).
    """

    def __init__(self, bijectors: Sequence[Bijector], prior: Optional[Prior] = None) -> None:
        super().__init__()
        if not bijectors:
            raise ValueError("Flow needs at least one bijector")
        self._count = len(bijectors)
        for i, bijector in enumerate(bijectors):
            self.add_module(f"bijector{i}", bijector)
        dims = [getattr(b, "dim", None) for b in bijectors]
        known = [d for d in dims if d is not None]
        self.dim = known[0] if known else None
        self.prior = prior if prior is not None else StandardNormalPrior(self.dim or 1)

    @property
    def bijectors(self) -> List[Bijector]:
        return [self._modules[f"bijector{i}"] for i in range(self._count)]

    # ------------------------------------------------------------------
    # differentiable direction (training)
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        """Data -> latent with total log|det J| (shape (N,))."""
        z = x
        total: Optional[Tensor] = None
        for bijector in self.bijectors:
            z, log_det = bijector(z)
            total = log_det if total is None else total + log_det
        return z, total

    def log_prob_tensor(self, x: Tensor) -> Tensor:
        """Differentiable log p_theta(x) (Eq. 5)."""
        z, log_det = self.forward(x)
        return self.prior.log_prob_tensor(z) + log_det

    def nll(self, x: Tensor) -> Tensor:
        """Mean negative log-likelihood (Eq. 7), the training loss."""
        return -self.log_prob_tensor(x).mean()

    # ------------------------------------------------------------------
    # numpy fast paths (inference / guessing) -- kernel-dispatched, see
    # repro.kernels; no Tensor graph is ever built on these routes.
    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray) -> np.ndarray:
        """Data -> latent without building a graph."""
        z = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for bijector in self.bijectors:
            z, _ = bijector.forward_array(z)
        return z

    def decode(self, z: np.ndarray) -> np.ndarray:
        """Latent -> data (the preimage f^{-1}(z), Eq. 2)."""
        x = np.atleast_2d(np.asarray(z, dtype=np.float64))
        for bijector in reversed(self.bijectors):
            x = bijector.inverse_array(x)
        return x

    def log_prob(self, x: np.ndarray) -> np.ndarray:
        """log p_theta(x) without building a graph."""
        z = np.atleast_2d(np.asarray(x, dtype=np.float64))
        total: Optional[np.ndarray] = None
        for bijector in self.bijectors:
            z, log_det = bijector.forward_array(z)
            total = log_det if total is None else np.add(total, log_det, out=total)
        return self.prior.log_prob(z) + total

    def sample(
        self,
        count: int,
        rng: np.random.Generator,
        prior: Optional[Prior] = None,
    ) -> np.ndarray:
        """Draw ``count`` data-space samples from ``prior`` (default: trained).

        This is the generative process of Sec. II: draw z ~ p_z, return
        f^{-1}(z).  Passing a :class:`GaussianMixturePrior` here is exactly
        the Dynamic Sampling prior swap of Sec. III-B.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        source = prior if prior is not None else self.prior
        z = source.sample(count, rng)
        return self.decode(z)

    def check_invertibility(self, x: np.ndarray, atol: float = 1e-8) -> float:
        """Max |x - f^{-1}(f(x))| over a batch; used by tests and sanity checks."""
        error = np.max(np.abs(self.decode(self.encode(x)) - np.atleast_2d(x)))
        if error > atol:
            raise AssertionError(f"flow is not invertible to {atol}: error={error}")
        return float(error)

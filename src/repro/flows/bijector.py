"""Bijector interface.

A bijector is one invertible step ``f_i`` of the composed flow
``f_theta = f_k o ... o f_1`` (Eq. 1).  Each step must expose its forward
map together with the log|det Jacobian| contribution (the summands of
Eq. 6), and an exact inverse (Eq. 2).

Both directions operate on :class:`~repro.autograd.Tensor`; inference paths
call them inside ``no_grad()`` which reduces them to plain numpy work.
"""

from __future__ import annotations

from typing import Tuple

from repro.autograd import Tensor
from repro.nn.module import Module


class Bijector(Module):
    """Base class for invertible transforms with tractable Jacobians."""

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        """Map data to latent: returns ``(z, log_det)`` with log_det shape (N,)."""
        raise NotImplementedError

    def inverse(self, z: Tensor) -> Tensor:
        """Map latent back to data (preimage under the bijection)."""
        raise NotImplementedError

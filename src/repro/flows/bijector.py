"""Bijector interface.

A bijector is one invertible step ``f_i`` of the composed flow
``f_theta = f_k o ... o f_1`` (Eq. 1).  Each step must expose its forward
map together with the log|det Jacobian| contribution (the summands of
Eq. 6), and an exact inverse (Eq. 2).

Both directions operate on :class:`~repro.autograd.Tensor`; inference paths
call them inside ``no_grad()`` which reduces them to plain numpy work.

The ``*_array`` variants are the kernel-dispatched numpy fast paths
(:mod:`repro.kernels`) that :class:`~repro.flows.flow.Flow` uses for
``encode``/``decode``/``log_prob``: no Tensor wrapping, fused per-bijector
kernels where a subclass provides them.  The base-class implementations
fall back to the Tensor path under ``no_grad`` -- always correct, and the
baseline the fused overrides are parity-tested and benchmarked against.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.nn.module import Module


class Bijector(Module):
    """Base class for invertible transforms with tractable Jacobians."""

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        """Map data to latent: returns ``(z, log_det)`` with log_det shape (N,)."""
        raise NotImplementedError

    def inverse(self, z: Tensor) -> Tensor:
        """Map latent back to data (preimage under the bijection)."""
        raise NotImplementedError

    def forward_array(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Numpy fast path of :meth:`forward`; never mutates ``x``."""
        with no_grad():
            z, log_det = self.forward(Tensor(x))
        return z.data, log_det.data

    def inverse_array(self, z: np.ndarray) -> np.ndarray:
        """Numpy fast path of :meth:`inverse`; never mutates ``z``."""
        with no_grad():
            return self.inverse(Tensor(z)).data

"""Latent priors.

Training uses the factorized standard normal (Sec. II: "an easy-to-sample,
factorized prior distribution").  Dynamic Sampling (Sec. III-B, Eq. 14)
replaces the sampling prior with a mixture of Gaussians centered on the
latents of matched passwords, weighted by the penalization function phi.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.autograd import Tensor, logsumexp

LOG_TWO_PI = math.log(2.0 * math.pi)


class Prior:
    """Interface: sampling plus numpy/Tensor log-densities over R^D."""

    dim: int

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` latent vectors, shape (count, dim)."""
        raise NotImplementedError

    def log_prob(self, z: np.ndarray) -> np.ndarray:
        """Log-density of rows of ``z`` (numpy fast path)."""
        raise NotImplementedError

    def log_prob_tensor(self, z: Tensor) -> Tensor:
        """Differentiable log-density (for NLL training)."""
        raise NotImplementedError


class StandardNormalPrior(Prior):
    """Isotropic N(0, sigma^2 I); ``sigma`` acts as a sampling temperature."""

    def __init__(self, dim: int, sigma: float = 1.0) -> None:
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.dim = dim
        self.sigma = float(sigma)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, self.sigma, size=(count, self.dim))

    def log_prob(self, z: np.ndarray) -> np.ndarray:
        z = np.atleast_2d(np.asarray(z, dtype=np.float64))
        quad = np.sum(z**2, axis=-1) / (self.sigma**2)
        return -0.5 * (quad + self.dim * (LOG_TWO_PI + 2.0 * math.log(self.sigma)))

    def log_prob_tensor(self, z: Tensor) -> Tensor:
        quad = (z * z).sum(axis=-1) * (1.0 / self.sigma**2)
        constant = self.dim * (LOG_TWO_PI + 2.0 * math.log(self.sigma))
        return (quad + constant) * -0.5


class GaussianMixturePrior(Prior):
    """Mixture of isotropic Gaussians: Eq. 14's p_z(z | M).

    Parameters
    ----------
    means:
        (K, D) centers -- the latents of matched passwords.
    sigmas:
        Per-component standard deviation, scalar or length-K.
    weights:
        Unnormalized non-negative weights -- the phi(z_i) factors.  At least
        one weight must be positive.
    """

    def __init__(
        self,
        means: np.ndarray,
        sigmas: float | Sequence[float],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        means = np.atleast_2d(np.asarray(means, dtype=np.float64))
        count, dim = means.shape
        if count < 1:
            raise ValueError("mixture needs at least one component")
        sig = np.broadcast_to(np.asarray(sigmas, dtype=np.float64), (count,)).copy()
        if np.any(sig <= 0):
            raise ValueError("sigmas must be positive")
        if weights is None:
            w = np.ones(count)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (count,):
                raise ValueError("weights must match number of components")
            if np.any(w < 0):
                raise ValueError("weights must be non-negative")
        total = w.sum()
        if total <= 0:
            raise ValueError("at least one mixture weight must be positive")
        self.dim = dim
        self.means = means
        self.sigmas = sig
        self.weights = w / total

    @property
    def num_components(self) -> int:
        return len(self.means)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        components = rng.choice(self.num_components, size=count, p=self.weights)
        noise = rng.normal(0.0, 1.0, size=(count, self.dim))
        return self.means[components] + noise * self.sigmas[components, None]

    def _component_log_probs(self, z: np.ndarray) -> np.ndarray:
        """(N, K) matrix of log w_k + log N(z; mu_k, sigma_k^2 I)."""
        z = np.atleast_2d(np.asarray(z, dtype=np.float64))
        diff = z[:, None, :] - self.means[None, :, :]
        quad = np.sum(diff**2, axis=-1) / (self.sigmas[None, :] ** 2)
        log_norm = -0.5 * (quad + self.dim * (LOG_TWO_PI + 2.0 * np.log(self.sigmas)[None, :]))
        with np.errstate(divide="ignore"):
            log_weights = np.log(self.weights)[None, :]
        return log_weights + log_norm

    def log_prob(self, z: np.ndarray) -> np.ndarray:
        comp = self._component_log_probs(z)
        shift = comp.max(axis=1, keepdims=True)
        shift = np.where(np.isfinite(shift), shift, 0.0)
        return np.log(np.exp(comp - shift).sum(axis=1)) + shift.ravel()

    def log_prob_tensor(self, z: Tensor) -> Tensor:
        # (N,1,D) - (K,D) -> (N,K,D)
        diff = z.reshape(z.shape[0], 1, self.dim) - Tensor(self.means)
        quad = (diff * diff).sum(axis=-1) * Tensor(1.0 / self.sigmas**2)
        log_norm = (quad + Tensor(self.dim * (LOG_TWO_PI + 2.0 * np.log(self.sigmas)))) * -0.5
        with np.errstate(divide="ignore"):
            log_weights = Tensor(np.log(self.weights))
        return logsumexp(log_norm + log_weights, axis=1)

"""Binary masking strategies for coupling layers.

Sec. III-A.1: the coupling layer conditions half the coordinates on the
other half; the split is chosen by a binary mask ``b``.  Sec. V-C evaluates
three strategies:

* **horizontal** -- D/2 zeroes then D/2 ones (splits the password in half),
* **char-run m** -- alternating runs of ``m`` zeroes and ``m`` ones,
  exploiting local correlation between consecutive characters; m=1 wins
  (Table VI) and is the paper's default.

Consecutive coupling layers must alternate ``b`` and ``1-b`` so no
coordinate passes through the whole flow unchanged (Fig. 1).
"""

from __future__ import annotations

from typing import List

import numpy as np


def horizontal_mask(dim: int) -> np.ndarray:
    """First half zeroes, second half ones."""
    if dim < 2:
        raise ValueError("mask dimension must be >= 2")
    mask = np.zeros(dim)
    mask[dim // 2 :] = 1.0
    return mask


def char_run_mask(dim: int, run_length: int) -> np.ndarray:
    """Alternating runs of ``run_length`` zeroes and ones (char-run m)."""
    if dim < 2:
        raise ValueError("mask dimension must be >= 2")
    if run_length < 1:
        raise ValueError("run_length must be >= 1")
    positions = np.arange(dim)
    return ((positions // run_length) % 2).astype(np.float64)


def make_mask(strategy: str, dim: int) -> np.ndarray:
    """Build a mask by name: 'horizontal' or 'char-run-<m>'."""
    if strategy == "horizontal":
        return horizontal_mask(dim)
    if strategy.startswith("char-run-"):
        try:
            run = int(strategy[len("char-run-"):])
        except ValueError:
            raise ValueError(f"bad char-run strategy: {strategy!r}") from None
        return char_run_mask(dim, run)
    raise ValueError(f"unknown masking strategy {strategy!r}")


def alternating_masks(strategy: str, dim: int, count: int) -> List[np.ndarray]:
    """``count`` masks alternating between ``b`` and ``1-b`` (Fig. 1)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    base = make_mask(strategy, dim)
    masks = []
    for i in range(count):
        masks.append(base.copy() if i % 2 == 0 else 1.0 - base)
    return masks

"""Additive coupling layer (NICE, Dinh et al. 2014 -- the paper's ref [13]).

The paper builds on RealNVP's *affine* couplings (ref [14]); NICE's
*additive* couplings are their volume-preserving ancestor:

    z = b*x + (1-b) * (x + t(b*x))

with log|det J| identically zero.  Included as an ablatable architecture
variant: the affine scale term is exactly what lets RealNVP reshape density
mass, so additive-only flows should underperform on NLL -- the ablation
benchmark quantifies by how much.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import kernels
from repro.autograd import Tensor
from repro.flows.bijector import Bijector
from repro.nn.residual import ResidualMLP


class AdditiveCoupling(Bijector):
    """Volume-preserving coupling step with a translation network only."""

    def __init__(
        self,
        mask: np.ndarray,
        hidden: int = 256,
        num_blocks: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        mask = np.asarray(mask, dtype=np.float64)
        if mask.ndim != 1:
            raise ValueError("mask must be 1-D")
        if not np.all((mask == 0.0) | (mask == 1.0)):
            raise ValueError("mask must be binary")
        if mask.sum() == 0 or mask.sum() == mask.size:
            raise ValueError("mask must have both zeros and ones")
        rng = rng if rng is not None else np.random.default_rng()
        self.dim = mask.size
        self.register_buffer("mask", mask)
        self.translate_net = ResidualMLP(
            self.dim, hidden, self.dim, num_blocks=num_blocks, rng=rng
        )

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        mask = Tensor(self.mask)
        inv_mask = Tensor(1.0 - self.mask)
        masked = x * mask
        translate = self.translate_net(masked)
        z = masked + inv_mask * (x + translate)
        return z, Tensor(np.zeros(x.shape[0]))

    def inverse(self, z: Tensor) -> Tensor:
        mask = Tensor(self.mask)
        inv_mask = Tensor(1.0 - self.mask)
        masked = z * mask
        translate = self.translate_net(masked)
        return masked + inv_mask * (z - translate)

    def forward_array(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        masked = x * self.mask
        translate = self.translate_net.forward_array(masked)
        return kernels.active().additive_forward(x, masked, 1.0 - self.mask, translate)

    def inverse_array(self, z: np.ndarray) -> np.ndarray:
        masked = z * self.mask
        translate = self.translate_net.forward_array(masked)
        return kernels.active().additive_inverse(z, masked, 1.0 - self.mask, translate)

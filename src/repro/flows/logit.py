"""Logit preprocessing bijector.

Dequantized password features live in (0, 1); affine couplings compose
Gaussian-prior latents over all of R^D.  The standard bridge (RealNVP
Sec. 4.1) is the logit transform

    y = logit(a + (1 - 2a) * x)

whose inverse is a (rescaled) sigmoid and whose log|det J| per coordinate is

    log(1 - 2a) - log(p) - log(1 - p),   p = a + (1 - 2a) x.

``a`` (alpha) keeps p strictly inside (0,1) even for x at the bin edges.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import kernels
from repro.autograd import Tensor, fused_logit
from repro.flows.bijector import Bijector


class LogitTransform(Bijector):
    """Invertible map from the (0,1) data cube to R^D."""

    def __init__(self, alpha: float = 0.05) -> None:
        super().__init__()
        if not 0.0 <= alpha < 0.5:
            raise ValueError("alpha must be in [0, 0.5)")
        self.alpha = float(alpha)

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        return fused_logit(x, self.alpha)

    def inverse(self, z: Tensor) -> Tensor:
        a = self.alpha
        p = z.sigmoid()
        return (p - a) * (1.0 / (1.0 - 2.0 * a))

    def forward_array(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return kernels.active().logit_forward(x, self.alpha)

    def inverse_array(self, z: np.ndarray) -> np.ndarray:
        return kernels.active().logit_inverse(z, self.alpha)

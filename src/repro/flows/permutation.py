"""Fixed permutation bijector.

An optional extension (Glow uses learned 1x1 convolutions; the fixed-shuffle
variant is its zero-parameter ancestor from RealNVP): permuting coordinates
between coupling layers lets information mix across mask groups faster than
mask alternation alone.  Volume-preserving, so log|det J| = 0.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import Tensor
from repro.flows.bijector import Bijector


class Permutation(Bijector):
    """Reorder coordinates by a fixed permutation."""

    def __init__(self, permutation: np.ndarray) -> None:
        super().__init__()
        permutation = np.asarray(permutation, dtype=np.int64)
        if permutation.ndim != 1:
            raise ValueError("permutation must be 1-D")
        if sorted(permutation.tolist()) != list(range(permutation.size)):
            raise ValueError("not a valid permutation of 0..D-1")
        self.dim = int(permutation.size)
        self.register_buffer("perm", permutation.astype(np.float64))
        self._forward_idx = permutation
        self._inverse_idx = np.argsort(permutation)

    @classmethod
    def random(cls, dim: int, rng: np.random.Generator) -> "Permutation":
        """A uniformly random permutation of ``dim`` coordinates."""
        return cls(rng.permutation(dim))

    @classmethod
    def reverse(cls, dim: int) -> "Permutation":
        """The coordinate-reversal permutation."""
        return cls(np.arange(dim)[::-1].copy())

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        z = x[:, self._forward_idx]
        batch = x.shape[0]
        return z, Tensor(np.zeros(batch))

    def inverse(self, z: Tensor) -> Tensor:
        return z[:, self._inverse_idx]

"""Shard execution backends: in-process reference and multiprocessing.

A shard worker needs three things: a way to build a fresh strategy (every
shard gets its own instance so feedback state like Dynamic Sampling's
matched-latent memory stays shard-local), its :class:`ShardPlan`, and the
shared attack parameters (test set, seed, sample cap).  Workers stream
their strategy through a delta-tracked
:class:`~repro.core.guesser.GuessAccounting` and return a picklable
:class:`ShardOutcome` -- per-checkpoint delta payloads plus terminal
counters -- which the
:class:`~repro.runtime.parallel.ParallelAttackEngine` merges.

:class:`LocalExecutor` runs shards sequentially in-process and is the
deterministic reference; :class:`ProcessExecutor` forks one OS process per
shard (strategies are rebuilt inside the worker from their registry spec
string via the inherited :class:`StrategySource`; only outcomes cross the
process boundary).  Both produce bit-identical outcomes for a fixed
``(seed, workers)``.

Elastic schedules use a second, chunk-level protocol: ``run_chains`` takes
one ordered *chain* of chunk thunks per shard and runs them with the
chunks of a chain strictly in order but chains free to interleave.
:class:`LocalExecutor` implements it sequentially (the deterministic
reference again); :class:`WorkStealingExecutor` runs the chains over a
persistent thread pool where any idle worker pulls the next chunk of any
chain -- work stealing at chunk granularity, so a straggling shard never
idles the rest of the fleet between checkpoints.  Chunk contents are
fixed by the elastic plan (each chunk draws from its own named RNG
stream), so stealing only reorders execution, never results.

Delta transport: shard accounting runs in interned-id key space whenever
the strategy streams (N, D) index-matrix batches (every smoother-free
PassFlow strategy does), so checkpoint deltas cross the result queue as
:class:`~repro.core.guesser.KeyedCheckpointDelta` payloads -- packed
uint64 arrays, 8 bytes per unique guess -- and 10^7+-guess sharded
attacks stay queue-cheap.  Strategies without an index-matrix stream
(the baselines, smoothing modes) fall back to string-mode
:class:`~repro.core.guesser.CheckpointDelta` payloads; the merger accepts
either, per shard.
"""

from __future__ import annotations

import multiprocessing
import threading
import traceback
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Set, Union

from repro.core.guesser import Delta, GuessAccounting, KeyedCheckpointDelta
from repro.runtime.planner import ShardPlan
from repro.strategies.engine import AttackEngine, AttackState
from repro.strategies.registry import build
from repro.utils.logging import get_logger
from repro.utils.progress import ProgressReporter

logger = get_logger("runtime.executor")


@dataclass
class StrategySource:
    """A recipe for building fresh strategy instances from a spec string.

    Mirrors :func:`repro.strategies.registry.build`'s signature; shard
    workers call :meth:`build` so every shard owns an isolated strategy
    (in forked workers the heavy resources -- trained model, corpus --
    arrive through process inheritance, never pickling).
    """

    spec: str
    model: Any = None
    corpus: Optional[Sequence[str]] = None
    alphabet: Any = None
    batch_size: Optional[int] = None

    def build(self):
        """Construct a fresh strategy instance from the recorded recipe."""
        return build(
            self.spec,
            model=self.model,
            corpus=self.corpus,
            alphabet=self.alphabet,
            batch_size=self.batch_size,
        )

    def pin(self, strategy) -> "StrategySource":
        """Pin a built strategy's fitted model so later builds reuse it.

        Count-based baselines fit themselves from the corpus at build
        time; pinning the parent's fitted instance before shard fan-out
        stops every forked worker refitting the same read-only model
        (fork shares it copy-on-write).  Returns ``self``.
        """
        fitted = getattr(strategy, "model", None)
        if fitted is not None:
            self.model = fitted
        return self


#: Anything a shard can build a strategy from: a spec-backed source or a
#: zero-argument factory callable.
StrategyFactory = Union[StrategySource, Callable[[], Any]]


@dataclass
class ShardTask:
    """The attack parameters shared by every shard of one run.

    ``progress`` is updated per batch inside the shard loop: in-process
    shards share the caller's reporter, forked shards update their own
    copy (each child logs its per-shard rate through the inherited sink).
    """

    source: StrategyFactory
    test_set: Set[str]
    seed: int
    sample_cap: int = 16
    label_prefix: str = ""
    progress: Optional[ProgressReporter] = None


@dataclass
class ShardOutcome:
    """A finished shard's accounting, ready to merge.

    ``deltas[k]`` holds what the shard added between its local checkpoints
    ``k-1`` and ``k`` (aligned with ``local_budgets``): a
    :class:`~repro.core.guesser.KeyedCheckpointDelta` of packed uint64
    arrays when the shard accounted in interned-id key space, a string
    :class:`~repro.core.guesser.CheckpointDelta` otherwise (an accounting
    locks its mode at the first observation, so one outcome never mixes
    the two).  ``codec`` is the shard's
    :class:`~repro.data.encoding.PasswordEncoder` when deltas are keyed
    (``None`` for string shards); the merger uses it to decode keyed
    deltas if a sibling shard fell back to strings.  ``completed`` is how
    many local checkpoints were actually reached (all of them unless the
    strategy's guess stream was finite and ran dry).  ``partial_delta``
    carries the dry tail -- guesses accounted after the last reached
    checkpoint -- so the merger's close-out row can report what was
    actually accounted; it never counts as a completed checkpoint.
    """

    index: int
    local_budgets: List[int]
    deltas: List[Delta] = field(default_factory=list)
    total: int = 0
    batches: int = 0
    matched_samples: List[str] = field(default_factory=list)
    non_matched_samples: List[str] = field(default_factory=list)
    method: Optional[str] = None  # the shard strategy's display name
    codec: Optional[Any] = None  # set when deltas are keyed
    partial_delta: Optional[Delta] = None  # dry tail past the last checkpoint

    @property
    def completed(self) -> int:
        """How many local checkpoints the shard actually reached."""
        return len(self.deltas)

    @property
    def keyed(self) -> bool:
        """Whether this shard's deltas are packed key arrays.

        Vacuously true for an empty delta list -- an empty shard merges
        cleanly into either key-space or string-space accumulation.
        """
        payloads = list(self.deltas)
        if self.partial_delta is not None:
            payloads.append(self.partial_delta)
        return all(isinstance(d, KeyedCheckpointDelta) for d in payloads)

    def reached(self, mark: int) -> bool:
        """Did the shard finish every local checkpoint up to ``mark``?"""
        needed = sum(1 for budget in self.local_budgets if budget <= mark)
        return self.completed >= needed


class _ShardProgress:
    """Per-batch updates pass through; the run-level reporter closes once
    in :meth:`~repro.runtime.parallel.ParallelAttackEngine.run`, so a
    shard finishing must not emit a misleading global 'final' line."""

    def __init__(self, inner: ProgressReporter) -> None:
        self._inner = inner

    def update(self, increment: int = 1, extra: str = "") -> None:
        self._inner.update(increment, extra=extra)

    def close(self, extra: str = "") -> None:
        pass


def build_shard_strategy(source, index: int):
    """One shard's strategy instance from whatever ``source`` shape.

    Sources exposing ``for_shard(index)`` get the shard index -- the only
    build path that stays deterministic when shards are built in
    different processes (fork-server workers each inherit the source and
    build only their own shards, so build *order* is per-worker, not
    global).  Everything else keeps the legacy contract: a
    :class:`StrategySource` spec recipe or any zero-argument factory.
    """
    for_shard = getattr(source, "for_shard", None)
    if for_shard is not None:
        return for_shard(index)
    return source.build() if isinstance(source, StrategySource) else source()


def execute_shard(task: ShardTask, plan: ShardPlan) -> ShardOutcome:
    """Run one shard to completion (used by both executors)."""
    local_budgets = plan.local_budgets
    outcome = ShardOutcome(index=plan.index, local_budgets=local_budgets)
    if not local_budgets:
        return outcome  # more workers than guesses at every budget
    strategy = build_shard_strategy(task.source, plan.index)
    outcome.method = getattr(strategy, "name", None)
    bind_shard = getattr(strategy, "bind_shard", None)
    if bind_shard is not None:
        # position-deterministic strategies (bank replay) pick their
        # strided substream from the fleet coordinates; everyone else
        # inherits the no-op default
        bind_shard(plan.index, plan.workers)
    accounting = GuessAccounting(
        task.test_set, local_budgets, sample_cap=task.sample_cap, track_deltas=True
    )
    state = AttackState(accounting)
    engine = AttackEngine(set(), local_budgets, sample_cap=task.sample_cap)
    rng = plan.rng(task.seed, task.label_prefix)
    progress = _ShardProgress(task.progress) if task.progress is not None else None
    for _ in engine.stream(strategy, rng, state, progress=progress):
        pass
    if not accounting.done and accounting.cut_checkpoint() is not None:
        # dry tail: ships separately so it never counts as a reached
        # checkpoint (reached()/cursor bookkeeping stays mark-aligned)
        accounting.rows.pop()
        outcome.partial_delta = accounting.deltas.pop()
    outcome.deltas = accounting.deltas
    outcome.total = accounting.total
    outcome.batches = state.batches
    outcome.matched_samples = accounting.matched_samples
    outcome.non_matched_samples = accounting.non_matched_samples
    if accounting.mode == "encoded":
        outcome.codec = accounting.codec
    return outcome


#: One shard's ordered chunk work for a scheduling round: zero-argument
#: thunks that must run sequentially (they advance the shard's strategy
#: and accounting state); different chains may interleave freely.
ChunkChain = Sequence[Callable[[], None]]


class LocalExecutor:
    """Runs shards sequentially in-process: the deterministic reference."""

    def run(self, task: ShardTask, plans: Sequence[ShardPlan]) -> List[ShardOutcome]:
        """Run every shard in plan order, in this process, and collect outcomes."""
        return [execute_shard(task, plan) for plan in plans]

    def run_chains(self, chains: Sequence[ChunkChain]) -> List[Optional[Exception]]:
        """Run elastic chunk chains sequentially (chain order, chunk order).

        The reference implementation of the elastic chunk protocol: chunk
        contents don't depend on interleaving, so running chains one after
        another produces the same outcomes :class:`WorkStealingExecutor`
        reaches concurrently.  A chunk that raises retires the rest of its
        chain; the exception is returned at the chain's slot (``None`` for
        clean chains) so the elastic driver can re-queue the shard's
        budget.
        """
        errors: List[Optional[Exception]] = [None] * len(chains)
        for index, chain in enumerate(chains):
            for thunk in chain:
                try:
                    thunk()
                except Exception as exc:  # noqa: BLE001 - reported to the driver
                    errors[index] = exc
                    break
        return errors


class WorkStealingExecutor:
    """Elastic chunk chains over a persistent work-stealing thread pool.

    Workers pull the next chunk of *any* shard from a shared ready queue;
    a chain re-enters the queue only after its current chunk finishes, so
    chunks of one shard never run concurrently (shard strategy state is
    single-threaded) while chunks of different shards interleave freely.
    The pool persists across scheduling rounds -- workers pull chunks
    between checkpoints instead of being re-forked per shard -- and
    threads share the parent's address space, so strategies, models and
    test sets need no pickling at all.

    Determinism: every chunk's guesses come from its own named RNG stream
    and a shard-ordered chunk chain, so which worker runs a chunk (and
    when) cannot change any shard's guess stream; outcomes are
    bit-identical to :meth:`LocalExecutor.run_chains`.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        """The worker pool, created lazily (and re-created after shutdown)."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-steal"
            )
        return self._pool

    def run_chains(self, chains: Sequence[ChunkChain]) -> List[Optional[Exception]]:
        """Run one round of chunk chains to completion with work stealing.

        Blocks until every chain has either drained or raised.  Returns
        per-chain exceptions (``None`` for clean chains), mirroring
        :meth:`LocalExecutor.run_chains`; a raising chunk retires the rest
        of its chain so the elastic driver can re-plan the shard's
        remaining budget.
        """
        errors: List[Optional[Exception]] = [None] * len(chains)
        ready = deque(
            (index, iter(chain)) for index, chain in enumerate(chains) if len(chain)
        )
        unfinished = len(ready)
        condition = threading.Condition()
        abort = False

        def pull() -> None:
            nonlocal unfinished, abort
            try:
                while True:
                    with condition:
                        while not ready and unfinished > 0 and not abort:
                            condition.wait()
                        if not ready or abort:
                            return
                        index, chain_iter = ready.popleft()
                        thunk = next(chain_iter, None)
                        if thunk is None:
                            unfinished -= 1
                            condition.notify_all()
                            continue
                    try:
                        thunk()
                    except Exception as exc:  # noqa: BLE001 - reported to the driver
                        with condition:
                            errors[index] = exc
                            unfinished -= 1
                            condition.notify_all()
                        continue
                    with condition:
                        ready.append((index, chain_iter))
                        condition.notify()
            except BaseException:
                # a worker-loop bug (or KeyboardInterrupt inside a chunk)
                # must wake the siblings blocked in wait(), or the round --
                # and the pool shutdown behind it -- deadlocks forever
                with condition:
                    abort = True
                    condition.notify_all()
                raise

        pool = self._ensure_pool()
        futures = [pool.submit(pull) for _ in range(min(self.workers, len(chains)))]
        try:
            for future in futures:
                future.result()  # re-raise worker-loop bugs (not chunk errors)
        except BaseException:
            with condition:
                abort = True
                condition.notify_all()
            for future in futures:
                future.cancel()
            raise
        return errors

    def shutdown(self) -> None:
        """Release the worker threads (idempotent; a later run re-creates them)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def picklable_exception(exc: BaseException) -> Optional[BaseException]:
    """The exception itself when it survives pickling, else ``None``.

    Worker processes ship their failures to the parent through a result
    queue; an exception that can cross it intact is re-raised with its
    original type (e.g. a clean ``SpecError``), anything else degrades to
    the traceback string the caller sends alongside.
    """
    try:
        import pickle

        pickle.dumps(exc)
        return exc
    except Exception:
        return None


def reap_processes(processes: Sequence) -> None:
    """Terminate and join every child, no matter how the parent is exiting.

    The shared teardown tail of both process executors: called from a
    ``finally`` so a parent raising mid-collection (KeyboardInterrupt, a
    re-raised shard error) never leaves forked children running.  Safe on
    the clean path too -- a worker that already reported its result is
    either exiting or blocked in a queue feeder; ``terminate`` just
    hastens it.  Joins get a bounded timeout with a ``kill`` fallback so
    teardown cannot hang on a wedged child.
    """
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=5.0)
        if process.is_alive():  # terminate ignored (e.g. masked SIGTERM)
            process.kill()
            process.join(timeout=5.0)


class CorpseWatch:
    """Detects workers that died without reporting a result.

    Both process executors drain a result queue with a timeout; on every
    timeout they feed this watch the indices of workers that are no
    longer alive but still owe results.  A worker that just exited may
    have its final message in flight through the queue's feeder pipe, so
    the watch only gives up after ``grace`` consecutive idle rounds with
    corpses present; any successful receive resets it.
    """

    def __init__(self, grace: int = 3) -> None:
        self.grace = grace
        self._idle_rounds = 0

    def note_receive(self) -> None:
        """A message arrived; the queue is live again."""
        self._idle_rounds = 0

    def note_timeout(self, dead: Sequence[int]) -> Optional[List[int]]:
        """An idle round elapsed; returns the corpse list once out of grace."""
        self._idle_rounds = self._idle_rounds + 1 if dead else 0
        if self._idle_rounds >= self.grace:
            return list(dead)
        return None


def _shard_entry(queue, task: ShardTask, plan: ShardPlan) -> None:
    try:
        queue.put((plan.index, execute_shard(task, plan), None))
    except BaseException as exc:  # surface worker failures in the parent
        queue.put(
            (plan.index, None, (picklable_exception(exc), traceback.format_exc()))
        )


class ProcessExecutor:
    """One forked OS process per shard.

    Fork start is required: workers inherit the strategy source's heavy
    resources (trained model, corpus, test set) by address-space copy, and
    only the compact :class:`ShardOutcome` crosses the result queue.  On
    platforms without fork this raises at construction; callers fall back
    to :class:`LocalExecutor` (identical results, no parallelism).
    """

    def __init__(self) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError("ProcessExecutor requires the fork start method")
        self._context = multiprocessing.get_context("fork")
        self._processes: List = []

    @staticmethod
    def _receive(queue):
        """One blocking result-queue read (seam for cleanup regression tests)."""
        return queue.get(timeout=1.0)

    def run(self, task: ShardTask, plans: Sequence[ShardPlan]) -> List[ShardOutcome]:
        """Fork one worker per shard; gather outcomes in shard-index order.

        Raises the original worker exception (when picklable) or a
        RuntimeError naming shards that died without reporting.
        """
        queue = self._context.Queue()
        processes = [
            self._context.Process(
                target=_shard_entry, args=(queue, task, plan), daemon=True
            )
            for plan in plans
        ]
        self._processes = processes  # inspectable by cleanup regression tests
        for process in processes:
            process.start()
        outcomes: List[Optional[ShardOutcome]] = [None] * len(plans)
        failure: Optional[str] = None
        shard_exception: Optional[BaseException] = None
        collected = 0
        watch = CorpseWatch()
        try:
            while collected < len(plans) and failure is None:
                try:
                    index, outcome, error = self._receive(queue)
                except Exception:  # queue.Empty: check for silently dead workers
                    corpses = watch.note_timeout(
                        [
                            plan.index
                            for plan, process in zip(plans, processes)
                            if not process.is_alive() and outcomes[plan.index] is None
                        ]
                    )
                    if corpses is not None:
                        failure = (
                            f"shard(s) {corpses} died without reporting a result"
                        )
                    continue
                watch.note_receive()
                if error is not None:
                    shard_exception, trace = error
                    failure = f"shard {index} failed:\n{trace}"
                else:
                    outcomes[index] = outcome
                    collected += 1
        finally:
            # unconditional: a parent raising mid-collection (KeyboardInterrupt,
            # a shard error re-raise below) must not orphan live children
            reap_processes(processes)
            queue.close()
        if failure is not None:
            if shard_exception is not None:
                # re-raise with the original type so callers can handle it
                # (e.g. the CLI turning a SpecError into a clean exit)
                logger.warning("%s", failure)
                raise shard_exception
            raise RuntimeError(failure)
        return [outcome for outcome in outcomes if outcome is not None]

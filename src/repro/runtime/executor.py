"""Shard execution backends: in-process reference and multiprocessing.

A shard worker needs three things: a way to build a fresh strategy (every
shard gets its own instance so feedback state like Dynamic Sampling's
matched-latent memory stays shard-local), its :class:`ShardPlan`, and the
shared attack parameters (test set, seed, sample cap).  Workers stream
their strategy through a delta-tracked
:class:`~repro.core.guesser.GuessAccounting` and return a picklable
:class:`ShardOutcome` -- per-checkpoint delta payloads plus terminal
counters -- which the
:class:`~repro.runtime.parallel.ParallelAttackEngine` merges.

:class:`LocalExecutor` runs shards sequentially in-process and is the
deterministic reference; :class:`ProcessExecutor` forks one OS process per
shard (strategies are rebuilt inside the worker from their registry spec
string via the inherited :class:`StrategySource`; only outcomes cross the
process boundary).  Both produce bit-identical outcomes for a fixed
``(seed, workers)``.

Delta transport: shard accounting runs in interned-id key space whenever
the strategy streams (N, D) index-matrix batches (every smoother-free
PassFlow strategy does), so checkpoint deltas cross the result queue as
:class:`~repro.core.guesser.KeyedCheckpointDelta` payloads -- packed
uint64 arrays, 8 bytes per unique guess -- and 10^7+-guess sharded
attacks stay queue-cheap.  Strategies without an index-matrix stream
(the baselines, smoothing modes) fall back to string-mode
:class:`~repro.core.guesser.CheckpointDelta` payloads; the merger accepts
either, per shard.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Set, Union

from repro.core.guesser import Delta, GuessAccounting, KeyedCheckpointDelta
from repro.runtime.planner import ShardPlan
from repro.strategies.engine import AttackEngine, AttackState
from repro.strategies.registry import build
from repro.utils.logging import get_logger
from repro.utils.progress import ProgressReporter

logger = get_logger("runtime.executor")


@dataclass
class StrategySource:
    """A recipe for building fresh strategy instances from a spec string.

    Mirrors :func:`repro.strategies.registry.build`'s signature; shard
    workers call :meth:`build` so every shard owns an isolated strategy
    (in forked workers the heavy resources -- trained model, corpus --
    arrive through process inheritance, never pickling).
    """

    spec: str
    model: Any = None
    corpus: Optional[Sequence[str]] = None
    alphabet: Any = None
    batch_size: Optional[int] = None

    def build(self):
        """Construct a fresh strategy instance from the recorded recipe."""
        return build(
            self.spec,
            model=self.model,
            corpus=self.corpus,
            alphabet=self.alphabet,
            batch_size=self.batch_size,
        )

    def pin(self, strategy) -> "StrategySource":
        """Pin a built strategy's fitted model so later builds reuse it.

        Count-based baselines fit themselves from the corpus at build
        time; pinning the parent's fitted instance before shard fan-out
        stops every forked worker refitting the same read-only model
        (fork shares it copy-on-write).  Returns ``self``.
        """
        fitted = getattr(strategy, "model", None)
        if fitted is not None:
            self.model = fitted
        return self


#: Anything a shard can build a strategy from: a spec-backed source or a
#: zero-argument factory callable.
StrategyFactory = Union[StrategySource, Callable[[], Any]]


@dataclass
class ShardTask:
    """The attack parameters shared by every shard of one run.

    ``progress`` is updated per batch inside the shard loop: in-process
    shards share the caller's reporter, forked shards update their own
    copy (each child logs its per-shard rate through the inherited sink).
    """

    source: StrategyFactory
    test_set: Set[str]
    seed: int
    sample_cap: int = 16
    label_prefix: str = ""
    progress: Optional[ProgressReporter] = None


@dataclass
class ShardOutcome:
    """A finished shard's accounting, ready to merge.

    ``deltas[k]`` holds what the shard added between its local checkpoints
    ``k-1`` and ``k`` (aligned with ``local_budgets``): a
    :class:`~repro.core.guesser.KeyedCheckpointDelta` of packed uint64
    arrays when the shard accounted in interned-id key space, a string
    :class:`~repro.core.guesser.CheckpointDelta` otherwise (an accounting
    locks its mode at the first observation, so one outcome never mixes
    the two).  ``codec`` is the shard's
    :class:`~repro.data.encoding.PasswordEncoder` when deltas are keyed
    (``None`` for string shards); the merger uses it to decode keyed
    deltas if a sibling shard fell back to strings.  ``completed`` is how
    many local checkpoints were actually reached (all of them unless the
    strategy's guess stream was finite and ran dry).
    """

    index: int
    local_budgets: List[int]
    deltas: List[Delta] = field(default_factory=list)
    total: int = 0
    batches: int = 0
    matched_samples: List[str] = field(default_factory=list)
    non_matched_samples: List[str] = field(default_factory=list)
    method: Optional[str] = None  # the shard strategy's display name
    codec: Optional[Any] = None  # set when deltas are keyed

    @property
    def completed(self) -> int:
        """How many local checkpoints the shard actually reached."""
        return len(self.deltas)

    @property
    def keyed(self) -> bool:
        """Whether this shard's deltas are packed key arrays.

        Vacuously true for an empty delta list -- an empty shard merges
        cleanly into either key-space or string-space accumulation.
        """
        return all(isinstance(d, KeyedCheckpointDelta) for d in self.deltas)

    def reached(self, mark: int) -> bool:
        """Did the shard finish every local checkpoint up to ``mark``?"""
        needed = sum(1 for budget in self.local_budgets if budget <= mark)
        return self.completed >= needed


class _ShardProgress:
    """Per-batch updates pass through; the run-level reporter closes once
    in :meth:`~repro.runtime.parallel.ParallelAttackEngine.run`, so a
    shard finishing must not emit a misleading global 'final' line."""

    def __init__(self, inner: ProgressReporter) -> None:
        self._inner = inner

    def update(self, increment: int = 1, extra: str = "") -> None:
        self._inner.update(increment, extra=extra)

    def close(self, extra: str = "") -> None:
        pass


def execute_shard(task: ShardTask, plan: ShardPlan) -> ShardOutcome:
    """Run one shard to completion (used by both executors)."""
    local_budgets = plan.local_budgets
    outcome = ShardOutcome(index=plan.index, local_budgets=local_budgets)
    if not local_budgets:
        return outcome  # more workers than guesses at every budget
    strategy = task.source.build() if isinstance(task.source, StrategySource) else task.source()
    outcome.method = getattr(strategy, "name", None)
    accounting = GuessAccounting(
        task.test_set, local_budgets, sample_cap=task.sample_cap, track_deltas=True
    )
    state = AttackState(accounting)
    engine = AttackEngine(set(), local_budgets, sample_cap=task.sample_cap)
    rng = plan.rng(task.seed, task.label_prefix)
    progress = _ShardProgress(task.progress) if task.progress is not None else None
    for _ in engine.stream(strategy, rng, state, progress=progress):
        pass
    outcome.deltas = accounting.deltas
    outcome.total = accounting.total
    outcome.batches = state.batches
    outcome.matched_samples = accounting.matched_samples
    outcome.non_matched_samples = accounting.non_matched_samples
    if accounting.mode == "encoded":
        outcome.codec = accounting.codec
    return outcome


class LocalExecutor:
    """Runs shards sequentially in-process: the deterministic reference."""

    def run(self, task: ShardTask, plans: Sequence[ShardPlan]) -> List[ShardOutcome]:
        """Run every shard in plan order, in this process, and collect outcomes."""
        return [execute_shard(task, plan) for plan in plans]


def _shard_entry(queue, task: ShardTask, plan: ShardPlan) -> None:
    try:
        queue.put((plan.index, execute_shard(task, plan), None))
    except BaseException as exc:  # surface worker failures in the parent
        try:
            import pickle

            pickle.dumps(exc)
            payload = exc  # re-raisable with its original type (e.g. SpecError)
        except Exception:
            payload = None
        queue.put((plan.index, None, (payload, traceback.format_exc())))


class ProcessExecutor:
    """One forked OS process per shard.

    Fork start is required: workers inherit the strategy source's heavy
    resources (trained model, corpus, test set) by address-space copy, and
    only the compact :class:`ShardOutcome` crosses the result queue.  On
    platforms without fork this raises at construction; callers fall back
    to :class:`LocalExecutor` (identical results, no parallelism).
    """

    def __init__(self) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError("ProcessExecutor requires the fork start method")
        self._context = multiprocessing.get_context("fork")

    def run(self, task: ShardTask, plans: Sequence[ShardPlan]) -> List[ShardOutcome]:
        """Fork one worker per shard; gather outcomes in shard-index order.

        Raises the original worker exception (when picklable) or a
        RuntimeError naming shards that died without reporting.
        """
        queue = self._context.Queue()
        processes = [
            self._context.Process(
                target=_shard_entry, args=(queue, task, plan), daemon=True
            )
            for plan in plans
        ]
        for process in processes:
            process.start()
        outcomes: List[Optional[ShardOutcome]] = [None] * len(plans)
        failure: Optional[str] = None
        shard_exception: Optional[BaseException] = None
        collected = 0
        idle_rounds_with_dead = 0
        try:
            while collected < len(plans) and failure is None:
                try:
                    index, outcome, error = queue.get(timeout=1.0)
                except Exception:  # queue.Empty: check for silently dead workers
                    dead = [
                        plan.index
                        for plan, process in zip(plans, processes)
                        if not process.is_alive() and outcomes[plan.index] is None
                    ]
                    # grace rounds: a just-exited worker's result may still
                    # be in flight through the queue's feeder pipe
                    idle_rounds_with_dead = idle_rounds_with_dead + 1 if dead else 0
                    if idle_rounds_with_dead >= 3:
                        failure = f"shard(s) {dead} died without reporting a result"
                    continue
                idle_rounds_with_dead = 0
                if error is not None:
                    shard_exception, trace = error
                    failure = f"shard {index} failed:\n{trace}"
                else:
                    outcomes[index] = outcome
                    collected += 1
        finally:
            for process in processes:
                if process.is_alive() and failure is not None:
                    process.terminate()
                process.join()
            queue.close()
        if failure is not None:
            if shard_exception is not None:
                # re-raise with the original type so callers can handle it
                # (e.g. the CLI turning a SpecError into a clean exit)
                logger.warning("%s", failure)
                raise shard_exception
            raise RuntimeError(failure)
        return [outcome for outcome in outcomes if outcome is not None]

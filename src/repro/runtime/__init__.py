"""Parallel attack runtime: sharded execution on the mergeable accounting core.

Three layers sit between a strategy spec and a Table II/III report:

* :class:`ShardPlanner` splits the guess-budget schedule evenly across W
  workers, giving each shard a named RNG stream
  (``spawn_rng(seed, "shard-i")``) and per-budget marks that sum exactly
  to the global budgets;
* :class:`LocalExecutor` (in-process, the deterministic reference) and
  :class:`ProcessExecutor` (one forked process per shard; strategies are
  rebuilt in the worker from their registry spec via
  :class:`StrategySource`) run static shards;
  :class:`WorkStealingExecutor` runs elastic chunk chains over a
  persistent thread pool (any idle worker pulls the next chunk of any
  shard, and dry shards' budgets are re-planned onto the live fleet at
  checkpoint boundaries -- see :mod:`repro.runtime.elastic`);
  :class:`ProcessPoolExecutor` (:mod:`repro.runtime.pool`) runs either
  schedule on a fork-server pool of long-lived workers with sticky
  shard-to-process affinity -- real multi-core throughput for GIL-bound
  strategies under elastic re-planning;
* :class:`ParallelAttackEngine` merges the shards' checkpoint deltas into
  the same :class:`~repro.core.guesser.BudgetRow` checkpoints the serial
  engine emits.  Shards that account in interned-id key space (every
  smoother-free PassFlow strategy) ship their deltas as
  :class:`~repro.core.guesser.KeyedCheckpointDelta` packed uint64 arrays
  and the merge runs as sorted-array set operations; string-mode shards
  (baselines, smoothing) ship :class:`~repro.core.guesser.CheckpointDelta`
  string lists, and mixed runs merge exactly in string space.

Typical use::

    from repro.runtime import ParallelAttackEngine, StrategySource

    engine = ParallelAttackEngine(test_set, budgets=[10**4, 10**5], workers=4)
    source = StrategySource("passflow:dynamic+gs?alpha=1&sigma=0.12", model=model)
    report = engine.run(source, seed=7)

Determinism contract: fixed ``(seed, workers, schedule)`` -> bit-identical
reports, regardless of executor.  ``workers=1`` with the default static
schedule through the serial :class:`~repro.strategies.engine.AttackEngine`
path (as the CLI and eval harness route it) reproduces seed-era reports
bit-identically; ``schedule="elastic"`` chunks every shard's stream over
named per-chunk RNG streams, so its reports are a different (equally
valid, equally deterministic) sample of the same attack.
"""

from repro.runtime.elastic import (
    ElasticShardOutcome,
    chunk_quotas,
    run_elastic,
)
from repro.runtime.executor import (
    LocalExecutor,
    ProcessExecutor,
    ShardOutcome,
    ShardTask,
    StrategySource,
    WorkStealingExecutor,
    execute_shard,
)
from repro.runtime.parallel import (
    EXECUTOR_NAMES,
    ParallelAttackEngine,
    default_executor,
    resolve_executor,
)
from repro.runtime.planner import (
    ShardPlan,
    ShardPlanner,
    ShardProgress,
    balanced_totals,
    split_budget,
)

from repro.runtime.pool import ProcessPoolExecutor

__all__ = [
    "EXECUTOR_NAMES",
    "ElasticShardOutcome",
    "LocalExecutor",
    "ParallelAttackEngine",
    "ProcessExecutor",
    "ProcessPoolExecutor",
    "ShardOutcome",
    "ShardPlan",
    "ShardPlanner",
    "ShardProgress",
    "ShardTask",
    "StrategySource",
    "WorkStealingExecutor",
    "balanced_totals",
    "chunk_quotas",
    "default_executor",
    "execute_shard",
    "resolve_executor",
    "run_elastic",
    "split_budget",
]

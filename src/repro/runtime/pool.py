"""Fork-server process pool: long-lived workers with sticky shard affinity.

The thread-backed elastic runtime (:class:`~repro.runtime.executor.
WorkStealingExecutor`) re-plans budgets beautifully but runs every chunk
under the GIL, so GIL-bound strategies (markov, PCFG, conditional
PassFlow) see static-grade CPU parallelism at best.  This module provides
the process-backed counterpart: :class:`ProcessPoolExecutor` forks a
fleet of long-lived worker processes **once per attack run** (a fork
server -- children inherit the trained model, corpus and test set by
address-space copy, nothing heavy is ever pickled) and keeps a **sticky
shard-to-process affinity** (``shard i -> worker i % P``) so a shard's
strategy instance, RNG bookkeeping and accounting state live in exactly
one process for the whole run and never migrate.

Two protocols run over the same pair of OS channels (one command pipe
per worker, one shared result queue):

* **Static** (:meth:`ProcessPoolExecutor.run`): the parent sends each
  worker its shards' :class:`~repro.runtime.planner.ShardPlan`\\ s; workers
  run :func:`~repro.runtime.executor.execute_shard` and stream back
  compact :class:`~repro.runtime.executor.ShardOutcome`\\ s -- the same
  wire format :class:`~repro.runtime.executor.ProcessExecutor` uses, so
  merged reports are bit-identical.
* **Elastic** (:meth:`ProcessPoolExecutor.elastic_host`): the parent
  streams *chunk descriptors* (``(shard, [chunk sizes])``) down the
  pipes; workers run the chunks through the same
  :class:`~repro.runtime.elastic._ShardRun` state machine the in-process
  hosts use and stream back per-chunk deltas (packed uint64
  :class:`~repro.core.guesser.KeyedCheckpointDelta` arrays for encoded
  strategies) plus consumed counters, so the elastic driver's
  checkpoint-boundary re-planning works unchanged.  Only descriptors go
  down and deltas come up -- the guess streams themselves never cross a
  process boundary.

Determinism: chunk contents are fixed by named RNG streams and the
chunk policy, and shard state is process-sticky, so for a fixed
``(seed, workers, schedule)`` the merged report is bit-identical to
:class:`~repro.runtime.executor.LocalExecutor` and
:class:`~repro.runtime.executor.WorkStealingExecutor`.  See
``docs/parallel.md`` for the executor-selection matrix.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.runtime.elastic import ChunkAssignment, ElasticShardOutcome, _ShardRun
from repro.runtime.executor import (
    CorpseWatch,
    ShardOutcome,
    ShardTask,
    execute_shard,
    picklable_exception,
    reap_processes,
)
from repro.runtime.planner import ShardPlan, ShardProgress
from repro.utils.logging import get_logger

logger = get_logger("runtime.pool")


def _pool_worker(worker_id: int, task: ShardTask, fleet: int, commands, results) -> None:
    """One fork-server worker: serve shard/chunk commands until told to stop.

    Owns the :class:`~repro.runtime.elastic._ShardRun` state of every
    shard with affinity to this worker (built lazily on the shard's
    first chunk).  Commands arrive strictly in order on this worker's
    pipe, so chunks of one shard always run in sequence; replies go to
    the shared result queue.  Delta payloads are streamed incrementally
    -- each reply carries only the checkpoints added since the last one
    -- and each shard's codec crosses the queue at most once.
    """
    runs: Dict[int, _ShardRun] = {}
    streamed: Dict[int, int] = {}  # deltas already shipped, per shard
    codec_sent: Set[int] = set()

    def fresh_deltas(run: _ShardRun) -> list:
        if run.accounting is None:
            return []
        start = streamed.get(run.index, 0)
        streamed[run.index] = len(run.accounting.deltas)
        return run.accounting.deltas[start:]

    def codec_once(run: _ShardRun):
        accounting = run.accounting
        if (
            run.index in codec_sent
            or accounting is None
            or accounting.mode != "encoded"
        ):
            return None
        codec_sent.add(run.index)
        return accounting.codec

    try:
        while True:
            try:
                command = commands.recv()
            except EOFError:  # parent is gone; nothing left to report to
                return
            kind = command[0]
            if kind == "chunks":
                _, index, sizes = command
                run = runs.get(index)
                if run is None:
                    run = runs[index] = _ShardRun(index, task, workers=fleet)
                crashed = False
                for size in sizes:
                    try:
                        run.run_chunk(size)
                    except Exception as exc:  # noqa: BLE001 - shipped to parent
                        run.live = False
                        run.error = exc
                        results.put(
                            (
                                "crash",
                                worker_id,
                                index,
                                run.consumed,
                                picklable_exception(exc),
                                traceback.format_exc(),
                            )
                        )
                        crashed = True
                        break
                    results.put(
                        (
                            "chunk",
                            worker_id,
                            index,
                            run.consumed,
                            run.live,
                            fresh_deltas(run),
                            codec_once(run),
                        )
                    )
                if not crashed:
                    results.put(("round-done", worker_id, index))
            elif kind == "close":
                for index, run in sorted(runs.items()):
                    run.close_window()
                    results.put(
                        ("window", worker_id, index, fresh_deltas(run), codec_once(run))
                    )
                results.put(("closed", worker_id))
            elif kind == "collect":
                for index, run in sorted(runs.items()):
                    outcome = run.outcome()
                    outcome.deltas = []  # streamed already; keep the reply compact
                    results.put(("final", worker_id, index, outcome))
                results.put(("collected", worker_id))
            elif kind == "shard":
                _, plan = command
                try:
                    outcome = execute_shard(task, plan)
                except BaseException as exc:  # surface failures in the parent
                    results.put(
                        (
                            "error",
                            worker_id,
                            plan.index,
                            picklable_exception(exc),
                            traceback.format_exc(),
                        )
                    )
                else:
                    results.put(("outcome", worker_id, plan.index, outcome))
            elif kind == "stop":
                return
    except (KeyboardInterrupt, BrokenPipeError):  # parent teardown in flight
        return


class _ForkServer:
    """One run's fleet of long-lived forked workers plus its channels.

    Forked once at construction (workers inherit ``task`` -- model,
    corpus, test set -- through the fork, never pickling), torn down
    exactly once by :meth:`stop`, which is safe to call from ``finally``
    no matter how the run ended.
    """

    def __init__(self, context, task: ShardTask, shards: int, size: int) -> None:
        self.size = max(1, min(size, shards))
        self.results = context.Queue()
        self.pipes = []
        self.procs = []
        for worker_id in range(self.size):
            receiver, sender = context.Pipe(duplex=False)
            process = context.Process(
                target=_pool_worker,
                args=(worker_id, task, shards, receiver, self.results),
                daemon=True,
            )
            process.start()
            receiver.close()  # the parent keeps only the sending end
            self.pipes.append(sender)
            self.procs.append(process)
        self.alive: Set[int] = set(range(self.size))
        self._stopped = False

    def owner(self, shard: int) -> int:
        """The worker a shard is sticky to (never changes mid-run)."""
        return shard % self.size

    def send(self, worker_id: int, message) -> None:
        """Queue one command on a worker's pipe (drops writes to corpses)."""
        if worker_id not in self.alive:
            return
        try:
            self.pipes[worker_id].send(message)
        except (BrokenPipeError, OSError):
            self.alive.discard(worker_id)

    def receive(self, timeout: float = 1.0):
        """One result-queue read; ``None`` after an idle timeout."""
        try:
            return self.results.get(timeout=timeout)
        except Exception:  # queue.Empty
            return None

    def dead_workers(self, worker_ids) -> List[int]:
        """The subset of ``worker_ids`` whose processes are gone."""
        return [wid for wid in worker_ids if not self.procs[wid].is_alive()]

    def stop(self) -> None:
        """Tear the fleet down (idempotent; callable from ``finally``)."""
        if self._stopped:
            return
        self._stopped = True
        for worker_id in sorted(self.alive):
            self.send(worker_id, ("stop",))
        for process in self.procs:
            process.join(timeout=2.0)
        reap_processes(self.procs)
        for pipe in self.pipes:
            try:
                pipe.close()
            except OSError:
                pass
        self.results.close()


class _PoolElasticHost:
    """Elastic shard host whose shard state lives in forked pool workers.

    Implements the same protocol as
    :class:`~repro.runtime.elastic._InProcessChunkHost` (``progress`` /
    ``run_round`` / ``close_window`` / ``errors`` / ``outcomes`` /
    ``finish``) against a :class:`_ForkServer`: rounds go down the pipes
    as chunk descriptors, consumed counters and delta payloads stream
    back per chunk, and the parent keeps a mirror of every shard's
    progress so the driver's re-planning math never blocks on a worker.
    A worker that dies mid-run retires all its shards (their unconsumed
    budget re-plans onto survivors); a strategy exception retires only
    its shard, exactly like the in-process hosts.
    """

    def __init__(self, context, task: ShardTask, shards: int, size: int) -> None:
        self.shards = shards
        self.server = _ForkServer(context, task, shards, size)
        self.consumed = [0] * shards
        self.live = [True] * shards
        self._errors: Dict[int, Exception] = {}
        self.deltas: List[list] = [[] for _ in range(shards)]
        self.codecs: List[Any] = [None] * shards
        self.slices: List[List[Tuple[int, int]]] = [[] for _ in range(shards)]
        self._window_start = [0] * shards
        self._finals: Dict[int, ElasticShardOutcome] = {}

    # -- protocol ------------------------------------------------------
    def progress(self) -> List[ShardProgress]:
        """Every shard's (consumed, live) mirror, in shard order."""
        return [
            ShardProgress(index, self.consumed[index], self.live[index])
            for index in range(self.shards)
        ]

    def errors(self) -> Dict[int, Exception]:
        """Crashed shards, by index (empty for a clean fleet)."""
        return dict(self._errors)

    def run_round(self, assignments: Sequence[ChunkAssignment]) -> None:
        """Dispatch one round of chunk descriptors and drain its replies."""
        pending: Set[int] = set()
        for index, sizes in assignments:
            worker_id = self.server.owner(index)
            if worker_id not in self.server.alive:
                continue  # shard already retired with its dead worker
            self.server.send(worker_id, ("chunks", index, list(sizes)))
            pending.add(index)
        self._drain(pending_shards=pending)

    def close_window(self) -> None:
        """Cut every shard's window in its worker, then record the slices."""
        expected = set(self.server.alive)
        for worker_id in sorted(expected):
            self.server.send(worker_id, ("close",))
        self._drain(pending_workers=expected, done_kind="closed")
        for index in range(self.shards):
            count = len(self.deltas[index])
            self.slices[index].append((self._window_start[index], count))
            self._window_start[index] = count

    def outcomes(self) -> List[ElasticShardOutcome]:
        """Collect worker-side terminal state and assemble merged outcomes."""
        expected = set(self.server.alive)
        for worker_id in sorted(expected):
            self.server.send(worker_id, ("collect",))
        self._drain(pending_workers=expected, done_kind="collected")
        results = []
        for index in range(self.shards):
            final = self._finals.get(index)
            results.append(
                ElasticShardOutcome(
                    index=index,
                    total=final.total if final is not None else self.consumed[index],
                    batches=final.batches if final is not None else 0,
                    deltas=self.deltas[index],
                    window_slices=self.slices[index],
                    matched_samples=(
                        final.matched_samples if final is not None else []
                    ),
                    non_matched_samples=(
                        final.non_matched_samples if final is not None else []
                    ),
                    method=final.method if final is not None else None,
                    codec=(
                        final.codec
                        if final is not None and final.codec is not None
                        else self.codecs[index]
                    ),
                    crashed=(
                        repr(self._errors[index]) if index in self._errors else None
                    ),
                )
            )
        return results

    def finish(self) -> None:
        """Tear the fork server down (idempotent; called from ``finally``)."""
        self.server.stop()

    # -- internals -----------------------------------------------------
    def _retire(self, index: int, error: Exception) -> None:
        if index in self._errors:
            return
        self.live[index] = False
        self._errors[index] = error
        logger.warning(
            "elastic shard %d crashed (%r); re-queueing its remaining budget",
            index,
            error,
        )

    def _mark_worker_dead(self, worker_id: int) -> None:
        """A corpse: retire every live shard sticky to it."""
        self.server.alive.discard(worker_id)
        for index in range(self.shards):
            if self.server.owner(index) == worker_id and self.live[index]:
                self._retire(
                    index,
                    RuntimeError(
                        f"pool worker {worker_id} died without reporting "
                        f"(shard {index})"
                    ),
                )

    def _drain(
        self,
        pending_shards: Optional[Set[int]] = None,
        pending_workers: Optional[Set[int]] = None,
        done_kind: str = "",
    ) -> None:
        """Process replies until every pending shard/worker has answered.

        Handles the streamed message kinds (``chunk``, ``crash``,
        ``window``, ``final``) regardless of which barrier is being
        waited on, so the one loop serves rounds, window closes and
        terminal collection.  Dead workers are detected by the corpse
        watch and their shards retired, shrinking the barrier instead of
        hanging it.
        """
        shards = pending_shards if pending_shards is not None else set()
        workers = pending_workers if pending_workers is not None else set()
        watch = CorpseWatch()
        while shards or workers:
            message = self.server.receive()
            if message is None:
                waiting = workers | {self.server.owner(index) for index in shards}
                corpses = watch.note_timeout(self.server.dead_workers(waiting))
                if corpses is not None:
                    for worker_id in corpses:
                        self._mark_worker_dead(worker_id)
                        shards -= {
                            index
                            for index in shards
                            if self.server.owner(index) == worker_id
                        }
                        workers.discard(worker_id)
                continue
            watch.note_receive()
            kind = message[0]
            if kind == "chunk":
                _, _, index, consumed, live, fresh, codec = message
                self.consumed[index] = consumed
                self.deltas[index].extend(fresh)
                if codec is not None:
                    self.codecs[index] = codec
                if not live:
                    self.live[index] = False  # ran dry, deterministically
            elif kind == "crash":
                _, _, index, consumed, exc, trace = message
                self.consumed[index] = consumed
                self._retire(
                    index,
                    exc
                    if exc is not None
                    else RuntimeError(f"shard {index} failed:\n{trace}"),
                )
                shards.discard(index)
            elif kind == "round-done":
                shards.discard(message[2])
            elif kind == "window":
                _, _, index, fresh, codec = message
                self.deltas[index].extend(fresh)
                if codec is not None:
                    self.codecs[index] = codec
            elif kind == "final":
                self._finals[message[2]] = message[3]
            elif kind == done_kind:
                workers.discard(message[1])


class ProcessPoolExecutor:
    """A fork-server pool with sticky shard affinity, for both schedules.

    ``processes`` caps the pool size (default: one worker per shard).
    Workers are forked once per run and serve commands until the run
    finishes; shard ``i`` always lives on worker ``i % P``, so strategy
    state (fitted models, RNG generators, accounting codecs) never
    migrates between processes.  Requires the ``fork`` start method --
    construction raises a one-line ``RuntimeError`` where it is missing
    so callers can surface an actionable message.
    """

    def __init__(self, processes: Optional[int] = None) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError("ProcessPoolExecutor requires the fork start method")
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes
        self._context = multiprocessing.get_context("fork")

    def run(self, task: ShardTask, plans: Sequence[ShardPlan]) -> List[ShardOutcome]:
        """Static schedule: dispatch whole shards to their sticky workers.

        Bit-identical outcomes to
        :class:`~repro.runtime.executor.ProcessExecutor` (the same
        :func:`~repro.runtime.executor.execute_shard` runs in the
        worker); the difference is lifecycle -- P long-lived workers
        instead of one fork per shard.  Raises the original worker
        exception when picklable, or a ``RuntimeError`` naming shards
        whose worker died without reporting.  All children are reaped in
        a ``finally`` regardless of how collection ends.
        """
        server = _ForkServer(
            self._context, task, len(plans), self.processes or len(plans)
        )
        outcomes: List[Optional[ShardOutcome]] = [None] * len(plans)
        failure: Optional[str] = None
        shard_exception: Optional[BaseException] = None
        try:
            for plan in plans:
                server.send(server.owner(plan.index), ("shard", plan))
            collected = 0
            watch = CorpseWatch()
            while collected < len(plans) and failure is None:
                message = server.receive()
                if message is None:
                    corpses = watch.note_timeout(
                        [
                            plan.index
                            for plan in plans
                            if outcomes[plan.index] is None
                            and not server.procs[server.owner(plan.index)].is_alive()
                        ]
                    )
                    if corpses is not None:
                        failure = (
                            f"shard(s) {corpses} died without reporting a result"
                        )
                    continue
                watch.note_receive()
                kind = message[0]
                if kind == "outcome":
                    _, _, index, outcome = message
                    outcomes[index] = outcome
                    collected += 1
                elif kind == "error":
                    _, _, index, exc, trace = message
                    shard_exception = exc
                    failure = f"shard {index} failed:\n{trace}"
        finally:
            server.stop()
        if failure is not None:
            if shard_exception is not None:
                # re-raise with the original type so callers can handle it
                logger.warning("%s", failure)
                raise shard_exception
            raise RuntimeError(failure)
        return [outcome for outcome in outcomes if outcome is not None]

    def elastic_host(self, task: ShardTask, workers: int) -> _PoolElasticHost:
        """The elastic shard host backing ``--schedule elastic`` runs."""
        return _PoolElasticHost(
            self._context, task, workers, self.processes or workers
        )

    def shutdown(self) -> None:
        """Nothing persistent to release (each run tears its fleet down)."""

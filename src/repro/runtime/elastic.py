"""Elastic shard scheduling: chunked shard runs with checkpoint re-planning.

The static runtime fixes every shard's quota up front, so a shard whose
strategy runs dry (finite guess streams, conditional templates) or
straggles under load idles the rest of the fleet.  The elastic schedule
keeps the same merge-at-checkpoint accounting discipline but makes two
changes, following the re-partitioning half of Liu's dynamic-load-balancing
playbook:

* **Chunked execution.**  Each budget window (the span between two global
  checkpoints) is processed as a round of per-shard *chunks*.  Chunk ``k``
  of shard ``i`` streams from its own named RNG stream
  (``spawn_rng(seed, "shard-i-chunk-k")``) through a fresh
  ``iter_guesses`` generator, while the shard's *strategy instance*
  persists across chunks -- so a shard's guess stream is a pure function
  of ``(seed, workers, schedule, chunk policy)`` and work stealing can
  reorder chunk execution across shards without changing any stream.
* **Checkpoint-aligned re-planning.**  At deterministic round boundaries
  the driver measures what every shard actually produced; shards that ran
  dry (or crashed) release their unconsumed budget back to the queue and
  :meth:`~repro.runtime.planner.ShardPlanner.replan` re-splits it over the
  live shards, marks still summing exactly to each budget.  Dryness is a
  property of the strategy (guess counts), never of wall-clock timing, so
  re-planning decisions are bit-reproducible.

Determinism contract: for fixed ``(seed, workers, schedule="elastic")``
the merged report is bit-identical across runs and across
:class:`~repro.runtime.executor.LocalExecutor` (sequential reference) and
:class:`~repro.runtime.executor.WorkStealingExecutor` (persistent thread
pool, chunk-level stealing).  Elastic streams differ from static streams
for RNG-driven strategies (different named streams); for
position-deterministic strategies -- enumerators whose next guess depends
only on instance state -- the two schedules produce identical reports.

When every shard runs dry before the final budget, the run closes out
with a row reporting the guesses *actually accounted* (the shards' dry
tails included) instead of pretending the full budget was attempted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.guesser import Delta, GuessAccounting, KeyedCheckpointDelta
from repro.runtime.executor import _ShardProgress, build_shard_strategy
from repro.runtime.planner import ShardPlanner, ShardProgress, balanced_totals
from repro.strategies.engine import AttackEngine, AttackState
from repro.utils.logging import get_logger
from repro.utils.rng import spawn_rng

logger = get_logger("runtime.elastic")

#: Auto chunk policy: a shard's round quota splits into at most this many
#: chunks, so small windows stay cheap and large windows interleave well.
DEFAULT_CHUNKS_PER_ROUND = 8


def chunk_quotas(quota: int, chunk_size: Optional[int] = None) -> List[int]:
    """Deterministic chunk sizes covering a shard's round quota exactly.

    With an explicit ``chunk_size`` the quota splits into full chunks plus
    one remainder chunk; the default policy sizes chunks as
    ``ceil(quota / DEFAULT_CHUNKS_PER_ROUND)``.  Chunk boundaries are part
    of the elastic determinism key -- they decide where each per-chunk RNG
    stream starts -- so they depend only on the quota and the policy,
    never on timing.
    """
    if quota < 1:
        return []
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    size = chunk_size if chunk_size is not None else max(
        1, math.ceil(quota / DEFAULT_CHUNKS_PER_ROUND)
    )
    full, rest = divmod(quota, size)
    return [size] * full + ([rest] if rest else [])


@dataclass
class ElasticShardOutcome:
    """A finished elastic shard's accounting, grouped by budget window.

    ``deltas`` holds every checkpoint delta the shard emitted (one per
    chunk, plus a window-closing cut for dry tails);
    ``window_slices[j]`` is the half-open index range of the deltas that
    belong to budget window ``j``, so the merger can reconstruct the
    global state at each budget without caring how many chunks a window
    took.  ``crashed`` carries the repr of the strategy exception that
    retired the shard, if any (its budget was re-planned onto live
    shards).  ``codec`` mirrors the static
    :class:`~repro.runtime.executor.ShardOutcome` contract for keyed
    deltas.
    """

    index: int
    total: int = 0
    batches: int = 0
    deltas: List[Delta] = field(default_factory=list)
    window_slices: List[Tuple[int, int]] = field(default_factory=list)
    matched_samples: List[str] = field(default_factory=list)
    non_matched_samples: List[str] = field(default_factory=list)
    method: Optional[str] = None
    codec: Optional[Any] = None
    crashed: Optional[str] = None

    @property
    def keyed(self) -> bool:
        """Whether every delta is a packed key array (vacuously true when empty)."""
        return all(isinstance(d, KeyedCheckpointDelta) for d in self.deltas)

    def window_deltas(self, window: int) -> List[Delta]:
        """The deltas emitted inside budget window ``window`` (possibly empty)."""
        if window >= len(self.window_slices):
            return []
        start, stop = self.window_slices[window]
        return self.deltas[start:stop]


class _ShardRun:
    """One shard's persistent state across elastic chunks.

    Owns the shard's strategy instance (feedback state survives chunk
    boundaries, exactly as it survives batch boundaries in a static
    shard) and its delta-tracked accounting.  ``run_chunk`` is the unit
    the executors schedule; it is only ever invoked by one worker at a
    time (the chunk-chain protocol guarantees order).
    """

    def __init__(self, index, task, workers: int = 1) -> None:
        self.index = index
        self.task = task
        self.strategy = build_shard_strategy(task.source, index)
        self.method = getattr(self.strategy, "name", None)
        bind_shard = getattr(self.strategy, "bind_shard", None)
        if bind_shard is not None:
            # same fleet-coordinate hook as the static execute_shard:
            # position-deterministic strategies (bank replay) select their
            # strided substream before any chunk draws guesses
            bind_shard(index, workers)
        self.live = True
        self.error: Optional[Exception] = None
        self.chunk_counter = 0
        self.accounting: Optional[GuessAccounting] = None
        self.state: Optional[AttackState] = None
        self.window_slices: List[Tuple[int, int]] = []
        self._window_start = 0
        # stream() only reads the state's accounting; the engine instance
        # just carries the loop (budgets here are a placeholder)
        self._engine = AttackEngine(set(), [1], sample_cap=task.sample_cap)

    @property
    def consumed(self) -> int:
        """Guesses the shard has accounted so far (crash-safe: reads accounting)."""
        return self.accounting.total if self.accounting is not None else 0

    def run_chunk(self, quota: int) -> None:
        """Stream exactly ``quota`` more guesses (or run dry trying).

        The chunk's guesses come from ``spawn_rng(seed,
        "shard-i-chunk-k")`` through a fresh generator; the accounting
        gains one checkpoint at the chunk target, so every chunk's
        contribution lands in its own delta.  Producing fewer than
        ``quota`` guesses marks the shard dry, releasing its remaining
        budget to the next re-plan.
        """
        target = self.consumed + quota
        if self.accounting is None:
            self.accounting = GuessAccounting(
                self.task.test_set,
                [target],
                sample_cap=self.task.sample_cap,
                track_deltas=True,
            )
            self.state = AttackState(self.accounting)
        else:
            # extend the shard's checkpoint schedule chunk by chunk; only
            # live shards get chunks, so targets stay strictly ascending
            self.accounting.budgets.append(target)
        rng = spawn_rng(
            self.task.seed,
            f"{self.task.label_prefix}shard-{self.index}-chunk-{self.chunk_counter}",
        )
        self.chunk_counter += 1
        progress = (
            _ShardProgress(self.task.progress) if self.task.progress is not None else None
        )
        for _ in self._engine.stream(self.strategy, rng, self.state, progress=progress):
            pass
        if self.consumed < target:
            self.live = False

    def close_window(self) -> None:
        """Seal the current budget window: flush dry tails, record the slice."""
        if self.accounting is not None:
            self.accounting.cut_checkpoint()  # no-op when chunk-aligned
        count = len(self.accounting.deltas) if self.accounting is not None else 0
        self.window_slices.append((self._window_start, count))
        self._window_start = count

    def outcome(self) -> ElasticShardOutcome:
        """Freeze the run into a mergeable :class:`ElasticShardOutcome`."""
        accounting = self.accounting
        out = ElasticShardOutcome(
            index=self.index,
            total=self.consumed,
            batches=self.state.batches if self.state is not None else 0,
            window_slices=list(self.window_slices),
            method=self.method,
            crashed=repr(self.error) if self.error is not None else None,
        )
        if accounting is not None:
            out.deltas = accounting.deltas
            out.matched_samples = accounting.matched_samples
            out.non_matched_samples = accounting.non_matched_samples
            if accounting.mode == "encoded":
                out.codec = accounting.codec
        return out


#: One shard's chunk work for a round: ``(shard_index, [chunk sizes])``.
#: Chunk boundaries are cut by the driver (:func:`chunk_quotas`) so the
#: elastic determinism key stays centralized; hosts only execute them.
ChunkAssignment = Tuple[int, List[int]]


class _InProcessChunkHost:
    """Shard state owned by the driver's process, dispatched as thunk chains.

    The reference implementation of the elastic *shard-host* protocol
    (``progress`` / ``run_round`` / ``close_window`` / ``errors`` /
    ``outcomes`` / ``finish``): one :class:`_ShardRun` per shard lives in
    this process, and each round's :class:`ChunkAssignment` list is
    translated into the zero-argument chunk-chain form the in-process
    executors (:class:`~repro.runtime.executor.LocalExecutor`,
    :class:`~repro.runtime.executor.WorkStealingExecutor`) speak.
    :class:`~repro.runtime.pool.ProcessPoolExecutor` implements the same
    protocol with shard state living in forked workers instead.
    """

    def __init__(self, task, workers: int, executor) -> None:
        self.executor = executor
        self.runs = [_ShardRun(index, task, workers=workers) for index in range(workers)]

    def progress(self) -> List[ShardProgress]:
        """Every shard's (consumed, live) snapshot, in shard order."""
        return [
            ShardProgress(run.index, run.consumed, run.live) for run in self.runs
        ]

    def errors(self) -> dict:
        """Crashed shards, by index (empty for a clean fleet)."""
        return {run.index: run.error for run in self.runs if run.error is not None}

    def run_round(self, assignments: List[ChunkAssignment]) -> None:
        """Run one round of chunk chains; crashed shards are retired."""
        chains = [
            [
                (lambda run=self.runs[index], size=size: run.run_chunk(size))
                for size in sizes
            ]
            for index, sizes in assignments
        ]
        errors = self.executor.run_chains(chains)
        for (index, _), error in zip(assignments, errors):
            if error is not None:
                run = self.runs[index]
                run.live = False
                run.error = error
                logger.warning(
                    "elastic shard %d crashed (%r); re-queueing its "
                    "remaining budget",
                    index,
                    error,
                )

    def close_window(self) -> None:
        """Seal the current budget window on every shard."""
        for run in self.runs:
            run.close_window()

    def outcomes(self) -> List[ElasticShardOutcome]:
        """Freeze every shard into a mergeable outcome, in shard order."""
        return [run.outcome() for run in self.runs]

    def finish(self) -> None:
        """Release host resources (nothing to do in-process)."""


def _make_host(task, workers: int, executor):
    """The shard host for ``executor``: its own, or the in-process reference."""
    if hasattr(executor, "elastic_host"):
        return executor.elastic_host(task, workers)
    if hasattr(executor, "run_chains"):
        return _InProcessChunkHost(task, workers, executor)
    raise ValueError(
        f"{type(executor).__name__} cannot run elastic schedules; use "
        "LocalExecutor, WorkStealingExecutor or ProcessPoolExecutor"
    )


def run_elastic(
    task,
    planner: ShardPlanner,
    executor,
    chunk_size: Optional[int] = None,
) -> Tuple[List[ElasticShardOutcome], int]:
    """Drive one attack elastically; returns (outcomes, completed windows).

    ``task`` is the shared :class:`~repro.runtime.executor.ShardTask`;
    ``executor`` must either speak the chunk-chain protocol
    (``run_chains``: :class:`~repro.runtime.executor.LocalExecutor` or
    :class:`~repro.runtime.executor.WorkStealingExecutor`) or provide its
    own shard host (``elastic_host``:
    :class:`~repro.runtime.pool.ProcessPoolExecutor`, whose shard state
    lives in forked workers).  Every budget window runs as one or more
    deterministic rounds: live shards receive their re-planned quota as a
    chain of chunks, the host runs the chains (stealing or process
    affinity, per executor), and any shortfall left by dry or crashed
    shards is re-split over the survivors.  The returned count says how
    many global budgets were fully consumed; the caller emits a close-out
    row from the remaining deltas when it is short.

    Raises the first shard error when *every* shard crashed (there is
    nothing left to absorb the budget, and silence would hide the bug).
    """
    host = _make_host(task, planner.workers, executor)
    try:
        completed = 0
        for j, budget in enumerate(planner.budgets):
            progress = host.progress()
            if not any(p.live for p in progress):
                break
            plans = planner.replan(progress, planner.budgets[j:])
            quotas = {
                p.index: plans[p.index].marks[0] - p.consumed
                for p in progress
                if p.live
            }
            while True:
                alive = {p.index for p in host.progress() if p.live}
                assignments = [
                    (index, chunk_quotas(quota, chunk_size))
                    for index, quota in sorted(quotas.items())
                    if quota > 0 and index in alive
                ]
                if not assignments:
                    break
                host.run_round(assignments)
                progress = host.progress()
                if sum(p.consumed for p in progress) >= budget:
                    break
                live = [p for p in progress if p.live]
                if not live:
                    break
                # released budget flows to the least-loaded survivors first,
                # mirroring the replan rule (deterministic: depends only on
                # guess counts, never on timing)
                dead_total = sum(p.consumed for p in progress if not p.live)
                targets = balanced_totals(
                    [p.consumed for p in live], budget - dead_total
                )
                quotas = {
                    p.index: target - p.consumed
                    for p, target in zip(live, targets)
                }
            host.close_window()
            if sum(p.consumed for p in host.progress()) < budget:
                break
            completed = j + 1
        errors = host.errors()
        if planner.workers and len(errors) == planner.workers:
            raise errors[min(errors)]
        return host.outcomes(), completed
    finally:
        host.finish()

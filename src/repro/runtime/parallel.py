"""ParallelAttackEngine: sharded attacks with merge-at-checkpoint rows.

The engine splits the budget schedule over W shards
(:class:`~repro.runtime.planner.ShardPlanner`), runs each shard's own
strategy instance on its own RNG stream through an executor, and folds the
per-checkpoint delta payloads (packed-key
:class:`~repro.core.guesser.KeyedCheckpointDelta` arrays when shards
accounted in interned-id key space, string
:class:`~repro.core.guesser.CheckpointDelta` lists otherwise) back into
the same :class:`~repro.core.guesser.BudgetRow` checkpoints the serial
:class:`~repro.strategies.engine.AttackEngine` emits: at global budget
``b_j`` every shard has generated exactly its planned mark, so the union of
their uniques/matches *is* the global accounting state at ``b_j`` guesses.

Two schedules are supported behind one ``schedule`` knob:

* ``"static"`` (the default): one shard per worker with fixed marks, the
  merge-at-checkpoint discipline shipped since the first parallel
  runtime.
* ``"elastic"``: shards run as chunk chains over a work-stealing pool
  with checkpoint-aligned re-planning (:mod:`repro.runtime.elastic`);
  dry or crashed shards release their unconsumed budget back to the live
  fleet, so the attack still reaches every budget mark.

Determinism: for a fixed ``(seed, workers, schedule)`` the report is
bit-identical across runs and across executors (shard and chunk RNG
streams are named, merge order is shard order).  Reports for different
worker counts or schedules are equally valid Table II/III estimates but
not bit-identical to each other -- shard-local feedback (Dynamic
Sampling's matched-latent memory) and the interleaving of guess streams
differ.

When a run ends with every shard dry before the final budget mark, the
report closes out with a row at the guesses *actually accounted*
(including each shard's dry tail) instead of silently truncating -- or
worse, labeling partial work with the full budget.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

from repro.core.guesser import (
    BudgetRow,
    Delta,
    GuessingReport,
    KeyedCheckpointDelta,
    extend_samples,
)
from repro.runtime.elastic import ElasticShardOutcome, run_elastic
from repro.runtime.executor import (
    LocalExecutor,
    ProcessExecutor,
    ShardOutcome,
    ShardTask,
    StrategyFactory,
    WorkStealingExecutor,
)
from repro.runtime.planner import ShardPlan, ShardPlanner
from repro.runtime.pool import ProcessPoolExecutor
from repro.utils.logging import get_logger
from repro.utils.progress import ProgressReporter

logger = get_logger("runtime.parallel")

SCHEDULES = ("static", "elastic")

EXECUTOR_NAMES = ("auto", "local", "process", "worksteal", "processpool")


def default_executor(workers: int, schedule: str = "static"):
    """The executor a schedule wants when the caller doesn't pick one.

    Static schedules fork one process per shard when the platform allows
    it (else in-process, identical results); elastic schedules run on a
    work-stealing thread pool -- chunk chains need shared strategy state,
    which processes cannot migrate -- with the sequential
    :class:`LocalExecutor` for a single worker.
    """
    if schedule == "elastic":
        return LocalExecutor() if workers <= 1 else WorkStealingExecutor(workers)
    if workers <= 1:
        return LocalExecutor()
    try:
        return ProcessExecutor()
    except RuntimeError:
        logger.warning("fork unavailable; running %d shards in-process", workers)
        return LocalExecutor()


def resolve_executor(name: Optional[str], workers: int, schedule: str = "static"):
    """Build the executor a ``--executor`` request names, or fail clearly.

    ``None``/``"auto"`` defers to :func:`default_executor` (which may
    fall back silently); an *explicit* name must either work or raise a
    one-line actionable :class:`ValueError` -- no fallback, no
    traceback-only ``RuntimeError`` -- so CLI and harness callers can
    print it verbatim.
    """
    if name is None or name == "auto":
        return default_executor(workers, schedule)
    if name == "local":
        return LocalExecutor()
    if name == "worksteal":
        if schedule != "elastic":
            raise ValueError(
                "--executor worksteal only runs elastic schedules; use "
                "'local', 'process' or 'processpool' with --schedule static"
            )
        return LocalExecutor() if workers <= 1 else WorkStealingExecutor(workers)
    if name == "process":
        if schedule == "elastic":
            raise ValueError(
                "--executor process cannot run elastic schedules (shard "
                "state cannot migrate across forks); use 'processpool', "
                "'worksteal' or 'local'"
            )
        try:
            return ProcessExecutor()
        except RuntimeError:
            raise ValueError(
                "--executor process requires the fork start method, which "
                "this platform does not provide; use --executor local"
            ) from None
    if name == "processpool":
        try:
            return ProcessPoolExecutor(processes=workers)
        except RuntimeError:
            raise ValueError(
                "--executor processpool requires the fork start method, "
                "which this platform does not provide; use --executor "
                "local or worksteal"
            ) from None
    raise ValueError(
        f"unknown executor {name!r}; choose from {', '.join(EXECUTOR_NAMES)}"
    )


class _DeltaFold:
    """Cumulative union of shard checkpoint deltas, in key or string space.

    One instance accumulates the global unique/matched state as deltas
    fold in.  Key space buffers fresh arrays and unions once per
    :meth:`flush` (one :func:`numpy.union1d` per checkpoint, not per
    shard delta); string space updates Python sets directly, decoding
    keyed payloads through their shard codec when a sibling shard fell
    back to strings.
    """

    def __init__(self, keyed: bool) -> None:
        self.keyed = keyed
        self._unique: set = set()
        self._matched: set = set()
        self._unique_keys = np.empty(0, dtype=np.uint64)
        self._matched_keys = np.empty(0, dtype=np.uint64)
        self._fresh_unique: List[np.ndarray] = []
        self._fresh_matched: List[np.ndarray] = []

    def add(self, delta: Delta, codec) -> None:
        """Fold one delta in (buffered in key space until :meth:`flush`)."""
        if self.keyed:
            self._fresh_unique.append(delta.new_unique_keys)
            self._fresh_matched.append(delta.new_matched_keys)
            return
        if isinstance(delta, KeyedCheckpointDelta):
            delta = delta.decode(codec)
        self._unique.update(delta.new_unique)
        self._matched.update(delta.new_matched)

    def flush(self) -> None:
        """Union buffered key arrays into the cumulative state (key space only)."""
        if self._fresh_unique:
            self._unique_keys = np.union1d(
                self._unique_keys, np.concatenate(self._fresh_unique)
            )
            self._fresh_unique = []
        if self._fresh_matched:
            self._matched_keys = np.union1d(
                self._matched_keys, np.concatenate(self._fresh_matched)
            )
            self._fresh_matched = []

    @property
    def unique_count(self) -> int:
        """Distinct guesses folded so far (call :meth:`flush` first)."""
        return int(self._unique_keys.size) if self.keyed else len(self._unique)

    @property
    def matched_count(self) -> int:
        """Distinct test-set hits folded so far (call :meth:`flush` first)."""
        return int(self._matched_keys.size) if self.keyed else len(self._matched)


class ParallelAttackEngine:
    """Runs one attack as W merged shards over a shared test set."""

    def __init__(
        self,
        test_set: Set[str],
        budgets: Sequence[int],
        workers: int = 1,
        executor=None,
        sample_cap: int = 16,
        schedule: str = "static",
        chunk_size: Optional[int] = None,
    ) -> None:
        if schedule not in SCHEDULES:
            raise ValueError(
                f"schedule must be one of {SCHEDULES}, got {schedule!r}"
            )
        self.test_set = set(test_set)
        self.planner = ShardPlanner(budgets, workers)  # validates budgets/workers
        self.budgets = self.planner.budgets
        self.workers = self.planner.workers
        self.schedule = schedule
        self.chunk_size = chunk_size
        self._owns_executor = executor is None or isinstance(executor, str)
        self.executor = (
            resolve_executor(executor, self.planner.workers, schedule)
            if executor is None or isinstance(executor, str)
            else executor
        )
        if schedule == "elastic" and not (
            hasattr(self.executor, "run_chains")
            or hasattr(self.executor, "elastic_host")
        ):
            raise ValueError(
                f"{type(self.executor).__name__} cannot run elastic schedules; "
                "use LocalExecutor, WorkStealingExecutor or ProcessPoolExecutor"
            )
        if schedule == "static" and not hasattr(self.executor, "run"):
            raise ValueError(
                f"{type(self.executor).__name__} cannot run static schedules; "
                "use LocalExecutor, ProcessExecutor or ProcessPoolExecutor"
            )
        self.sample_cap = sample_cap

    def run(
        self,
        source: StrategyFactory,
        seed: int,
        method: Optional[str] = None,
        label: str = "",
        progress: Optional[ProgressReporter] = None,
    ) -> GuessingReport:
        """Run every shard and merge their accounting into one report.

        ``source`` builds one fresh strategy per shard (a
        :class:`~repro.runtime.executor.StrategySource` spec recipe, or any
        zero-argument factory for in-process executors).  Under the static
        schedule shard ``i`` draws from ``spawn_rng(seed,
        f"{label}shard-{i}")``; under the elastic schedule each of its
        chunks draws from ``spawn_rng(seed, f"{label}shard-{i}-chunk-{k}")``.
        """
        task = ShardTask(
            source=source,
            test_set=self.test_set,
            seed=seed,
            sample_cap=self.sample_cap,
            label_prefix=label,
            progress=progress,  # per-batch updates inside each shard loop
        )
        if self.schedule == "elastic":
            try:
                outcomes, completed = run_elastic(
                    task, self.planner, self.executor, chunk_size=self.chunk_size
                )
            finally:
                if self._owns_executor and hasattr(self.executor, "shutdown"):
                    # release the pool threads between attacks; the lazy
                    # pool re-creates itself if this engine runs again
                    self.executor.shutdown()
            report = self._merge_elastic(
                outcomes, completed, self._resolve_method(method, outcomes, source)
            )
        else:
            plans = self.planner.plan()
            outcomes = self.executor.run(task, plans)
            if len(outcomes) != len(plans):
                raise RuntimeError(
                    f"executor returned {len(outcomes)} outcomes for {len(plans)} shards"
                )
            outcomes = sorted(outcomes, key=lambda outcome: outcome.index)
            report = self._merge(
                plans, outcomes, self._resolve_method(method, outcomes, source)
            )
        if progress is not None:
            # forked shards updated their own copies; reconcile the parent's
            # count before the merged summary line
            progress.count = max(
                progress.count, sum(outcome.total for outcome in outcomes)
            )
            matched = report.rows[-1].matched if report.rows else 0
            progress.close(extra=f"{len(outcomes)} shards merged, {matched} matched")
        return report

    def _resolve_method(self, method, outcomes, source: StrategyFactory) -> str:
        """Explicit method, else the shard strategies' name, else the spec."""
        if method is not None:
            return method
        shard_methods = [o.method for o in outcomes if o.method]
        return shard_methods[0] if shard_methods else self._method_of(source)

    @staticmethod
    def _method_of(source: StrategyFactory) -> str:
        spec = getattr(source, "spec", None)
        return spec if spec is not None else "parallel-attack"

    # ------------------------------------------------------------------
    @staticmethod
    def _keyed_merge_possible(outcomes: Sequence) -> bool:
        """Whether every shard's deltas can be unioned in one key space.

        Requires every outcome to carry keyed deltas *and* every codec to
        agree on the full packing scheme -- vocabulary size and max length
        fix the key layout, and the alphabet's character order fixes which
        password each key denotes, so all three must match before keys
        from different shards may be unioned.  Shards of one run always
        satisfy this, but a string-mode shard -- a baseline strategy, or a
        run that fell back to strings on its first batch -- or
        heterogeneous per-shard codecs force the (exact) string-space
        path.
        """
        if not all(outcome.keyed for outcome in outcomes):
            return False
        schemes = {
            (
                outcome.codec.vocab_size,
                outcome.codec.max_length,
                getattr(getattr(outcome.codec, "alphabet", None), "chars", None),
            )
            for outcome in outcomes
            if outcome.codec is not None
        }
        return len(schemes) <= 1

    def _merge(
        self,
        plans: List[ShardPlan],
        outcomes: List[ShardOutcome],
        method: str,
    ) -> GuessingReport:
        """Fold shard checkpoint deltas into global budget rows.

        Runs entirely in interned-id key space when every shard shipped
        :class:`~repro.core.guesser.KeyedCheckpointDelta` payloads: global
        unique/matched accumulation is then a sorted uint64 array per set
        and each checkpoint folds in with one :func:`numpy.union1d` -- no
        strings ever materialize.  If any shard fell back to string
        deltas, keyed payloads are decoded through their shard's codec and
        the merge runs in string space; either way the row counts are
        identical (keys and strings are in bijection).

        A budget some shard never reached gets no row (the strategy ran
        dry); instead the report closes out with a final row at the
        guesses actually accounted, folding in every leftover delta and
        each shard's dry tail (``partial_delta``).
        """
        fold = _DeltaFold(self._keyed_merge_possible(outcomes))
        cursors = [0] * len(outcomes)
        rows: List[BudgetRow] = []
        test_size = len(self.test_set)
        for j, budget in enumerate(self.budgets):
            complete = True
            for k, (plan, outcome) in enumerate(zip(plans, outcomes)):
                mark = plan.marks[j]
                if not outcome.reached(mark):
                    complete = False  # finite strategy ran dry mid-shard
                    continue
                while (
                    cursors[k] < outcome.completed
                    and outcome.local_budgets[cursors[k]] <= mark
                ):
                    fold.add(outcome.deltas[cursors[k]], outcome.codec)
                    cursors[k] += 1
            # one union per budget, not per shard delta: re-sorting the
            # cumulative array W times per checkpoint is where a
            # 10^7-key merge would burn its CPU budget
            fold.flush()
            if not complete:
                break  # the close-out row below reports what was accounted
            rows.append(self._row(budget, fold, test_size))
        if len(rows) < len(self.budgets):
            for k, outcome in enumerate(outcomes):
                for delta in outcome.deltas[cursors[k] :]:
                    fold.add(delta, outcome.codec)
                if outcome.partial_delta is not None:
                    fold.add(outcome.partial_delta, outcome.codec)
            fold.flush()
            self._close_out(rows, outcomes, fold, test_size)
        return self._report(method, rows, outcomes, test_size)

    def _merge_elastic(
        self,
        outcomes: List[ElasticShardOutcome],
        completed: int,
        method: str,
    ) -> GuessingReport:
        """Fold window-grouped elastic deltas into global budget rows.

        Window ``j`` of every shard holds exactly the deltas of the span
        between global budgets ``j-1`` and ``j`` (the elastic driver cut
        each shard's accounting at the window close), so the union of all
        shards' windows ``<= j`` is the global state at ``budgets[j]``.
        ``completed`` windows get a row each; when the fleet ran dry (or
        crashed) short of the schedule, the remaining deltas close out
        into a final row at the guesses actually accounted.
        """
        fold = _DeltaFold(self._keyed_merge_possible(outcomes))
        rows: List[BudgetRow] = []
        test_size = len(self.test_set)
        for j in range(completed):
            for outcome in outcomes:
                for delta in outcome.window_deltas(j):
                    fold.add(delta, outcome.codec)
            fold.flush()
            rows.append(self._row(self.budgets[j], fold, test_size))
        if completed < len(self.budgets):
            for outcome in outcomes:
                for window in range(completed, len(outcome.window_slices)):
                    for delta in outcome.window_deltas(window):
                        fold.add(delta, outcome.codec)
            fold.flush()
            self._close_out(rows, outcomes, fold, test_size)
        return self._report(
            method,
            rows,
            outcomes,
            test_size,
            shard_errors=[
                f"shard {outcome.index}: {outcome.crashed}"
                for outcome in outcomes
                if outcome.crashed
            ],
        )

    @staticmethod
    def _row(guesses: int, fold: _DeltaFold, test_size: int) -> BudgetRow:
        """One merged checkpoint row from the folder's cumulative counts."""
        matched = fold.matched_count
        return BudgetRow(
            guesses=guesses,
            unique=fold.unique_count,
            matched=matched,
            match_percent=100.0 * matched / test_size if test_size else 0.0,
        )

    def _close_out(
        self, rows: List[BudgetRow], outcomes, fold: _DeltaFold, test_size: int
    ) -> None:
        """Append the guesses-actually-accounted row after a dry run.

        ``fold`` must already hold every delta the shards shipped.  The
        row is labeled with the summed shard totals -- what was truly
        attempted -- and is skipped when that adds nothing beyond the last
        full checkpoint (e.g. every shard dried exactly on a mark).
        """
        accounted = sum(outcome.total for outcome in outcomes)
        if accounted > (rows[-1].guesses if rows else 0):
            rows.append(self._row(accounted, fold, test_size))

    def _report(
        self,
        method: str,
        rows: List[BudgetRow],
        outcomes,
        test_size: int,
        shard_errors: Optional[List[str]] = None,
    ) -> GuessingReport:
        """Assemble the merged report (rows plus shard-order samples).

        ``kernel_backend`` is stamped by the dataclass default from the
        parent's active backend; shard workers resolve the same choice
        because the CLI exports ``REPRO_KERNELS`` before spawning them.
        """
        return GuessingReport(
            method=method,
            test_size=test_size,
            rows=rows,
            non_matched_samples=self._merge_samples(
                [outcome.non_matched_samples for outcome in outcomes]
            ),
            matched_samples=self._merge_samples(
                [outcome.matched_samples for outcome in outcomes]
            ),
            shard_errors=shard_errors or [],
        )

    def _merge_samples(self, per_shard: List[List[str]]) -> List[str]:
        """Shard-order concatenation up to the cap, duplicates dropped."""
        merged: List[str] = []
        for samples in per_shard:
            extend_samples(merged, samples, self.sample_cap)
        return merged

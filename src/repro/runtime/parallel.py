"""ParallelAttackEngine: sharded attacks with merge-at-checkpoint rows.

The engine splits the budget schedule over W shards
(:class:`~repro.runtime.planner.ShardPlanner`), runs each shard's own
strategy instance on its own RNG stream through an executor, and folds the
per-checkpoint delta payloads (packed-key
:class:`~repro.core.guesser.KeyedCheckpointDelta` arrays when shards
accounted in interned-id key space, string
:class:`~repro.core.guesser.CheckpointDelta` lists otherwise) back into
the same :class:`~repro.core.guesser.BudgetRow` checkpoints the serial
:class:`~repro.strategies.engine.AttackEngine` emits: at global budget
``b_j`` every shard has generated exactly its planned mark, so the union of
their uniques/matches *is* the global accounting state at ``b_j`` guesses.

Determinism: for a fixed ``(seed, workers)`` the report is bit-identical
across runs and across executors (shard RNG streams are named, merge order
is shard order).  Reports for different worker counts are equally valid
Table II/III estimates but not bit-identical to each other -- shard-local
feedback (Dynamic Sampling's matched-latent memory) and the interleaving
of guess streams differ.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

from repro.core.guesser import (
    BudgetRow,
    GuessingReport,
    KeyedCheckpointDelta,
    extend_samples,
)
from repro.runtime.executor import (
    LocalExecutor,
    ProcessExecutor,
    ShardOutcome,
    ShardTask,
    StrategyFactory,
)
from repro.runtime.planner import ShardPlan, ShardPlanner
from repro.utils.logging import get_logger
from repro.utils.progress import ProgressReporter

logger = get_logger("runtime.parallel")


def default_executor(workers: int):
    """Processes when fork is available and useful, else in-process."""
    if workers <= 1:
        return LocalExecutor()
    try:
        return ProcessExecutor()
    except RuntimeError:
        logger.warning("fork unavailable; running %d shards in-process", workers)
        return LocalExecutor()


class ParallelAttackEngine:
    """Runs one attack as W merged shards over a shared test set."""

    def __init__(
        self,
        test_set: Set[str],
        budgets: Sequence[int],
        workers: int = 1,
        executor=None,
        sample_cap: int = 16,
    ) -> None:
        self.test_set = set(test_set)
        self.planner = ShardPlanner(budgets, workers)  # validates budgets/workers
        self.budgets = self.planner.budgets
        self.workers = self.planner.workers
        self.executor = executor if executor is not None else default_executor(workers)
        self.sample_cap = sample_cap

    def run(
        self,
        source: StrategyFactory,
        seed: int,
        method: Optional[str] = None,
        label: str = "",
        progress: Optional[ProgressReporter] = None,
    ) -> GuessingReport:
        """Run every shard and merge their accounting into one report.

        ``source`` builds one fresh strategy per shard (a
        :class:`~repro.runtime.executor.StrategySource` spec recipe, or any
        zero-argument factory for in-process executors).  Shard ``i``
        draws from ``spawn_rng(seed, f"{label}shard-{i}")``.
        """
        plans = self.planner.plan()
        task = ShardTask(
            source=source,
            test_set=self.test_set,
            seed=seed,
            sample_cap=self.sample_cap,
            label_prefix=label,
            progress=progress,  # per-batch updates inside each shard loop
        )
        outcomes = self.executor.run(task, plans)
        if len(outcomes) != len(plans):
            raise RuntimeError(
                f"executor returned {len(outcomes)} outcomes for {len(plans)} shards"
            )
        outcomes = sorted(outcomes, key=lambda outcome: outcome.index)
        if method is None:
            shard_methods = [o.method for o in outcomes if o.method]
            method = shard_methods[0] if shard_methods else self._method_of(source)
        report = self._merge(plans, outcomes, method)
        if progress is not None:
            # forked shards updated their own copies; reconcile the parent's
            # count before the merged summary line
            progress.count = max(
                progress.count, sum(outcome.total for outcome in outcomes)
            )
            matched = report.rows[-1].matched if report.rows else 0
            progress.close(extra=f"{len(outcomes)} shards merged, {matched} matched")
        return report

    @staticmethod
    def _method_of(source: StrategyFactory) -> str:
        spec = getattr(source, "spec", None)
        return spec if spec is not None else "parallel-attack"

    # ------------------------------------------------------------------
    @staticmethod
    def _keyed_merge_possible(outcomes: List[ShardOutcome]) -> bool:
        """Whether every shard's deltas can be unioned in one key space.

        Requires every outcome to carry keyed deltas *and* every codec to
        agree on the packing geometry (vocabulary size and max length fix
        the key layout); shards of one run always satisfy both, but a
        string-mode shard -- a baseline strategy, or a run that fell back
        to strings on its first batch -- forces the string-space path.
        """
        if not all(outcome.keyed for outcome in outcomes):
            return False
        geometries = {
            (outcome.codec.vocab_size, outcome.codec.max_length)
            for outcome in outcomes
            if outcome.codec is not None
        }
        return len(geometries) <= 1

    def _merge(
        self,
        plans: List[ShardPlan],
        outcomes: List[ShardOutcome],
        method: str,
    ) -> GuessingReport:
        """Fold shard checkpoint deltas into global budget rows.

        Runs entirely in interned-id key space when every shard shipped
        :class:`~repro.core.guesser.KeyedCheckpointDelta` payloads: global
        unique/matched accumulation is then a sorted uint64 array per set
        and each delta folds in via :func:`numpy.union1d` -- no strings
        ever materialize.  If any shard fell back to string deltas, keyed
        payloads are decoded through their shard's codec and the merge
        runs in string space; either way the row counts are identical
        (keys and strings are in bijection).
        """
        keyed = self._keyed_merge_possible(outcomes)
        unique: set = set()
        matched: set = set()
        unique_keys = np.empty(0, dtype=np.uint64)
        matched_keys = np.empty(0, dtype=np.uint64)
        cursors = [0] * len(outcomes)
        rows: List[BudgetRow] = []
        test_size = len(self.test_set)
        for j, budget in enumerate(self.budgets):
            complete = True
            fresh_unique: List[np.ndarray] = []
            fresh_matched: List[np.ndarray] = []
            for plan, outcome, k in zip(plans, outcomes, range(len(outcomes))):
                mark = plan.marks[j]
                if not outcome.reached(mark):
                    complete = False  # finite strategy ran dry mid-shard
                    continue
                while (
                    cursors[k] < outcome.completed
                    and outcome.local_budgets[cursors[k]] <= mark
                ):
                    delta = outcome.deltas[cursors[k]]
                    if keyed:
                        fresh_unique.append(delta.new_unique_keys)
                        fresh_matched.append(delta.new_matched_keys)
                    else:
                        if isinstance(delta, KeyedCheckpointDelta):
                            delta = delta.decode(outcome.codec)
                        unique.update(delta.new_unique)
                        matched.update(delta.new_matched)
                    cursors[k] += 1
            if keyed:
                # one union per budget, not per shard delta: re-sorting the
                # cumulative array W times per checkpoint is where a
                # 10^7-key merge would burn its CPU budget
                if fresh_unique:
                    unique_keys = np.union1d(unique_keys, np.concatenate(fresh_unique))
                if fresh_matched:
                    matched_keys = np.union1d(
                        matched_keys, np.concatenate(fresh_matched)
                    )
            if not complete:
                break  # mirror the serial engine: no row for an unreached budget
            n_unique = int(unique_keys.size) if keyed else len(unique)
            n_matched = int(matched_keys.size) if keyed else len(matched)
            percent = 100.0 * n_matched / test_size if test_size else 0.0
            rows.append(
                BudgetRow(
                    guesses=budget,
                    unique=n_unique,
                    matched=n_matched,
                    match_percent=percent,
                )
            )
        return GuessingReport(
            method=method,
            test_size=test_size,
            rows=rows,
            non_matched_samples=self._merge_samples(
                [outcome.non_matched_samples for outcome in outcomes]
            ),
            matched_samples=self._merge_samples(
                [outcome.matched_samples for outcome in outcomes]
            ),
        )

    def _merge_samples(self, per_shard: List[List[str]]) -> List[str]:
        """Shard-order concatenation up to the cap, duplicates dropped."""
        merged: List[str] = []
        for samples in per_shard:
            extend_samples(merged, samples, self.sample_cap)
        return merged

"""Shard planning: split a guess-budget schedule across W workers.

The planner follows the static-split half of the dynamic-load-balancing
playbook (Liu, *Dynamic Load Balancing Algorithms in Parallel Adaptive
FEM*): budgets are divided as evenly as possible up front, every shard
draws from its own named RNG stream (``spawn_rng(seed, "shard-i")``), and
imbalance is reconciled by merging accounting states at the shared
checkpoints rather than by migrating work.

For each global budget ``b`` and shard ``i`` the shard's *mark* is its
cumulative local quota ``b // W + (1 if i < b % W else 0)``; marks sum to
``b`` exactly, so when every shard reaches its mark for checkpoint ``j``
the union of their accounting states is the global state at exactly ``b``
guesses -- which is how :class:`~repro.runtime.parallel.ParallelAttackEngine`
reconstructs serial-shaped :class:`~repro.core.guesser.BudgetRow` rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.guesser import validate_budgets
from repro.utils.rng import spawn_rng


def split_budget(budget: int, workers: int, index: int) -> int:
    """Shard ``index``'s share of ``budget`` under an even split."""
    base, remainder = divmod(budget, workers)
    return base + (1 if index < remainder else 0)


@dataclass(frozen=True)
class ShardPlan:
    """One worker's slice of an attack.

    ``marks[j]`` is the shard's cumulative guess quota at global budget
    ``j``; ``local_budgets`` is the deduplicated positive mark sequence the
    shard actually runs its accounting over (two global budgets can map to
    the same local mark when budgets are small relative to the worker
    count, and a mark of zero means the shard contributes nothing yet).
    """

    index: int
    marks: List[int]

    @property
    def local_budgets(self) -> List[int]:
        """Deduplicated positive marks: the shard's own budget schedule."""
        return sorted({mark for mark in self.marks if mark > 0})

    def rng_label(self, prefix: str = "") -> str:
        """The shard's RNG stream label (``spawn_rng(seed, label)``)."""
        return f"{prefix}shard-{self.index}"

    def rng(self, seed: int, prefix: str = "") -> np.random.Generator:
        """The shard's own deterministic generator for attack ``seed``."""
        return spawn_rng(seed, self.rng_label(prefix))


class ShardPlanner:
    """Plans the even split of a budget schedule over ``workers`` shards."""

    def __init__(self, budgets: Sequence[int], workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.budgets = validate_budgets(budgets)
        self.workers = int(workers)

    def plan(self) -> List[ShardPlan]:
        """One :class:`ShardPlan` per worker; marks sum to each budget."""
        return [
            ShardPlan(
                index=i,
                marks=[split_budget(b, self.workers, i) for b in self.budgets],
            )
            for i in range(self.workers)
        ]

"""Shard planning: split a guess-budget schedule across W workers.

The planner follows both halves of the dynamic-load-balancing playbook
(Liu, *Dynamic Load Balancing Algorithms in Parallel Adaptive FEM*):
budgets are divided as evenly as possible up front (:meth:`ShardPlanner.plan`),
every shard draws from its own named RNG stream
(``spawn_rng(seed, "shard-i")``), and imbalance is reconciled at the
shared checkpoints -- by merging accounting states (static schedules), or
by re-splitting the unconsumed budget over the shards still producing
(:meth:`ShardPlanner.replan`, the elastic schedule's re-partitioning
step).

For each global budget ``b`` and shard ``i`` the shard's *mark* is its
cumulative local quota ``b // W + (1 if i < b % W else 0)``; marks sum to
``b`` exactly, so when every shard reaches its mark for checkpoint ``j``
the union of their accounting states is the global state at exactly ``b``
guesses -- which is how :class:`~repro.runtime.parallel.ParallelAttackEngine`
reconstructs serial-shaped :class:`~repro.core.guesser.BudgetRow` rows.
Re-planned marks keep the same invariant: dead shards are frozen at what
they actually consumed and live shards absorb the rest, so every budget's
marks still sum to it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.guesser import validate_budgets
from repro.utils.rng import spawn_rng


def split_budget(budget: int, workers: int, index: int) -> int:
    """Shard ``index``'s share of ``budget`` under an even split."""
    base, remainder = divmod(budget, workers)
    return base + (1 if index < remainder else 0)


def balanced_totals(consumed: Sequence[int], target: int) -> List[int]:
    """Raise each shard's total to reach ``target``, as evenly as possible.

    Bounded water-filling: every entry may only grow (a shard cannot
    un-guess), the results sum to ``target`` exactly, the maximum is
    minimized, and leftover units go to the lowest ranks -- the same
    remainder rule as :func:`split_budget`.  With equal starting totals
    this *is* ``split_budget``; starting from the marks of a previous
    budget it reproduces the static plan's marks for the next one, which
    is what keeps an elastic run without faults bit-identical to the
    static split.
    """
    extra = target - sum(consumed)
    if extra < 0:
        raise ValueError(
            f"target {target} is below the {sum(consumed)} guesses already consumed"
        )
    if not consumed:
        if target:
            raise ValueError(
                f"cannot distribute a target of {target} over zero shards"
            )
        return []
    if extra == 0:
        return list(consumed)
    # largest water level L with sum(max(c, L)) <= target; f is
    # non-decreasing in L so binary search applies
    lo, hi = min(consumed), max(consumed) + extra
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if sum(max(c, mid) for c in consumed) <= target:
            lo = mid
        else:
            hi = mid - 1
    totals = [max(c, lo) for c in consumed]
    leftover = target - sum(totals)
    for rank, c in enumerate(consumed):
        if leftover == 0:
            break
        if totals[rank] == lo:  # sits exactly on the water line
            totals[rank] += 1
            leftover -= 1
    return totals


@dataclass(frozen=True)
class ShardProgress:
    """One shard's observed progress at a re-planning point.

    ``consumed`` is how many guesses the shard has generated so far;
    ``live`` turns False once the shard's strategy ran dry (or crashed),
    which takes it out of every future budget split -- its remaining
    quota is what :meth:`ShardPlanner.replan` hands back to the live
    shards.
    """

    index: int
    consumed: int
    live: bool = True


@dataclass(frozen=True)
class ShardPlan:
    """One worker's slice of an attack.

    ``marks[j]`` is the shard's cumulative guess quota at global budget
    ``j``; ``local_budgets`` is the deduplicated positive mark sequence the
    shard actually runs its accounting over (two global budgets can map to
    the same local mark when budgets are small relative to the worker
    count, and a mark of zero means the shard contributes nothing yet).
    ``workers`` records the fleet width the plan was cut for, so the
    executor can tell position-deterministic strategies their substream
    via :meth:`~repro.strategies.base.GuessingStrategy.bind_shard`.
    """

    index: int
    marks: List[int]
    workers: int = 1

    @property
    def local_budgets(self) -> List[int]:
        """Deduplicated positive marks: the shard's own budget schedule."""
        return sorted({mark for mark in self.marks if mark > 0})

    def rng_label(self, prefix: str = "") -> str:
        """The shard's RNG stream label (``spawn_rng(seed, label)``)."""
        return f"{prefix}shard-{self.index}"

    def rng(self, seed: int, prefix: str = "") -> np.random.Generator:
        """The shard's own deterministic generator for attack ``seed``."""
        return spawn_rng(seed, self.rng_label(prefix))


class ShardPlanner:
    """Plans the even split of a budget schedule over ``workers`` shards."""

    def __init__(self, budgets: Sequence[int], workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.budgets = validate_budgets(budgets)
        self.workers = int(workers)

    def plan(self) -> List[ShardPlan]:
        """One :class:`ShardPlan` per worker; marks sum to each budget."""
        return [
            ShardPlan(
                index=i,
                marks=[split_budget(b, self.workers, i) for b in self.budgets],
                workers=self.workers,
            )
            for i in range(self.workers)
        ]

    def replan(
        self,
        progress: Sequence[ShardProgress],
        remaining_budgets: Optional[Sequence[int]] = None,
    ) -> List[ShardPlan]:
        """Checkpoint-aligned re-split of unconsumed budget over live shards.

        ``progress`` reports every shard exactly once (any order);
        ``remaining_budgets`` is the ascending tail of the global schedule
        still ahead (defaults to the full schedule).  Dead shards are
        frozen at their consumed totals; for each remaining budget the
        live shards' totals are raised to cover the rest via
        :func:`balanced_totals` (bounded water-filling with the same
        remainder-to-low-ranks rule as :func:`split_budget`), so the
        returned marks still sum exactly to each budget -- and, when
        every shard is live and sitting exactly on a previous budget's
        static marks, the new marks equal the static plan's.  Raises
        ``ValueError`` when no shard is live, when a budget no longer
        covers what was already consumed, or when the progress roster is
        incomplete -- a replan that cannot keep the marks-sum invariant
        must not silently produce a lopsided plan.
        """
        roster = sorted(progress, key=lambda p: p.index)
        if [p.index for p in roster] != list(range(self.workers)):
            raise ValueError(
                f"replan needs progress for each of {self.workers} shards exactly once"
            )
        if any(p.consumed < 0 for p in roster):
            raise ValueError("consumed guess counts must be non-negative")
        remaining = validate_budgets(
            list(remaining_budgets) if remaining_budgets is not None else self.budgets
        )
        consumed_total = sum(p.consumed for p in roster)
        if remaining[0] < consumed_total:
            raise ValueError(
                f"budget {remaining[0]} no longer covers the {consumed_total} "
                "guesses already consumed"
            )
        live = [p for p in roster if p.live]
        if not live:
            raise ValueError("no live shards left to absorb the remaining budget")
        dead_total = consumed_total - sum(p.consumed for p in live)
        per_budget = [
            balanced_totals([p.consumed for p in live], b - dead_total)
            for b in remaining
        ]
        ranks = {p.index: rank for rank, p in enumerate(live)}
        plans = []
        for p in roster:
            if p.live:
                marks = [totals[ranks[p.index]] for totals in per_budget]
            else:
                marks = [p.consumed] * len(remaining)
            plans.append(ShardPlan(index=p.index, marks=marks, workers=self.workers))
        return plans

"""Strength-audit serving tier: a micro-batched scoring daemon.

The paper's defensive story -- the flow doubling as a strength meter --
only matters operationally if scoring is cheap at request time.  This
package turns the one-shot CLI paths into a long-lived service:

* :mod:`repro.serve.protocol` -- the NDJSON request/response schema,
* :mod:`repro.serve.batcher` -- the micro-batching scheduler (bounded
  queue, flush on size or age, per-request deadlines),
* :mod:`repro.serve.service` -- warm model pool + request routing,
* :mod:`repro.serve.server` -- the socket transport and ``--once`` loop,
* :mod:`repro.serve.client` -- a minimal line client for tests/scripts,
* :mod:`repro.serve.clock` -- the virtual-time seam the timing tests use,
* :mod:`repro.serve.stats` -- the ``stats`` endpoint's counters.

See ``docs/serve.md`` for the protocol and the determinism contract
(batched answers are bitwise identical to serial scoring).
"""

from repro.serve.batcher import (
    BatcherClosed,
    DeadlineExceeded,
    MicroBatcher,
    QueueFull,
    ServeError,
    Ticket,
)
from repro.serve.clock import FakeClock, SystemClock
from repro.serve.client import ServeClient
from repro.serve.protocol import (
    ProtocolError,
    Request,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.server import ScoringServer, run_once
from repro.serve.service import (
    BankLookupService,
    ServeApp,
    ServeConfigError,
    StrengthService,
)
from repro.serve.stats import ServeStats, batch_bucket

__all__ = [
    "BankLookupService",
    "BatcherClosed",
    "DeadlineExceeded",
    "FakeClock",
    "MicroBatcher",
    "ProtocolError",
    "QueueFull",
    "Request",
    "ScoringServer",
    "ServeApp",
    "ServeClient",
    "ServeConfigError",
    "ServeError",
    "ServeStats",
    "StrengthService",
    "SystemClock",
    "Ticket",
    "batch_bucket",
    "encode_response",
    "error_response",
    "ok_response",
    "parse_request",
    "run_once",
]

"""The micro-batching request scheduler.

Concurrent scoring requests accumulate in a bounded queue and flush as
*one* vectorized evaluation -- the serving-tier analogue of what the
kernel layer does for per-op overhead: the flow's per-batch fixed costs
(bijector dispatch, scratch setup) are paid once per flush instead of
once per request.

Scheduling contract:

* a flush fires when the queue holds ``max_batch`` passwords **or** the
  oldest request has waited ``max_wait_ms``, whichever comes first;
* requests are never split across flushes (a request larger than
  ``max_batch`` forms its own oversized batch, preserving one-reply-per-
  request);
* a request whose ``deadline_ms`` expires while still queued is rejected
  with :class:`DeadlineExceeded` -- scored-late answers are worse than
  fast failures for a strength meter UI;
* ``submit`` on a full queue fails immediately with :class:`QueueFull`
  (bounded memory, backpressure to the socket layer);
* :meth:`MicroBatcher.close` with ``drain=True`` flushes everything
  still queued before returning -- graceful shutdown loses no accepted
  request.

Determinism: the flush function receives the concatenated passwords of
the collected requests.  Because :meth:`StrengthEstimator.score_batch`
is bitwise identical to the scalar loop regardless of batch shape, the
answers a caller sees do not depend on which other requests happened to
share its flush -- asserted by the soak test in
``tests/serve/test_server.py``.

All waiting runs through the :mod:`repro.serve.clock` seam, so the
timing behavior is testable under virtual time (no real sleeps).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Sequence

from repro.serve.clock import SystemClock
from repro.serve.stats import ServeStats


class ServeError(RuntimeError):
    """Base class for request-level serving failures (one-line messages)."""


class DeadlineExceeded(ServeError):
    """The request's ``deadline_ms`` expired before it was scored."""


class QueueFull(ServeError):
    """The batcher's bounded queue is at capacity; retry later."""


class BatcherClosed(ServeError):
    """The batcher is shutting down and accepts no new requests."""


class Ticket:
    """A caller's handle on one submitted request (a minimal future)."""

    __slots__ = ("_event", "_result", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    def set_result(self, result: Any) -> None:
        self._result = result
        self._event.set()

    def set_error(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the result; re-raises the request's failure."""
        if not self._event.wait(timeout):
            raise TimeoutError("request still pending")
        if self._error is not None:
            raise self._error
        return self._result


class _Pending:
    __slots__ = ("passwords", "ticket", "enqueued_at", "deadline_at")

    def __init__(self, passwords, ticket, enqueued_at, deadline_at) -> None:
        self.passwords = passwords
        self.ticket = ticket
        self.enqueued_at = enqueued_at
        self.deadline_at = deadline_at


class MicroBatcher:
    """Accumulate requests, flush them through one vectorized call.

    Parameters
    ----------
    flush:
        ``flush(passwords) -> sequence`` scoring N passwords in one
        vectorized pass; result is scattered back per request by slice.
    max_batch:
        Flush as soon as this many passwords are queued.
    max_wait_ms:
        Flush when the oldest queued request has waited this long.
    max_queue:
        Bounded queue capacity in passwords; ``submit`` beyond it raises
        :class:`QueueFull`.
    clock / stats:
        Injected seams; default to real time and a private stats sink.
    """

    def __init__(
        self,
        flush: Callable[[List[str]], Sequence[Any]],
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        max_queue: int = 4096,
        clock=None,
        stats: Optional[ServeStats] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue < max_batch:
            raise ValueError("max_queue must be >= max_batch")
        self._flush = flush
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.max_queue = int(max_queue)
        self.clock = clock if clock is not None else SystemClock()
        self.stats = stats if stats is not None else ServeStats()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: List[_Pending] = []
        self._queued_passwords = 0
        self._closing = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # submission side
    # ------------------------------------------------------------------
    def submit(
        self, passwords: Sequence[str], deadline_ms: Optional[float] = None
    ) -> Ticket:
        """Queue one request; returns its :class:`Ticket` immediately."""
        passwords = list(passwords)
        if not passwords:
            raise ValueError("submit needs at least one password")
        ticket = Ticket()
        now = self.clock.monotonic()
        deadline_at = None if deadline_ms is None else now + deadline_ms / 1000.0
        with self._cond:
            if self._closing:
                raise BatcherClosed("the scoring daemon is shutting down")
            if self._queued_passwords + len(passwords) > self.max_queue:
                self.stats.record_rejection("overload")
                raise QueueFull(
                    f"scoring queue is full ({self.max_queue} passwords); retry"
                )
            self._pending.append(_Pending(passwords, ticket, now, deadline_at))
            self._queued_passwords += len(passwords)
            self._cond.notify_all()
        return ticket

    @property
    def queue_depth(self) -> int:
        """Passwords currently queued (the ``stats`` endpoint's view)."""
        with self._lock:
            return self._queued_passwords

    # ------------------------------------------------------------------
    # scheduling decisions (pure, lock held)
    # ------------------------------------------------------------------
    def _expire_locked(self, now: float) -> List[_Pending]:
        """Pop requests whose deadline has passed (to be rejected)."""
        expired = [
            p for p in self._pending
            if p.deadline_at is not None and now >= p.deadline_at
        ]
        if expired:
            self._pending = [p for p in self._pending if p not in expired]
            self._queued_passwords -= sum(len(p.passwords) for p in expired)
        return expired

    def _flush_due_locked(self, now: float) -> bool:
        if not self._pending:
            return False
        if self._queued_passwords >= self.max_batch:
            return True
        return now - self._pending[0].enqueued_at >= self.max_wait

    def _next_wakeup_locked(self, now: float) -> Optional[float]:
        """Seconds until the next timer event (None = nothing queued)."""
        if not self._pending:
            return None
        due = self._pending[0].enqueued_at + self.max_wait
        deadlines = [p.deadline_at for p in self._pending if p.deadline_at is not None]
        if deadlines:
            due = min(due, min(deadlines))
        return max(0.0, due - now)

    def _collect_locked(self) -> List[_Pending]:
        """Pop the batch to flush: whole requests up to ``max_batch``."""
        batch: List[_Pending] = []
        total = 0
        while self._pending:
            request = self._pending[0]
            if batch and total + len(request.passwords) > self.max_batch:
                break
            batch.append(self._pending.pop(0))
            total += len(request.passwords)
        self._queued_passwords -= total
        return batch

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _reject(self, expired: List[_Pending]) -> None:
        for request in expired:
            self.stats.record_rejection("deadline")
            request.ticket.set_error(
                DeadlineExceeded("deadline expired before the request was scored")
            )

    def _execute(self, batch: List[_Pending]) -> None:
        if not batch:
            return
        passwords: List[str] = []
        for request in batch:
            passwords.extend(request.passwords)
        try:
            results = self._flush(passwords)
        except BaseException as exc:  # a poisoned batch fails its members,
            for request in batch:     # never the daemon
                request.ticket.set_error(ServeError(f"scoring failed: {exc}"))
            return
        done = self.clock.monotonic()
        offset = 0
        latencies = []
        for request in batch:
            request.ticket.set_result(
                results[offset : offset + len(request.passwords)]
            )
            offset += len(request.passwords)
            latencies.append(done - request.enqueued_at)
        self.stats.record_batch(len(batch), len(passwords), latencies)

    def pump(self, force: bool = False) -> int:
        """Run flush/expiry decisions once, now; returns requests completed.

        The non-threaded drive used by ``serve --once`` and the timing
        tests: with ``force=True`` everything queued is flushed regardless
        of the size/wait triggers.
        """
        now = self.clock.monotonic()
        with self._cond:
            expired = self._expire_locked(now)
            batch = (
                self._collect_locked()
                if force or self._flush_due_locked(now)
                else []
            )
        self._reject(expired)
        self._execute(batch)
        return len(expired) + len(batch)

    # ------------------------------------------------------------------
    # the daemon's worker loop
    # ------------------------------------------------------------------
    def start(self) -> "MicroBatcher":
        """Start the background flush thread (idempotent)."""
        with self._lock:
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="repro-serve-batcher", daemon=True
                )
                self._thread.start()
        return self

    def _run(self) -> None:
        while True:
            with self._cond:
                while True:
                    now = self.clock.monotonic()
                    expired = self._expire_locked(now)
                    if expired or self._flush_due_locked(now) or self._closing:
                        break
                    self.clock.wait(self._cond, self._next_wakeup_locked(now))
                if self._closing and not self._pending and not expired:
                    return
                batch = (
                    self._collect_locked()
                    if self._closing or self._flush_due_locked(now)
                    else []
                )
            self._reject(expired)
            self._execute(batch)

    def close(self, drain: bool = True, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting requests; with ``drain`` flush what is queued.

        Without a worker thread (pump mode) draining happens inline, so
        ``close`` is safe in every mode.  With ``drain=False`` queued
        requests fail with :class:`BatcherClosed`.
        """
        with self._cond:
            self._closing = True
            abandoned = [] if drain else self._pending[:]
            if not drain:
                self._pending = []
                self._queued_passwords = 0
            self._cond.notify_all()
            thread = self._thread
        for request in abandoned:
            request.ticket.set_error(BatcherClosed("daemon shut down"))
        if thread is not None:
            thread.join(timeout)
        elif drain:
            self.pump(force=True)

"""The time seam the micro-batcher schedules against.

Flush-on-``max_wait_ms`` and per-request deadlines are pure functions of
"what time is it" and "wait until"; routing both through a tiny
:class:`Clock` interface lets the timing tests run the *real* batcher
loop under a :class:`FakeClock` -- virtual time advances instead of the
test sleeping, so a full flush-timeout/deadline-expiry suite finishes in
milliseconds and never flakes on a loaded machine.

Two implementations:

* :class:`SystemClock` -- ``time.monotonic`` and a plain
  ``Condition.wait``; what the daemon runs on.
* :class:`FakeClock` -- a manually advanced virtual monotonic time whose
  ``wait`` *jumps* time forward by the timeout instead of sleeping (an
  untimed wait still blocks on the condition, so idle loops park rather
  than spin).
"""

from __future__ import annotations

import threading
import time
from typing import Optional


class SystemClock:
    """Real time: the production clock."""

    def monotonic(self) -> float:
        return time.monotonic()

    def wait(self, condition: threading.Condition, timeout: Optional[float]) -> bool:
        """Wait on ``condition`` (held); returns False on timeout."""
        return condition.wait(timeout)


class FakeClock:
    """Deterministic virtual time for batcher tests.

    ``wait(cond, timeout)`` advances :meth:`monotonic` by ``timeout`` and
    returns immediately (as a timeout), so a batcher thread blocked until
    its ``max_wait_ms`` flush point experiences the wait instantly.
    ``advance`` moves time from the test side.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        with self._lock:
            self._now += seconds

    def wait(self, condition: threading.Condition, timeout: Optional[float]) -> bool:
        if timeout is None:
            return condition.wait(None)
        with self._lock:
            self._now += timeout
        return False

"""Serving-tier observability: batch shapes and request latency.

The daemon's ``stats`` endpoint answers "is micro-batching actually
happening, and what is it costing callers?" with three views:

* request/batch counters (plus rejections by kind),
* a batch-size histogram in power-of-two buckets -- a healthy loaded
  daemon shows mass in the wide buckets, an idle one all ``1``s,
* request latency percentiles (p50/p99/max) over a sliding window of the
  most recent completions, measured enqueue -> result.

Thread-safe; recording is O(1) and snapshots copy, so a ``stats`` request
never blocks the scoring path.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict

import numpy as np

#: Latency samples kept for the percentile window.
WINDOW = 4096


def batch_bucket(size: int) -> str:
    """Histogram bucket label for a flushed batch of ``size`` requests.

    1 and 2 get their own buckets; larger sizes fall into power-of-two
    ranges (``3-4``, ``5-8``, ``9-16``, ...).
    """
    if size <= 2:
        return str(size)
    high = 1 << (size - 1).bit_length()
    return f"{high // 2 + 1}-{high}"


class ServeStats:
    """Mutable counters behind the daemon's ``stats`` endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests = 0
        self._batched_requests = 0
        self._passwords = 0
        self._batches = 0
        self._rejected: Dict[str, int] = {}
        self._histogram: Dict[str, int] = {}
        self._latencies = deque(maxlen=WINDOW)

    # ------------------------------------------------------------------
    def record_batch(self, requests: int, passwords: int, latencies_s) -> None:
        """One flushed batch: ``requests`` requests totalling ``passwords``
        passwords, each with its enqueue->completion latency (seconds)."""
        with self._lock:
            self._batches += 1
            self._requests += requests
            self._batched_requests += requests
            self._passwords += passwords
            bucket = batch_bucket(requests)
            self._histogram[bucket] = self._histogram.get(bucket, 0) + 1
            for latency in latencies_s:
                self._latencies.append(float(latency) * 1000.0)

    def record_request(self, latency_s: float) -> None:
        """One unbatched request (stats/ping/lookup/guess_number)."""
        with self._lock:
            self._requests += 1
            self._latencies.append(float(latency_s) * 1000.0)

    def record_rejection(self, kind: str) -> None:
        """A request turned away (``deadline`` / ``overload`` / ``protocol``)."""
        with self._lock:
            self._rejected[kind] = self._rejected.get(kind, 0) + 1

    # ------------------------------------------------------------------
    def snapshot(self, queue_depth: int = 0) -> Dict[str, Any]:
        """The ``stats`` response payload (pure data, JSON-ready)."""
        with self._lock:
            latencies = np.array(self._latencies, dtype=np.float64)
            histogram = dict(sorted(self._histogram.items(), key=_bucket_sort_key))
            rejected = dict(sorted(self._rejected.items()))
            requests, passwords, batches = (
                self._requests, self._passwords, self._batches,
            )
            batched_requests = self._batched_requests
        latency: Dict[str, float] = {}
        if latencies.size:
            latency = {
                "p50_ms": round(float(np.percentile(latencies, 50)), 3),
                "p99_ms": round(float(np.percentile(latencies, 99)), 3),
                "max_ms": round(float(latencies.max()), 3),
            }
        return {
            "queue_depth": int(queue_depth),
            "requests": requests,
            "passwords": passwords,
            "batches": batches,
            "mean_batch_size": round(batched_requests / batches, 2) if batches else 0.0,
            "batch_size_histogram": histogram,
            "rejected": rejected,
            "latency": latency,
        }


def _bucket_sort_key(item):
    label = item[0]
    return int(label.partition("-")[0])

"""A minimal NDJSON line client for the scoring daemon.

Used by the test suite's soak clients and the CI smoke check; small
enough to copy into any tool that wants to talk to the daemon.  One
socket, blocking request/response; for pipelining, use :meth:`send`
and :meth:`recv` directly.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional


class ServeClient:
    """Blocking request/response client over a Unix or TCP socket."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        port: Optional[int] = None,
        host: str = "127.0.0.1",
        timeout: Optional[float] = 30.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(socket_path))
        else:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")

    # ------------------------------------------------------------------
    def send(self, request: Dict[str, Any]) -> None:
        """Write one request line (no waiting); enables pipelining."""
        line = json.dumps(request, sort_keys=True, separators=(",", ":"))
        self._sock.sendall((line + "\n").encode("utf-8"))

    def recv(self) -> Dict[str, Any]:
        """Read one response line."""
        line = self._reader.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    def request(self, **fields: Any) -> Dict[str, Any]:
        """One round trip: ``client.request(op="score", password="x")``."""
        self.send(fields)
        return self.recv()

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

"""Serving-tier services: warm models behind the micro-batcher.

The daemon's config surface is the registry spec grammar
(``family[:variant][?key=value&...]``), one spec per service:

``strength?model=<checkpoint.npz>&corpus=<passwords.txt>``
    A strength-scoring service: the PassFlow checkpoint is loaded
    **once** at startup, calibrated against the corpus, and pinned to
    the service's batcher worker thread -- the warm model pool.  Extra
    parameters: ``sample`` (calibration corpus cap, default 5000),
    ``batch`` (rows per flow evaluation inside a flush, default
    ``max_batch``), ``name`` (routing key when several models are
    served; requests pick one with their ``model`` field).

``bank:<path.bank>``
    A targeted-guessing lookup service over a memory-mapped guess bank:
    "was this password within the top-N ranked guesses, and at what
    rank?" answered by binary search over the bank's packed-uint64 rank
    index (built eagerly at startup, so first-request latency is flat).
    Extra parameter: ``name`` (requests route with their ``bank`` field).

:class:`ServeApp` owns the services, routes validated
:class:`~repro.serve.protocol.Request` objects to them, and renders
protocol responses; the transport (socket loop or ``--once`` stdin
mode) only moves lines.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

import numpy as np

from repro.bank import BankError, GuessBank
from repro.core.model import PassFlow
from repro.core.strength import (
    BAND_LABELS,
    UNSCORABLE_LABEL,
    UNSCORABLE_SCORE,
    StrengthEstimator,
)
from repro.data.rockyou import load_password_file
from repro.serve import protocol
from repro.serve.batcher import MicroBatcher, ServeError
from repro.serve.clock import SystemClock
from repro.serve.protocol import ProtocolError, Request
from repro.serve.stats import ServeStats
from repro.strategies import SpecError, parse_spec
from repro.utils.rng import spawn_rng


class ServeConfigError(ValueError):
    """Unusable ``--spec`` configuration (one-line message)."""


def _float_or_none(value: float) -> Optional[float]:
    """JSON-safe float: ``nan`` (the unencodable sentinel) becomes None."""
    value = float(value)
    return None if np.isnan(value) else value


class StrengthService:
    """One warm strength model and its micro-batcher."""

    def __init__(
        self,
        name: str,
        estimator: StrengthEstimator,
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        max_queue: int = 4096,
        score_batch_size: Optional[int] = None,
        clock=None,
        stats: Optional[ServeStats] = None,
    ) -> None:
        self.name = name
        self.estimator = estimator
        self.score_batch_size = score_batch_size
        self.stats = stats if stats is not None else ServeStats()
        self.clock = clock if clock is not None else SystemClock()
        # serializes direct (non-batched) model access: guess_number runs
        # the Monte-Carlo estimate outside the batcher worker thread
        self._model_lock = threading.Lock()
        self.batcher = MicroBatcher(
            self._flush,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
            clock=self.clock,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec, name: str, **batcher_kwargs) -> "StrengthService":
        """Build from a parsed ``strength?...`` spec (loads the model)."""
        params = dict(spec.params)
        params.pop("name", None)
        model_path = params.pop("model", None)
        corpus_path = params.pop("corpus", None)
        sample = params.pop("sample", 5000)
        batch = params.pop("batch", None)
        if params:
            unknown = ", ".join(sorted(str(k) for k in params))
            raise ServeConfigError(
                f"unknown parameter(s) {unknown} for serve spec 'strength'"
            )
        if not model_path:
            raise ServeConfigError(
                "strength spec needs model=<checkpoint.npz> "
                "(e.g. strength?model=model.npz&corpus=ref.txt)"
            )
        if not corpus_path:
            raise ServeConfigError(
                "strength spec needs corpus=<passwords.txt> for percentile "
                "calibration"
            )
        try:
            model = PassFlow.load(str(model_path))
        except (OSError, ValueError, KeyError) as exc:
            raise ServeConfigError(f"cannot load model {model_path}: {exc}") from exc
        try:
            reference = load_password_file(
                str(corpus_path),
                alphabet=model.alphabet,
                max_length=model.encoder.max_length,
            )
        except OSError as exc:
            raise ServeConfigError(f"cannot read corpus {corpus_path}: {exc}") from exc
        estimator = StrengthEstimator(model)
        try:
            estimator.calibrate(reference[: int(sample)])
        except ValueError as exc:
            raise ServeConfigError(f"calibration failed: {exc}") from exc
        if batch is not None:
            batcher_kwargs = dict(batcher_kwargs, score_batch_size=int(batch))
        return cls(name, estimator, **batcher_kwargs)

    # ------------------------------------------------------------------
    def _flush(self, passwords: List[str]) -> List[Dict[str, Any]]:
        """The batcher's vectorized evaluation: one result dict per password."""
        log_probs, percentiles, scores = self.estimator.evaluate_batch(
            passwords, batch_size=self.score_batch_size
        )
        return [
            {
                "score": int(score),
                "band": UNSCORABLE_LABEL
                if score == UNSCORABLE_SCORE
                else BAND_LABELS[int(score)],
                "log_prob": _float_or_none(log_prob),
                "percentile": _float_or_none(percentile),
            }
            for score, log_prob, percentile in zip(scores, log_probs, percentiles)
        ]

    def guess_number(self, password: str, sample_size: int, seed: Optional[int]) -> float:
        """Monte-Carlo guess-number estimate (serialized model access).

        ``seed`` pins the estimate: the daemon defaults to 0 so identical
        requests get identical answers regardless of request order.
        """
        rng = spawn_rng(seed if seed is not None else 0, "serve-guess-number")
        with self._model_lock:
            return self.estimator.guess_rank(
                password, sample_size=sample_size, rng=rng
            )

    def start(self) -> None:
        self.batcher.start()

    def close(self, drain: bool = True) -> None:
        self.batcher.close(drain=drain)


class BankLookupService:
    """Rank lookups against one memory-mapped guess bank."""

    def __init__(self, name: str, bank: GuessBank) -> None:
        self.name = name
        self.bank = bank
        # warm the rank index now: lookups are then lock-free reads
        bank._ensure_rank_index()

    @classmethod
    def from_spec(cls, spec, name: str) -> "BankLookupService":
        params = dict(spec.params)
        params.pop("name", None)
        if params:
            unknown = ", ".join(sorted(str(k) for k in params))
            raise ServeConfigError(
                f"unknown parameter(s) {unknown} for serve spec 'bank'"
            )
        if not spec.variant:
            raise ServeConfigError("bank spec needs a path: bank:<artifact dir>")
        try:
            bank = GuessBank.open(spec.variant)
        except BankError as exc:
            raise ServeConfigError(str(exc)) from exc
        return cls(name, bank)

    def lookup(self, passwords: List[str], top: Optional[int]) -> List[Dict[str, Any]]:
        results = []
        for password in passwords:
            rank = self.bank.rank_of(password)
            entry: Dict[str, Any] = {"rank": rank, "found": rank is not None}
            if top is not None:
                entry["within_top"] = rank is not None and rank <= top
            results.append(entry)
        return results


class ServeApp:
    """Routing core of the daemon: specs -> services, request -> response.

    Transport-free: :meth:`handle_line` maps one protocol line to one
    response line, whether the line arrived over a socket, from stdin
    (``serve --once``), or straight from a test.
    """

    def __init__(
        self,
        specs: List[str],
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        max_queue: int = 4096,
        default_deadline_ms: Optional[float] = None,
        clock=None,
        threaded: bool = True,
    ) -> None:
        self.clock = clock if clock is not None else SystemClock()
        self.stats = ServeStats()
        self.threaded = threaded
        self.default_deadline_ms = default_deadline_ms
        self.strength: Dict[str, StrengthService] = {}
        self.banks: Dict[str, BankLookupService] = {}
        self._shutdown = threading.Event()
        if not specs:
            raise ServeConfigError("serve needs at least one --spec")
        for raw in specs:
            try:
                spec = parse_spec(raw)
            except SpecError as exc:
                raise ServeConfigError(str(exc)) from exc
            name = str(dict(spec.params).get("name", "default"))
            if spec.family == "strength":
                if name in self.strength:
                    raise ServeConfigError(
                        f"duplicate strength service name {name!r} "
                        "(disambiguate with &name=...)"
                    )
                self.strength[name] = StrengthService.from_spec(
                    spec,
                    name,
                    max_batch=max_batch,
                    max_wait_ms=max_wait_ms,
                    max_queue=max_queue,
                    clock=self.clock,
                    stats=self.stats,
                )
            elif spec.family == "bank":
                if name in self.banks:
                    raise ServeConfigError(
                        f"duplicate bank service name {name!r} "
                        "(disambiguate with ?name=...)"
                    )
                self.banks[name] = BankLookupService.from_spec(spec, name)
            else:
                raise ServeConfigError(
                    f"serve spec family must be strength or bank, "
                    f"got {spec.family!r}"
                )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServeApp":
        if self.threaded:
            for service in self.strength.values():
                service.start()
        return self

    def close(self, drain: bool = True) -> None:
        for service in self.strength.values():
            service.close(drain=drain)

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown.is_set()

    def request_shutdown(self) -> None:
        """Ask the daemon to stop (what SIGTERM and ``shutdown`` both do)."""
        self._shutdown.set()

    def wait_for_shutdown(self, timeout: Optional[float] = None) -> bool:
        return self._shutdown.wait(timeout)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _pick(self, registry: Dict[str, Any], requested: Optional[str], kind: str):
        if not registry:
            raise ProtocolError(f"no {kind} service is configured on this daemon")
        if requested is None:
            if len(registry) == 1:
                return next(iter(registry.values()))
            if "default" in registry:
                return registry["default"]
            known = ", ".join(sorted(registry))
            raise ProtocolError(
                f"several {kind} services are configured ({known}); "
                f"pick one with the {kind!r} request field"
            )
        service = registry.get(requested)
        if service is None:
            known = ", ".join(sorted(registry))
            raise ProtocolError(f"unknown {kind} {requested!r} (known: {known})")
        return service

    def handle_request(self, request: Request) -> Dict[str, Any]:
        """Serve one validated request; always returns a response object."""
        started = self.clock.monotonic()
        if request.op in protocol.SCORING_OPS:
            try:
                ticket = self.submit_scoring(request)
            except ServeError as exc:
                return protocol.error_response(str(exc), request.id)
            return self.finish_scoring(request, ticket)
        if request.op == "guess_number":
            service = self._pick(self.strength, request.model, "model")
            results = [
                {
                    "guess_number": service.guess_number(
                        password, request.sample_size, request.seed
                    )
                }
                if service.estimator.model.encoder.can_encode(password)
                else {"guess_number": None}
                for password in request.passwords
            ]
            self.stats.record_request(self.clock.monotonic() - started)
            return self._shaped(request, results)
        if request.op == "lookup":
            service = self._pick(self.banks, request.bank, "bank")
            results = service.lookup(request.passwords, request.top)
            self.stats.record_request(self.clock.monotonic() - started)
            return self._shaped(request, results)
        if request.op == "stats":
            self.stats.record_request(self.clock.monotonic() - started)
            return protocol.ok_response("stats", request.id, **self.stats_payload())
        if request.op == "ping":
            self.stats.record_request(self.clock.monotonic() - started)
            return protocol.ok_response("ping", request.id)
        if request.op == "shutdown":
            self._shutdown.set()
            return protocol.ok_response("shutdown", request.id)
        raise ProtocolError(f"unhandled op {request.op!r}")  # unreachable

    def submit_scoring(self, request: Request):
        """Queue a scoring request; returns its batcher ticket.

        Raises :class:`ProtocolError` for routing mistakes and
        :class:`~repro.serve.batcher.ServeError` for backpressure
        (:class:`QueueFull`) -- both render as one-line error responses.
        """
        service = self._pick(self.strength, request.model, "model")
        deadline = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.default_deadline_ms
        )
        ticket = service.batcher.submit(request.passwords, deadline_ms=deadline)
        if not self.threaded:
            service.batcher.pump(force=True)
        return ticket

    def finish_scoring(self, request: Request, ticket) -> Dict[str, Any]:
        """Wait on a scoring ticket; returns the response object."""
        try:
            results = ticket.result(timeout=None if self.threaded else 0.0)
        except ServeError as exc:
            return protocol.error_response(str(exc), request.id)
        if request.op == "band":
            results = [{"band": entry["band"]} for entry in results]
        return self._shaped(request, results)

    def _shaped(self, request: Request, results: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Scalar reply shape for ``password``, list shape for ``passwords``."""
        if request.single:
            return protocol.ok_response(request.op, request.id, **results[0])
        merged: Dict[str, List[Any]] = {}
        for key in results[0]:
            merged[key + "s"] = [entry[key] for entry in results]
        return protocol.ok_response(
            request.op, request.id, count=len(results), **merged
        )

    def submit_line(self, line: str):
        """One request line in, work started; the pipelining entry point.

        Scoring requests return ``(request, ticket)`` so the transport's
        reader can keep reading while the micro-batcher works (that is
        what lets one connection's pipelined requests share a flush);
        everything else -- including every error -- comes back as the
        finished response line.  Never raises :class:`ProtocolError` or
        :class:`ServeError`; they become one-line error responses.
        """
        try:
            request = protocol.parse_request(line)
        except ProtocolError as exc:
            self.stats.record_rejection("protocol")
            return protocol.encode_response(protocol.error_response(str(exc)))
        if request.op in protocol.SCORING_OPS:
            try:
                return request, self.submit_scoring(request)
            except ProtocolError as exc:
                self.stats.record_rejection("protocol")
                response = protocol.error_response(str(exc), request.id)
            except ServeError as exc:
                response = protocol.error_response(str(exc), request.id)
            return protocol.encode_response(response)
        try:
            response = self.handle_request(request)
        except ProtocolError as exc:
            self.stats.record_rejection("protocol")
            response = protocol.error_response(str(exc), request.id)
        except Exception as exc:  # the daemon's last line of defense
            response = protocol.error_response(f"internal error: {exc}", request.id)
        return protocol.encode_response(response)

    def handle_line(self, line: str) -> str:
        """One protocol line in -> one response line out; never raises."""
        try:
            result = self.submit_line(line)
            if isinstance(result, str):
                return result
            request, ticket = result
            return protocol.encode_response(self.finish_scoring(request, ticket))
        except Exception as exc:  # pragma: no cover - defensive
            return protocol.encode_response(
                protocol.error_response(f"internal error: {exc}")
            )

    # ------------------------------------------------------------------
    def stats_payload(self) -> Dict[str, Any]:
        depth = sum(s.batcher.queue_depth for s in self.strength.values())
        payload = self.stats.snapshot(queue_depth=depth)
        payload["services"] = {
            "strength": sorted(self.strength),
            "bank": sorted(self.banks),
        }
        return payload

"""The serving tier's wire protocol: newline-delimited JSON.

One request object per line in, one response object per line out, in
request order.  The grammar is deliberately tiny and typo-proof -- the
same philosophy as the strategy spec registry: unknown operations and
malformed fields come back as **one-line error responses**, never as a
dropped connection or a server-side traceback.

Requests::

    {"op": "score",        "password": "love12"}          # or "passwords": [...]
    {"op": "band",         "password": "love12"}
    {"op": "guess_number", "password": "love12", "sample_size": 4096, "seed": 0}
    {"op": "lookup",       "password": "love12", "top": 100000}
    {"op": "stats"}
    {"op": "ping"}
    {"op": "shutdown"}

Optional fields on any scoring/lookup request: ``id`` (echoed verbatim in
the response), ``model`` / ``bank`` (route to a named service when the
daemon serves several), ``deadline_ms`` (per-request latency budget --
requests still queued when it expires are rejected, not scored late).

Responses always carry ``"ok"``: ``{"ok": true, "op": ..., "id": ...,
...payload}`` or ``{"ok": false, "error": "<one line>", "id": ...}``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

#: Operations the daemon understands.
OPS = ("score", "band", "guess_number", "lookup", "stats", "ping", "shutdown")

#: Operations answered by a strength service's micro-batcher.
SCORING_OPS = ("score", "band")

#: Hard cap on passwords in one request: a single caller cannot wedge the
#: shared queue (and a multi-megabyte line is rejected before parsing).
MAX_PASSWORDS_PER_REQUEST = 1024

#: Longest request line accepted, bytes (fits MAX_PASSWORDS_PER_REQUEST
#: max-length passwords with generous JSON overhead).
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """Malformed request; the message is the one-line client-facing error."""


class Request:
    """A validated request: ``op`` plus op-specific fields."""

    __slots__ = ("op", "id", "passwords", "single", "model", "bank",
                 "deadline_ms", "sample_size", "seed", "top")

    def __init__(
        self,
        op: str,
        *,
        id: Any = None,
        passwords: Optional[List[str]] = None,
        single: bool = False,
        model: Optional[str] = None,
        bank: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        sample_size: int = 4096,
        seed: Optional[int] = None,
        top: Optional[int] = None,
    ) -> None:
        self.op = op
        self.id = id
        self.passwords = passwords or []
        self.single = single  # request used "password" (scalar reply shape)
        self.model = model
        self.bank = bank
        self.deadline_ms = deadline_ms
        self.sample_size = sample_size
        self.seed = seed
        self.top = top


def _require_str_list(value: Any, field: str) -> List[str]:
    if not isinstance(value, list) or not all(isinstance(p, str) for p in value):
        raise ProtocolError(f"{field!r} must be a list of strings")
    if not value:
        raise ProtocolError(f"{field!r} must not be empty")
    if len(value) > MAX_PASSWORDS_PER_REQUEST:
        raise ProtocolError(
            f"at most {MAX_PASSWORDS_PER_REQUEST} passwords per request "
            f"(got {len(value)})"
        )
    return list(value)


def _optional_number(payload: Dict[str, Any], field: str, minimum: float = 0.0):
    value = payload.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{field!r} must be a number")
    if value < minimum:
        raise ProtocolError(f"{field!r} must be >= {minimum}")
    return value


def parse_request(line: str) -> Request:
    """Parse and validate one request line; :class:`ProtocolError` on misuse."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request line longer than {MAX_LINE_BYTES} bytes")
    if not line.strip():
        raise ProtocolError("empty request line")
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    op = payload.get("op")
    if not isinstance(op, str) or op not in OPS:
        known = "|".join(OPS)
        raise ProtocolError(f"unknown op {op!r} (known: {known})")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError("'id' must be a string or integer")
    for field in ("model", "bank"):
        value = payload.get(field)
        if value is not None and not isinstance(value, str):
            raise ProtocolError(f"{field!r} must be a string")
    deadline_ms = _optional_number(payload, "deadline_ms")
    known_fields = {"op", "id", "model", "bank", "deadline_ms"}

    passwords: Optional[List[str]] = None
    single = False
    if op in ("score", "band", "guess_number", "lookup"):
        has_single = "password" in payload
        has_many = "passwords" in payload
        if has_single == has_many:
            raise ProtocolError(
                f"op {op!r} needs exactly one of 'password' or 'passwords'"
            )
        if has_single:
            if not isinstance(payload["password"], str):
                raise ProtocolError("'password' must be a string")
            passwords, single = [payload["password"]], True
        else:
            passwords = _require_str_list(payload["passwords"], "passwords")
        known_fields |= {"password", "passwords"}

    sample_size = 4096
    seed = None
    if op == "guess_number":
        raw = _optional_number(payload, "sample_size", minimum=1)
        sample_size = 4096 if raw is None else int(raw)
        raw_seed = payload.get("seed")
        if raw_seed is not None:
            if isinstance(raw_seed, bool) or not isinstance(raw_seed, int):
                raise ProtocolError("'seed' must be an integer")
            seed = raw_seed
        known_fields |= {"sample_size", "seed"}

    top = None
    if op == "lookup":
        raw = _optional_number(payload, "top", minimum=1)
        top = None if raw is None else int(raw)
        known_fields |= {"top"}

    unknown = sorted(set(payload) - known_fields)
    if unknown:
        raise ProtocolError(
            f"unknown field(s) {', '.join(unknown)} for op {op!r}"
        )
    return Request(
        op,
        id=request_id,
        passwords=passwords,
        single=single,
        model=payload.get("model"),
        bank=payload.get("bank"),
        deadline_ms=deadline_ms,
        sample_size=sample_size,
        seed=seed,
        top=top,
    )


def ok_response(op: str, request_id: Any = None, **payload: Any) -> Dict[str, Any]:
    """A success response object (``encode_response`` renders the line)."""
    response: Dict[str, Any] = {"ok": True, "op": op}
    if request_id is not None:
        response["id"] = request_id
    response.update(payload)
    return response


def error_response(message: str, request_id: Any = None) -> Dict[str, Any]:
    """A one-line error response; newlines are flattened defensively."""
    response: Dict[str, Any] = {
        "ok": False,
        "error": " ".join(str(message).split()) or "error",
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def encode_response(response: Dict[str, Any]) -> str:
    """Render a response object as its single protocol line (no newline)."""
    return json.dumps(response, sort_keys=True, separators=(",", ":"))

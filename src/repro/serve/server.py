"""The daemon's transport: NDJSON over a local stream socket.

:class:`ScoringServer` listens on a Unix-domain socket (or a localhost
TCP port where ``AF_UNIX`` is unavailable) and runs two threads per
connection:

* a **reader** that parses request lines and hands them to the
  :class:`~repro.serve.service.ServeApp` -- scoring requests return a
  batcher ticket immediately, so a pipelining client's requests from one
  connection micro-batch with everyone else's;
* a **writer** that emits responses strictly in request order as their
  tickets resolve, preserving the protocol's one-line-in/one-line-out
  contract under pipelining.

Graceful shutdown (a ``shutdown`` request, :meth:`ScoringServer.stop`,
or SIGTERM via the CLI): the listener closes, open connections get their
read sides shut so readers see EOF, writers finish draining every
accepted response, and the batchers flush what is queued -- no accepted
request is dropped.

``run_once`` is the socket-free twin: it drives the same ``ServeApp``
line loop over file objects (stdin/stdout in ``serve --once``), so every
protocol/batcher/service code path is testable without a real socket.
"""

from __future__ import annotations

import queue
import socket
import threading
from pathlib import Path
from typing import Any, List, Optional, TextIO

from repro.serve import protocol
from repro.serve.service import ServeApp
from repro.utils.logging import get_logger

logger = get_logger("serve.server")

#: Sentinel the reader enqueues so the writer drains and exits.
_WRITER_DONE = object()


class ScoringServer:
    """Serve a :class:`ServeApp` over a local stream socket."""

    def __init__(
        self,
        app: ServeApp,
        socket_path: Optional[str] = None,
        port: Optional[int] = None,
        host: str = "127.0.0.1",
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        self.app = app
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: List[socket.socket] = []
        self._conn_threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    def start(self) -> "ScoringServer":
        """Bind, listen, and start accepting (returns immediately)."""
        if self.socket_path is not None:
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            path = Path(self.socket_path)
            if path.exists():
                path.unlink()  # stale socket from a dead daemon
            listener.bind(str(path))
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            self.port = listener.getsockname()[1]  # resolve port 0
        listener.listen(64)
        self._listener = listener
        self.app.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> str:
        """Human-readable bound address (for the startup banner)."""
        if self.socket_path is not None:
            return str(self.socket_path)
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                connection, _ = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                if self._stopping.is_set():
                    connection.close()
                    break
                self._connections.append(connection)
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(connection,),
                    name="repro-serve-conn",
                    daemon=True,
                )
                self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        """Reader side of one connection; spawns its in-order writer."""
        responses: "queue.Queue[Any]" = queue.Queue()
        writer = threading.Thread(
            target=self._write_loop,
            args=(connection, responses),
            name="repro-serve-writer",
            daemon=True,
        )
        writer.start()
        try:
            reader = connection.makefile("r", encoding="utf-8", errors="replace")
            for line in reader:
                responses.put(self._dispatch(line))
                if self.app.shutdown_requested:
                    break
        except (OSError, ValueError):
            pass  # connection reset; writer still drains what was accepted
        finally:
            responses.put(_WRITER_DONE)
            writer.join()
            connection.close()
            with self._lock:
                if connection in self._connections:
                    self._connections.remove(connection)
        if self.app.shutdown_requested:
            self.stop()

    def _dispatch(self, line: str):
        """Parse/serve one line; returns what the writer should emit.

        Scoring requests come back as ``(request, ticket)`` so the reader
        can keep reading (that is what lets one connection's pipelined
        requests batch together); everything else is an immediate
        response string.
        """
        result = self.app.submit_line(line)
        if isinstance(result, tuple):
            return PendingResponse(self.app, *result)
        return result

    def _write_loop(self, connection: socket.socket, responses: "queue.Queue[Any]") -> None:
        while True:
            item = responses.get()
            if item is _WRITER_DONE:
                return
            line = item.resolve() if isinstance(item, PendingResponse) else item
            try:
                connection.sendall((line + "\n").encode("utf-8"))
            except OSError:
                # client went away: keep consuming so the reader never
                # blocks on a full queue, but stop writing
                pass

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Graceful shutdown: drain in-flight work, close every socket."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RD)  # readers see EOF
            except OSError:
                pass
        with self._lock:
            threads = list(self._conn_threads)
        for thread in threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        self.app.close(drain=True)
        if self.socket_path is not None:
            try:
                Path(self.socket_path).unlink()
            except OSError:
                pass

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a shutdown request stops the server."""
        stopped = self.app.wait_for_shutdown(timeout)
        if stopped:
            self.stop()
        return stopped


class PendingResponse:
    """A scoring response whose ticket is still in the micro-batcher."""

    __slots__ = ("request", "ticket", "app")

    def __init__(self, app: ServeApp, request, ticket) -> None:
        self.app = app
        self.request = request
        self.ticket = ticket

    def resolve(self) -> str:
        try:
            return protocol.encode_response(
                self.app.finish_scoring(self.request, self.ticket)
            )
        except Exception as exc:  # pragma: no cover - defensive
            return protocol.encode_response(
                protocol.error_response(f"internal error: {exc}", self.request.id)
            )


def run_once(app: ServeApp, lines, out: TextIO) -> int:
    """The ``serve --once`` loop: NDJSON in, NDJSON out, no socket.

    Serves each line through the same app/batcher path as the daemon
    (requests are submitted, then force-flushed), writes one response
    line per request, and returns 0 -- the in-process smoke mode that
    keeps every serving code path drivable from a pipe or a test.
    """
    for line in lines:
        if not line.strip():
            continue
        out.write(app.handle_line(line) + "\n")
        out.flush()
        if app.shutdown_requested:
            break
    app.close(drain=True)
    return 0

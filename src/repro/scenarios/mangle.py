"""Mangling hybrids: the ``mangle(<spec>)`` wrapper family.

Wraps any registry spec and expands every inner guess through a chain of
:mod:`repro.data.mangling` rules --
``mangle(markov:3)?rules=leet,append_year&variants=2`` yields, for each
Markov guess, the guess itself plus its leet form plus two sampled
year-suffix variants.  This is the HashCat/JTR-style hybrid dimension the
paper's related work references, composed over live samplers and bank
replays alike.

Determinism contract: stochastic rule draws come from
``spawn_rng(seed, "mangle/<rule>/<word>")`` -- a pure function of the
(word, rule, spec seed) triple, independent of batch boundaries, chunk
order, schedule or executor.  The expansion therefore commutes with the
runtime: for a fixed inner stream the mangled stream is bit-identical
across executors and chunk sizes, and wrapper-of-bank equals
wrapper-of-live whenever the inner spec is replayable.

The expansion buffer and the inner iterator live on the strategy
*instance* (not the generator), so elastic chunking -- which re-enters
``iter_guesses`` once per chunk -- resumes mid-expansion exactly where
the previous chunk stopped, the same discipline as the bank replay
cursor.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.mangling import DETERMINISTIC_RULES, RULE_NAMES, STOCHASTIC_RULES
from repro.strategies.base import DEFAULT_BATCH, GuessBatch, GuessingStrategy
from repro.strategies.registry import (
    BuildResources,
    ParamReader,
    SpecError,
    StrategySpec,
    build,
    format_spec,
    parse_bool,
    register,
)
from repro.utils.rng import spawn_rng


class MangleStrategy(GuessingStrategy):
    """Expand an inner strategy's guesses through named mangling rules.

    ``rules`` are applied per word in sorted-name order (the canonical
    order, so rule selection is a set, not a sequence); deterministic
    rules contribute one variant each, stochastic rules ``variants``
    draws each from the word's own named sub-stream.  ``keep=True``
    (default) emits the unmangled word first.
    """

    def __init__(
        self,
        inner: GuessingStrategy,
        rules: Sequence[str],
        variants: int = 1,
        keep: bool = True,
        seed: int = 0,
        batch_size: Optional[int] = None,
        spec: Optional[str] = None,
    ) -> None:
        super().__init__(spec=spec)
        rules = tuple(sorted(set(rules)))
        if not rules:
            raise ValueError("mangle needs at least one rule")
        unknown = [name for name in rules if name not in RULE_NAMES]
        if unknown:
            raise ValueError(
                f"unknown mangling rule(s) {', '.join(unknown)} "
                f"(known: {', '.join(RULE_NAMES)})"
            )
        if variants < 1:
            raise ValueError("variants must be >= 1")
        self.inner = inner
        self.rules: Tuple[str, ...] = rules
        self.variants = int(variants)
        self.keep = bool(keep)
        self.seed = int(seed)
        self.batch_size = int(batch_size or DEFAULT_BATCH)
        if self.batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self.name = f"{inner.name}+Mangle"
        self.replayable = bool(getattr(inner, "replayable", False))
        # instance-level stream state: survives per-chunk generator re-entry
        self._buffer: List[str] = []
        self._inner_iter: Optional[Iterator[GuessBatch]] = None
        self._inner_dry = False

    # -- context plumbing: the wrapper and its inner strategy share state
    def bind(self, context) -> None:
        super().bind(context)
        self.inner.bind(self._context)

    def bind_shard(self, index: int, workers: int) -> None:
        self.inner.bind_shard(index, workers)

    def on_matches(self, batch: GuessBatch, indices: Sequence[int]) -> None:
        # best-effort forward; mangled batches carry no latents, so
        # latent-feedback strategies (Dynamic Sampling) see a no-op --
        # mangling severs the latent feedback loop by construction
        self.inner.on_matches(batch, indices)

    # ------------------------------------------------------------------
    def expand(self, word: str) -> List[str]:
        """Every variant of ``word`` under this spec, in canonical order.

        A pure function of ``(word, rules, variants, keep, seed)``: the
        stochastic draws come from the word's own
        ``spawn_rng(seed, "mangle/<rule>/<word>")`` sub-streams, never
        from shared attack RNG state.
        """
        out = [word] if self.keep else []
        for rule in self.rules:
            deterministic = DETERMINISTIC_RULES.get(rule)
            if deterministic is not None:
                out.append(deterministic(word))
                continue
            stochastic = STOCHASTIC_RULES[rule]
            rng = spawn_rng(self.seed, f"mangle/{rule}/{word}")
            out.extend(stochastic(word, rng) for _ in range(self.variants))
        return out

    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        if self._inner_iter is None and not self._inner_dry:
            self._inner_iter = self.inner.iter_guesses(rng)
        while True:
            count = self.context.next_count(self.batch_size)
            if count < 1:
                return
            while len(self._buffer) < count and not self._inner_dry:
                batch = next(self._inner_iter, None)
                if batch is None:
                    self._inner_dry = True
                    break
                for word in batch.materialize():
                    self._buffer.extend(self.expand(word))
            if not self._buffer:
                return
            emit = self._buffer[:count]
            del self._buffer[:count]
            yield GuessBatch(emit)


@register(
    "mangle",
    "mangling-rule expansion of a wrapped spec: "
    "mangle(<spec>)?rules=leet,append_year&variants=2",
    bankable="inherits the wrapped spec's replayability",
)
def _build_mangle(spec: StrategySpec, resources: BuildResources) -> GuessingStrategy:
    if spec.inner is None:
        raise SpecError(
            "mangle wraps another spec: mangle(<spec>)?rules=leet&variants=2"
        )
    reader = ParamReader(spec)
    rules_raw = reader.take("rules", "capitalize,leet,append_digits", cast=str)
    variants = reader.take("variants", 1, cast=int)
    keep = reader.take("keep", True, cast=parse_bool)
    seed = reader.take("seed", 0, cast=int)
    batch = reader.take("batch", None, cast=int)
    reader.finish()
    rules = tuple(
        sorted({part.strip() for part in rules_raw.split(",") if part.strip()})
    )
    inner = build(
        spec.inner,
        model=resources.model,
        corpus=resources.corpus,
        alphabet=resources.alphabet,
        batch_size=resources.batch_size,
    )
    params = {"rules": ",".join(rules)}
    if variants != 1:
        params["variants"] = variants
    if not keep:
        params["keep"] = False
    if seed != 0:
        params["seed"] = seed
    if batch is not None and batch != DEFAULT_BATCH:
        params["batch"] = batch
    canonical = format_spec("mangle", params=params, inner=inner.describe())
    try:
        return MangleStrategy(
            inner,
            rules,
            variants=variants,
            keep=keep,
            seed=seed,
            batch_size=batch or resources.batch_size,
            spec=canonical,
        )
    except ValueError as exc:
        raise SpecError(f"mangle spec {spec.canonical()!r}: {exc}") from None

"""Composition-policy filtering: the ``policy(<spec>)`` wrapper family.

A :class:`CompositionPolicy` models a site's password composition rules
(minimum/maximum length, required character classes, denylisted
substrings).  Wrapped around any registry spec --
``policy(passflow:dynamic)?min_len=8&classes=lud`` -- it filters the
inner guess stream *before* accounting, so the attack budget is spent
only on guesses a policy-enforcing target would even accept, and match
rates are comparable against a policy-conformant test slice
(``PasswordDataset(..., test_filter=policy.conforms)``).

Two filter paths, bitwise identical by construction:

* **encoded batches** (``passwords=None`` + index matrix): the mask is
  computed directly on the ``(N, D)`` alphabet-index rows -- lengths from
  the PAD structure, required classes through a per-alphabet class-bit
  lookup table and one ``bitwise_or`` reduction -- so no strings are
  materialized except for the denylist's surviving candidates;
* **string batches**: the scalar :meth:`CompositionPolicy.conforms`
  reference predicate per password.

The wrapper forwards ``bind``/``bind_shard``/``on_matches`` to the inner
strategy, so policy-filtered attacks shard, replay from banks, and keep
Dynamic Sampling's latent feedback exactly like unwrapped ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.alphabet import Alphabet
from repro.strategies.base import GuessBatch, GuessingStrategy
from repro.strategies.registry import (
    BuildResources,
    ParamReader,
    ParamValue,
    SpecError,
    StrategySpec,
    build,
    format_spec,
    parse_spec,
    register,
)

#: Character-class codes: lowercase, uppercase, digit, symbol.
CLASS_CODES = "luds"


def char_class(ch: str) -> str:
    """The class code of one character (anything non-alnum is a symbol)."""
    if ch.islower():
        return "l"
    if ch.isupper():
        return "u"
    if ch.isdigit():
        return "d"
    return "s"


def _class_bit(code: str) -> int:
    return 1 << CLASS_CODES.index(code)


@lru_cache(maxsize=None)
def _class_bits_lut(chars: str) -> np.ndarray:
    """Alphabet-index -> class-bit lookup table (PAD at index 0 -> 0)."""
    lut = np.zeros(len(chars) + 1, dtype=np.uint8)
    for i, ch in enumerate(chars):
        lut[i + 1] = _class_bit(char_class(ch))
    return lut


@dataclass(frozen=True)
class CompositionPolicy:
    """A password composition policy, canonicalized on construction.

    ``classes`` is a string of required class codes drawn from
    :data:`CLASS_CODES` (each listed class must appear at least once);
    ``deny`` is a tuple of forbidden substrings.  Both are normalized
    (sorted, deduplicated) so equal policies compare equal and emit one
    canonical spec.
    """

    min_len: int = 1
    max_len: Optional[int] = None
    classes: str = ""
    deny: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.min_len < 0:
            raise ValueError("min_len must be >= 0")
        if self.max_len is not None and self.max_len < self.min_len:
            raise ValueError(
                f"max_len={self.max_len} is below min_len={self.min_len}"
            )
        bad = sorted(set(self.classes) - set(CLASS_CODES))
        if bad:
            raise ValueError(
                f"unknown class code(s) {''.join(bad)!r}; "
                f"codes are {CLASS_CODES!r} (lower/upper/digit/symbol)"
            )
        object.__setattr__(self, "classes", "".join(sorted(set(self.classes))))
        deny = tuple(sorted(set(self.deny)))
        for pattern in deny:
            if not pattern:
                raise ValueError("deny patterns must be non-empty")
            if "," in pattern:
                raise ValueError(
                    f"deny pattern {pattern!r} contains ',' (the list separator)"
                )
        object.__setattr__(self, "deny", deny)

    # ------------------------------------------------------------------
    # construction from spec parameters
    # ------------------------------------------------------------------
    @classmethod
    def from_params(cls, params: Mapping[str, ParamValue]) -> "CompositionPolicy":
        """Build from a spec-parameter mapping (unknown keys raise)."""
        allowed = {"min_len", "max_len", "classes", "deny"}
        unknown = sorted(set(params) - allowed)
        if unknown:
            raise ValueError(
                f"unknown policy parameter(s) {', '.join(unknown)} "
                f"(allowed: {', '.join(sorted(allowed))})"
            )
        deny_raw = str(params.get("deny", "") or "")
        return cls(
            min_len=int(params.get("min_len", 1)),
            max_len=(
                int(params["max_len"]) if params.get("max_len") is not None else None
            ),
            classes=str(params.get("classes", "") or ""),
            deny=tuple(p.strip() for p in deny_raw.split(",") if p.strip()),
        )

    @classmethod
    def from_query(cls, query: str) -> "CompositionPolicy":
        """Build from a bare query string (``"min_len=8&classes=ld"``)."""
        spec = parse_spec(f"policy?{query}" if query else "policy")
        return cls.from_params(spec.param_dict)

    def spec_params(self) -> Dict[str, ParamValue]:
        """The non-default parameters, as they appear in a canonical spec."""
        params: Dict[str, ParamValue] = {}
        if self.min_len != 1:
            params["min_len"] = self.min_len
        if self.max_len is not None:
            params["max_len"] = self.max_len
        if self.classes:
            params["classes"] = self.classes
        if self.deny:
            params["deny"] = ",".join(self.deny)
        return params

    def wrap(self, inner_spec: str) -> str:
        """The canonical ``policy(<inner>)?...`` spec applying this policy."""
        return format_spec(
            "policy",
            params=self.spec_params(),
            inner=parse_spec(inner_spec).canonical(),
        )

    # ------------------------------------------------------------------
    # the predicate, scalar and vectorized
    # ------------------------------------------------------------------
    def conforms(self, password: str) -> bool:
        """Scalar reference predicate: does ``password`` satisfy the policy?"""
        if len(password) < self.min_len:
            return False
        if self.max_len is not None and len(password) > self.max_len:
            return False
        for code in self.classes:
            if not any(char_class(ch) == code for ch in password):
                return False
        for pattern in self.deny:
            if pattern in password:
                return False
        return True

    def mask_strings(self, passwords: Sequence[str]) -> np.ndarray:
        """Boolean keep-mask over a password list (the per-string path)."""
        return np.fromiter(
            (self.conforms(p) for p in passwords),
            dtype=bool,
            count=len(passwords),
        )

    def mask_indices(self, index_matrix: np.ndarray, codec) -> np.ndarray:
        """Boolean keep-mask over an ``(N, D)`` alphabet-index matrix.

        Vectorized pre-image filtering for encoded batches: lengths and
        required classes never materialize strings; denylist patterns
        decode only the rows that survive the cheap checks.  Bitwise
        equal to ``mask_strings(codec.strings_from_indices(...))``.
        """
        matrix = np.atleast_2d(np.asarray(index_matrix, dtype=np.int64))
        keep = np.logical_and.accumulate(matrix != Alphabet.PAD_INDEX, axis=1)
        lengths = keep.sum(axis=1, dtype=np.int64)
        mask = lengths >= self.min_len
        if self.max_len is not None:
            mask &= lengths <= self.max_len
        if self.classes and mask.any():
            lut = _class_bits_lut(codec.alphabet.chars)
            # canonical rows: indices after the first PAD are dead cells
            bits = lut[np.where(keep, matrix, Alphabet.PAD_INDEX)]
            present = np.bitwise_or.reduce(bits, axis=1)
            required = np.uint8(sum(_class_bit(code) for code in self.classes))
            mask &= (present & required) == required
        if self.deny:
            candidates = np.flatnonzero(mask)
            if candidates.size:
                decoded = codec.strings_from_indices(matrix[candidates])
                for row, password in zip(candidates, decoded):
                    if any(pattern in password for pattern in self.deny):
                        mask[row] = False
        return mask


class PolicyFilterStrategy(GuessingStrategy):
    """Filter an inner strategy's stream through a :class:`CompositionPolicy`.

    Nonconforming guesses are dropped *before* they reach accounting, so
    the guess budget counts only policy-conformant attempts.  Batch
    provenance (``latents``/``features``) is filtered with the same mask,
    keeping Dynamic Sampling's match feedback aligned.

    Because the budget only counts *emitted* guesses, an inner stream
    whose output the policy rejects wholesale would spin forever;
    ``patience`` bounds that starvation deterministically -- after that
    many *consecutive* filtered-out inner guesses the stream declares
    itself dry (any conforming guess resets the counter), so the guard
    is a pure function of the stream content and never perturbs runs
    that produce conformant guesses at any reasonable rate.
    """

    DEFAULT_PATIENCE = 1_000_000

    def __init__(
        self,
        inner: GuessingStrategy,
        policy: CompositionPolicy,
        spec: Optional[str] = None,
        patience: Optional[int] = None,
    ) -> None:
        super().__init__(spec=spec)
        self.inner = inner
        self.policy = policy
        self.patience = self.DEFAULT_PATIENCE if patience is None else int(patience)
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        self.name = f"{inner.name}+Policy"
        self.replayable = bool(getattr(inner, "replayable", False))
        self._starved = 0

    # -- context plumbing: the wrapper and its inner strategy share state
    def bind(self, context) -> None:
        super().bind(context)
        self.inner.bind(self._context)

    def bind_shard(self, index: int, workers: int) -> None:
        self.inner.bind_shard(index, workers)

    def on_matches(self, batch: GuessBatch, indices: Sequence[int]) -> None:
        self.inner.on_matches(batch, indices)

    # ------------------------------------------------------------------
    def _filter(self, batch: GuessBatch) -> Optional[GuessBatch]:
        """The batch with nonconforming rows removed (None when empty)."""
        if batch.passwords is None:
            mask = self.policy.mask_indices(batch.index_matrix, batch.codec)
        else:
            mask = self.policy.mask_strings(batch.passwords)
        if mask.all():
            return batch
        if not mask.any():
            return None
        latents = batch.latents[mask] if batch.latents is not None else None
        features = batch.features[mask] if batch.features is not None else None
        if batch.passwords is None:
            return GuessBatch(
                None,
                latents=latents,
                features=features,
                index_matrix=batch.index_matrix[mask],
                codec=batch.codec,
            )
        passwords = [p for p, ok in zip(batch.passwords, mask) if ok]
        return GuessBatch(passwords, latents=latents, features=features)

    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        for batch in self.inner.iter_guesses(rng):
            size = len(batch)
            filtered = self._filter(batch)
            if filtered is None:
                # starvation counter survives generator re-entry (elastic
                # chunks), like any other wrapper position state
                self._starved += size
                if self._starved >= self.patience:
                    return
                continue
            self._starved = 0
            yield filtered


@register(
    "policy",
    "composition-policy pre-image filter over a wrapped spec: "
    "policy(<spec>)?min_len=8&classes=lud&deny=password",
    bankable="inherits the wrapped spec's replayability",
)
def _build_policy(spec: StrategySpec, resources: BuildResources) -> GuessingStrategy:
    if spec.inner is None:
        raise SpecError(
            "policy wraps another spec: policy(<spec>)?min_len=8&classes=lud"
        )
    reader = ParamReader(spec)
    raw = {
        name: reader.take(name)
        for name in ("min_len", "max_len", "classes", "deny")
        if name in spec.param_dict
    }
    patience = reader.take("patience", None, int)
    reader.finish()
    try:
        policy = CompositionPolicy.from_params(raw)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"policy spec {spec.canonical()!r}: {exc}") from None
    inner = build(
        spec.inner,
        model=resources.model,
        corpus=resources.corpus,
        alphabet=resources.alphabet,
        batch_size=resources.batch_size,
    )
    params = dict(policy.spec_params())
    if patience is not None:
        params["patience"] = patience
    canonical = format_spec("policy", params=params, inner=inner.describe())
    try:
        return PolicyFilterStrategy(
            inner, policy, spec=canonical, patience=patience
        )
    except ValueError as exc:
        raise SpecError(f"policy spec {spec.canonical()!r}: {exc}") from None

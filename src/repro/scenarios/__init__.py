"""Attack scenarios: composition policies, mangling hybrids, cross-corpus.

The paper evaluates PassFlow on in-distribution trawling attacks; this
package models the deployment scenarios around that baseline as *wrapper
strategy families* composed through the registry's ``family(inner)``
grammar, so every scenario inherits sharding, elastic scheduling, bank
replay and the determinism contract from the layers below:

* ``policy(<spec>)`` -- :mod:`repro.scenarios.policy`: pre-image
  filtering of a guess stream against a :class:`CompositionPolicy`
  (min/max length, required character classes, denylist), vectorized over
  encoded index-matrix batches;
* ``mangle(<spec>)`` -- :mod:`repro.scenarios.mangle`: HashCat-style
  rule expansion of each inner guess through deterministic per-word
  ``spawn_rng`` sub-streams.

Cross-corpus attacks (train on one corpus, attack another) live in the
eval layer: ``EvalContext(target_corpus=...)`` and
:mod:`repro.eval.experiments.cross_corpus`.  See ``docs/scenarios.md``.
"""

from repro.scenarios.policy import CompositionPolicy, PolicyFilterStrategy
from repro.scenarios.mangle import MangleStrategy

__all__ = [
    "CompositionPolicy",
    "MangleStrategy",
    "PolicyFilterStrategy",
]

"""The four PassFlow guessing strategies on the GuessingStrategy protocol.

* ``passflow:static``        -- fixed-prior sampling (PassFlow-Static),
* ``passflow:dynamic``       -- Dynamic Sampling with Penalization
  (Algorithm 1),
* ``passflow:dynamic+gs``    -- Dynamic Sampling + Gaussian Smoothing,
* ``passflow:conditional``   -- template-constrained latent search
  (Sec. VII extension; requires ``template=``).

Static also accepts ``gs=true`` (``passflow:static?gs=true``) for the
smoothed-static arm of Table V-style ablations.

The streaming loops here are RNG-faithful ports of the eager
``StaticSampler.attack`` / ``DynamicSampler.attack`` bodies: driven by an
:class:`~repro.strategies.engine.AttackEngine` over the same budgets they
reproduce the legacy reports exactly.

The latent decodes these loops spend their time in dispatch through the
active kernel backend (:mod:`repro.kernels`, ``--kernels`` /
``REPRO_KERNELS``); every backend yields the same guess stream for a
fixed ``(seed, spec)``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.conditional import WILDCARD, matches_template
from repro.core.dynamic import DynamicSamplingConfig
from repro.core.model import PassFlow
from repro.core.penalization import (
    ExponentialDecayPenalization,
    LinearDecayPenalization,
    NoPenalization,
    PhiFunction,
    StepPenalization,
)
from repro.core.smoothing import GaussianSmoother
from repro.flows.priors import GaussianMixturePrior, Prior, StandardNormalPrior
from repro.strategies.base import DEFAULT_BATCH, GuessBatch, GuessingStrategy
from repro.strategies.registry import (
    BuildResources,
    ParamReader,
    SpecError,
    StrategySpec,
    format_spec,
    parse_bool,
    register,
)

DEFAULT_GS_SCALE = 0.75  # mirrors GaussianSmoother's sigma_scale default


def _smoother_scale(smoother: Optional[GaussianSmoother]) -> Optional[float]:
    """Recover a smoother's sigma_scale for spec round-tripping."""
    if smoother is None:
        return None
    return round(smoother.sigma / smoother.encoder.bin_width, 6)


class StaticStrategy(GuessingStrategy):
    """Fixed-prior guess stream over a trained PassFlow model."""

    def __init__(
        self,
        model: PassFlow,
        prior: Optional[Prior] = None,
        temperature: Optional[float] = None,
        smoother: Optional[GaussianSmoother] = None,
        batch_size: int = DEFAULT_BATCH,
        name: str = "PassFlow-Static",
        spec: Optional[str] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if spec is None:
            params: Dict[str, object] = {}
            # best effort: a StandardNormalPrior is spec-expressible as a
            # temperature; other custom priors have no spec form
            effective_temperature = temperature
            if effective_temperature is None and isinstance(prior, StandardNormalPrior):
                effective_temperature = prior.sigma
            if effective_temperature is not None:
                params["temperature"] = float(effective_temperature)
            if batch_size != DEFAULT_BATCH:
                params["batch"] = batch_size
            if smoother is not None:
                params["gs"] = True
                gs_scale = _smoother_scale(smoother)
                if gs_scale != DEFAULT_GS_SCALE:
                    params["gs_scale"] = gs_scale
            spec = format_spec("passflow", "static", params)
        super().__init__(spec=spec)
        self.model = model
        if prior is None and temperature is not None:
            prior = StandardNormalPrior(model.config.max_length, sigma=temperature)
        self.prior = prior
        self.smoother = smoother
        self.batch_size = batch_size
        self.name = name
        # Smoothing reads ``context.seen`` (collision breaking), which
        # depends on the whole attack so far -- only the smoother-free
        # stream is a pure function of (spec, seed, budget).
        self.replayable = smoother is None

    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        while True:
            count = self.context.next_count(self.batch_size)
            if count < 1:
                return
            latents = self.model.sample_latents(count, rng=rng, prior=self.prior)
            features = self.model.decode_latents_to_features(latents)
            encoded = _encoded_batch(self.model, self.smoother, latents, features)
            if encoded is not None:
                yield encoded
                continue
            passwords = self.model.encoder.decode_batch(features)
            if self.smoother is not None:
                passwords = self.smoother.smooth(
                    passwords, features, self.context.seen, rng
                )
            yield GuessBatch(passwords, latents=latents, features=features)


def _encoded_batch(model, smoother, latents, features) -> Optional[GuessBatch]:
    """An interned-id batch when strings are provably not needed.

    Smoothing consumes and rewrites the strings (and reads the seen set),
    so only smoother-free streams qualify; wide alphabets that cannot pack
    a row into 64 bits fall back to strings as well.
    """
    encoder = model.encoder
    if smoother is not None or encoder.pack_bits is None:
        return None
    return GuessBatch(
        None,
        latents=latents,
        features=features,
        index_matrix=encoder.floats_to_indices(features),
        codec=encoder,
    )


class DynamicStrategy(GuessingStrategy):
    """Algorithm 1 as a feedback-driven guess stream.

    The engine notifies fresh matches through :meth:`on_matches`; the
    matched latents (set M) and usage counts (Mh) condition the Eq. 14
    mixture prior exactly as in the eager sampler.
    """

    def __init__(
        self,
        model: PassFlow,
        config: Optional[DynamicSamplingConfig] = None,
        smoother: Optional[GaussianSmoother] = None,
        name: Optional[str] = None,
        spec: Optional[str] = None,
    ) -> None:
        config = config or DynamicSamplingConfig()
        if spec is None:
            variant = "dynamic+gs" if smoother is not None else "dynamic"
            params: Dict[str, object] = {
                "alpha": config.alpha,
                "sigma": config.sigma,
            }
            params.update(_phi_spec_params(config.phi))
            if config.batch_size != DEFAULT_BATCH:
                params["batch"] = config.batch_size
            if config.max_components != DynamicSamplingConfig().max_components:
                params["components"] = config.max_components
            if smoother is not None:
                gs_scale = _smoother_scale(smoother)
                if gs_scale != DEFAULT_GS_SCALE:
                    params["gs_scale"] = gs_scale
            spec = format_spec("passflow", variant, params)
        super().__init__(spec=spec)
        if name is None:
            name = "PassFlow-Dynamic+GS" if smoother is not None else "PassFlow-Dynamic"
        self.model = model
        self.config = config
        self.smoother = smoother
        self.name = name
        # The sets M and Mh of Algorithm 1.
        self.matched_latents: List[np.ndarray] = []
        self.usage_counts: List[int] = []
        self._active_window: Tuple[int, np.ndarray] = (0, np.empty(0, dtype=bool))

    # ------------------------------------------------------------------
    # prior construction (Eq. 14)
    # ------------------------------------------------------------------
    def mixture_prior(self) -> Optional[GaussianMixturePrior]:
        if len(self.matched_latents) <= self.config.alpha:
            return None
        start = max(0, len(self.matched_latents) - self.config.max_components)
        latents = np.stack(self.matched_latents[start:])
        counts = np.asarray(self.usage_counts[start:], dtype=np.float64)
        weights = self.config.phi(counts)
        if weights.sum() <= 0.0:
            return None  # everything penalized: fall back to base prior
        self._active_window = (start, weights > 0.0)
        return GaussianMixturePrior(latents, self.config.sigma, weights)

    def _note_usage(self) -> None:
        start, active = self._active_window
        for offset, is_active in enumerate(active):
            if is_active:
                self.usage_counts[start + offset] += 1

    # ------------------------------------------------------------------
    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        while True:
            count = self.context.next_count(self.config.batch_size)
            if count < 1:
                return
            prior = self.mixture_prior()
            latents = self.model.sample_latents(count, rng=rng, prior=prior)
            if prior is not None:
                self._note_usage()
            features = self.model.decode_latents_to_features(latents)
            encoded = _encoded_batch(self.model, self.smoother, latents, features)
            if encoded is not None:
                yield encoded
                continue
            passwords = self.model.encoder.decode_batch(features)
            if self.smoother is not None:
                passwords = self.smoother.smooth(
                    passwords, features, self.context.seen, rng
                )
            yield GuessBatch(passwords, latents=latents, features=features)

    def on_matches(self, batch: GuessBatch, indices: Sequence[int]) -> None:
        if batch.latents is None:
            return
        for index in indices:
            self.matched_latents.append(batch.latents[index])
            self.usage_counts.append(0)


class ConditionalStrategy(GuessingStrategy):
    """Streaming template-constrained guessing (``'love**'``-style).

    Evolutionary latent search as in
    :class:`~repro.core.conditional.ConditionalGuesser`, recast as an
    endless guess stream: each round perturbs the population, yields the
    feasible decodings, and re-seeds the population from the
    highest-density completions found so far.  Rounds with no feasible
    decoding fall back to random completions of the template so the attack
    always makes guess-budget progress.
    """

    name = "PassFlow-Conditional"

    #: The evolutionary search never reads attack feedback or the seen
    #: set: the stream is a pure function of (template, model, rng).
    replayable = True

    def __init__(
        self,
        model: PassFlow,
        template: str,
        population: int = 128,
        elite_fraction: float = 0.25,
        noise_scale: float = 0.15,
        spec: Optional[str] = None,
    ) -> None:
        if population < 4:
            raise ValueError("population must be >= 4")
        if not 0.0 < elite_fraction <= 1.0:
            raise ValueError("elite_fraction must be in (0, 1]")
        if noise_scale <= 0:
            raise ValueError("noise_scale must be positive")
        if not template:
            raise ValueError("template must be non-empty")
        if len(template) > model.encoder.max_length:
            raise ValueError("template longer than model max_length")
        if not all(ch == WILDCARD or ch in model.alphabet for ch in template):
            raise ValueError("template contains characters outside the alphabet")
        if spec is None:
            params: Dict[str, object] = {"template": template}
            if population != 128:
                params["population"] = population
            spec = format_spec("passflow", "conditional", params)
        super().__init__(spec=spec)
        self.model = model
        self.template = template
        self.population = population
        self.elite = max(1, int(population * elite_fraction))
        self.noise_scale = noise_scale

    def _random_completions(self, count: int, rng: np.random.Generator) -> List[str]:
        chars = self.model.alphabet.chars
        out = []
        for _ in range(count):
            filled = [
                ch if ch != WILDCARD else chars[int(rng.integers(0, len(chars)))]
                for ch in self.template
            ]
            out.append("".join(filled))
        return out

    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        if WILDCARD not in self.template:
            yield GuessBatch([self.template])
            return
        seeds = self._random_completions(self.population, rng)
        latents = self.model.encode_passwords(seeds)
        best: Dict[str, float] = {}
        while True:
            noise = rng.normal(0.0, self.noise_scale, size=latents.shape)
            decoded = self.model.decode_latents(latents + noise)
            feasible = [p for p in decoded if matches_template(p, self.template)]
            if not feasible:
                yield GuessBatch(self._random_completions(self.population, rng))
                continue
            scores = self.model.log_prob(feasible)
            for password, score in zip(feasible, scores):
                previous = best.get(password)
                if previous is None or score > previous:
                    best[password] = float(score)
            ranked = sorted(best.items(), key=lambda kv: -kv[1])
            # bound the memory of the elite archive
            if len(ranked) > 4 * self.population:
                ranked = ranked[: 4 * self.population]
                best = dict(ranked)
            elite_latents = self.model.encode_passwords(
                [password for password, _ in ranked[: self.elite]]
            )
            repeats = int(np.ceil(self.population / len(elite_latents)))
            latents = np.tile(elite_latents, (repeats, 1))[: self.population]
            yield GuessBatch(feasible)


# ----------------------------------------------------------------------
# registry factory
# ----------------------------------------------------------------------
_PHI_BUILDERS = {
    "step": lambda gamma: StepPenalization(gamma),
    "none": lambda gamma: NoPenalization(),
    "linear": lambda gamma: LinearDecayPenalization(gamma),
    "exponential": lambda gamma: ExponentialDecayPenalization(),
}


def _phi_spec_params(phi: PhiFunction) -> Dict[str, object]:
    """Spec parameters that rebuild ``phi`` (best effort for custom phis)."""
    if isinstance(phi, StepPenalization):
        return {"gamma": phi.gamma}  # phi=step is the spec default
    if isinstance(phi, NoPenalization):
        return {"phi": "none"}
    if isinstance(phi, LinearDecayPenalization):
        return {"gamma": phi.horizon, "phi": "linear"}
    if isinstance(phi, ExponentialDecayPenalization):
        return {"phi": "exponential"}
    return {}  # custom phi objects have no spec form


@register(
    "passflow",
    "PassFlow latent-space strategies: static[+gs], dynamic[+gs], conditional",
    bankable="static/conditional only (dynamic and +gs read attack feedback)",
)
def _build_passflow(spec: StrategySpec, resources: BuildResources) -> GuessingStrategy:
    model = resources.model
    if not isinstance(model, PassFlow):
        raise SpecError(
            "passflow specs need model=<trained repro.core.model.PassFlow>"
        )
    variant = spec.variant or "static"
    reader = ParamReader(spec)
    default_batch = resources.batch_size or DEFAULT_BATCH

    if variant in ("static", "static+gs"):
        temperature = reader.take("temperature", cast=float)
        batch = reader.take("batch", default_batch, cast=int)
        smoothed = reader.take("gs", variant == "static+gs", cast=parse_bool)
        gs_scale = (
            reader.take("gs_scale", DEFAULT_GS_SCALE, cast=float) if smoothed else None
        )
        reader.finish()
        smoother = (
            GaussianSmoother(model.encoder, sigma_scale=gs_scale) if smoothed else None
        )
        return StaticStrategy(
            model,
            temperature=temperature,
            smoother=smoother,
            batch_size=batch,
            name="PassFlow-Static+GS" if smoothed else "PassFlow-Static",
            spec=reader.canonical(),
        )

    if variant in ("dynamic", "dynamic+gs"):
        defaults = DynamicSamplingConfig()
        alpha = reader.take("alpha", defaults.alpha, cast=int)
        sigma = reader.take("sigma", defaults.sigma, cast=float)
        phi_name = reader.take("phi", "step", cast=str)
        gamma = reader.take("gamma", 2, cast=int)
        batch = reader.take("batch", default_batch, cast=int)
        max_components = reader.take("components", defaults.max_components, cast=int)
        smoothed = variant == "dynamic+gs"
        gs_scale = (
            reader.take("gs_scale", DEFAULT_GS_SCALE, cast=float) if smoothed else None
        )
        reader.finish()
        phi_builder = _PHI_BUILDERS.get(phi_name)
        if phi_builder is None:
            raise SpecError(
                f"unknown phi {phi_name!r} (options: {sorted(_PHI_BUILDERS)})"
            )
        config = DynamicSamplingConfig(
            alpha=alpha,
            sigma=sigma,
            phi=phi_builder(gamma),
            batch_size=batch,
            max_components=max_components,
        )
        smoother = (
            GaussianSmoother(model.encoder, sigma_scale=gs_scale) if smoothed else None
        )
        return DynamicStrategy(model, config, smoother=smoother, spec=reader.canonical())

    if variant == "conditional":
        template = reader.take("template", cast=str)
        if not template:
            raise SpecError("passflow:conditional needs template=<pattern> (* = unknown)")
        population = reader.take("population", 128, cast=int)
        elite = reader.take("elite", 0.25, cast=float)
        noise = reader.take("noise", 0.15, cast=float)
        reader.finish()
        return ConditionalStrategy(
            model,
            template,
            population=population,
            elite_fraction=elite,
            noise_scale=noise,
            spec=reader.canonical(),
        )

    raise SpecError(
        f"unknown passflow variant {variant!r} "
        "(options: static, static+gs, dynamic, dynamic+gs, conditional)"
    )

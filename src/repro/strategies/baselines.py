"""The five baseline guessers adapted onto the GuessingStrategy protocol.

* ``passgan``            -- PassGAN-style Wasserstein GAN (Sec. VI-A/B),
* ``cwae``               -- Context Wasserstein Autoencoder (Sec. VI-C),
* ``markov[:order]``     -- character n-gram model (JTR Markov mode),
* ``pcfg``               -- Weir-style probabilistic context-free grammar,
* ``rules``              -- HashCat/JTR-style wordlist mangling.

Each factory accepts either a pre-fitted model instance (``model=``) or a
training ``corpus=`` to fit one on demand; the neural baselines
additionally honour training knobs in the spec (``passgan?iterations=300``)
so even they are constructible from a bare string.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

import numpy as np

from repro.baselines import (
    CWAE,
    CWAEConfig,
    MarkovModel,
    PCFGModel,
    PassGAN,
    PassGANConfig,
    RuleBasedGuesser,
)
from repro.strategies.base import DEFAULT_BATCH, GuessBatch, GuessingStrategy
from repro.strategies.registry import (
    BuildResources,
    ParamReader,
    SpecError,
    StrategySpec,
    format_spec,
    register,
)


def _batch_param(reader: ParamReader, resources: BuildResources) -> int:
    """The shared ``batch`` parameter every baseline factory honours."""
    return reader.take("batch", resources.batch_size or DEFAULT_BATCH, cast=int)


def _spec_params(reader: ParamReader, fitted_anew: bool) -> dict:
    """Params to record in the canonical spec.

    Training knobs only describe the strategy when the factory actually
    trained the model; with a pre-fitted instance they were no-ops and
    recording them would misrepresent the configuration.
    """
    if fitted_anew:
        return dict(reader.used)
    return {k: v for k, v in reader.used.items() if k == "batch"}


class SampledModelStrategy(GuessingStrategy):
    """Any generator with ``sample_passwords(count, rng)`` as a strategy.

    Covers all five baselines (and any future model with the common
    sampling interface); the guess stream is the model's i.i.d. sampler,
    batch-sized to the remaining budget like the legacy
    :class:`~repro.core.guesser.GuessingAttack` loop.
    """

    #: The stream is feedback-free i.i.d. sampling: a pure function of
    #: ``(model, rng)``, so it can be banked and replayed bit-identically.
    replayable = True

    def __init__(
        self,
        model: Any,
        name: str,
        batch_size: int = DEFAULT_BATCH,
        spec: Optional[str] = None,
    ) -> None:
        if not hasattr(model, "sample_passwords"):
            raise TypeError(f"{type(model).__name__} has no sample_passwords()")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        super().__init__(spec=spec)
        self.model = model
        self.name = name
        self.batch_size = batch_size

    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        while True:
            count = self.context.next_count(self.batch_size)
            if count < 1:
                return
            yield GuessBatch(list(self.model.sample_passwords(count, rng)))


def _alphabet_chars(resources: BuildResources) -> Optional[str]:
    alphabet = resources.alphabet
    return getattr(alphabet, "chars", None) if alphabet is not None else None


def _need_corpus(spec: StrategySpec, resources: BuildResources):
    if not resources.corpus:
        raise SpecError(
            f"spec {spec.canonical()!r} needs either a fitted model instance "
            "(model=...) or a training corpus (corpus=...)"
        )
    return resources.corpus


# ----------------------------------------------------------------------
@register(
    "markov",
    "order-k character n-gram baseline; variant = order (markov:3)",
    bankable="yes (feedback-free sampler)",
)
def _build_markov(spec: StrategySpec, resources: BuildResources) -> GuessingStrategy:
    reader = ParamReader(spec)
    if spec.variant:
        try:
            order = int(spec.variant)
        except ValueError:
            raise SpecError(
                f"markov variant must be an integer order, got {spec.variant!r}"
            ) from None
    else:
        order = 3
    smoothing = reader.take("smoothing", 0.01, cast=float)
    batch = _batch_param(reader, resources)
    reader.finish()
    model = resources.model
    fitted_anew = not isinstance(model, MarkovModel)
    if not fitted_anew:
        if spec.variant and model.order != order:
            raise SpecError(
                f"spec asks for markov:{order} but the supplied model has "
                f"order {model.order}"
            )
    else:
        model = MarkovModel(order=order, smoothing=smoothing)
        model.fit(_need_corpus(spec, resources))
    return SampledModelStrategy(
        model,
        name=f"Markov-{model.order}",
        batch_size=batch,
        spec=format_spec("markov", str(model.order), _spec_params(reader, fitted_anew)),
    )


@register(
    "pcfg",
    "Weir-style PCFG baseline (structure + terminal sampling)",
    bankable="yes (feedback-free sampler)",
)
def _build_pcfg(spec: StrategySpec, resources: BuildResources) -> GuessingStrategy:
    if spec.variant:
        raise SpecError("pcfg takes no variant")
    reader = ParamReader(spec)
    batch = _batch_param(reader, resources)
    reader.finish()
    model = resources.model
    fitted_anew = not isinstance(model, PCFGModel)
    if fitted_anew:
        model = PCFGModel().fit(_need_corpus(spec, resources))
    return SampledModelStrategy(
        model,
        name="PCFG",
        batch_size=batch,
        spec=format_spec("pcfg", None, _spec_params(reader, fitted_anew)),
    )


@register(
    "rules",
    "wordlist + mangling-rule baseline (rules?wordlist=300)",
    bankable="yes (feedback-free sampler)",
)
def _build_rules(spec: StrategySpec, resources: BuildResources) -> GuessingStrategy:
    if spec.variant:
        raise SpecError("rules takes no variant")
    reader = ParamReader(spec)
    wordlist = reader.take("wordlist", 200, cast=int)
    batch = _batch_param(reader, resources)
    reader.finish()
    model = resources.model
    fitted_anew = not isinstance(model, RuleBasedGuesser)
    if fitted_anew:
        model = RuleBasedGuesser(wordlist_size=wordlist)
        model.fit(_need_corpus(spec, resources))
    return SampledModelStrategy(
        model,
        name="Rules",
        batch_size=batch,
        spec=format_spec("rules", None, _spec_params(reader, fitted_anew)),
    )


@register(
    "passgan",
    "PassGAN-style WGAN baseline (trains on demand: passgan?iterations=300)",
    bankable="yes (feedback-free sampler)",
)
def _build_passgan(spec: StrategySpec, resources: BuildResources) -> GuessingStrategy:
    if spec.variant:
        raise SpecError("passgan takes no variant")
    reader = ParamReader(spec)
    iterations = reader.take("iterations", 300, cast=int)
    hidden = reader.take("hidden", 64, cast=int)
    encoding = reader.take("encoding", "numeric", cast=str)
    seed = reader.take("seed", 0, cast=int)
    batch = _batch_param(reader, resources)
    reader.finish()
    model = resources.model
    fitted_anew = not isinstance(model, PassGAN)
    if fitted_anew:
        config = PassGANConfig(
            alphabet_chars=_alphabet_chars(resources),
            hidden=hidden,
            iterations=iterations,
            encoding=encoding,
            seed=seed,
        )
        model = PassGAN(config)
        model.fit(_need_corpus(spec, resources))
    return SampledModelStrategy(
        model,
        name="PassGAN",
        batch_size=batch,
        spec=format_spec("passgan", None, _spec_params(reader, fitted_anew)),
    )


@register(
    "cwae",
    "Context Wasserstein Autoencoder baseline (trains on demand: cwae?epochs=20)",
    bankable="yes (feedback-free sampler)",
)
def _build_cwae(spec: StrategySpec, resources: BuildResources) -> GuessingStrategy:
    if spec.variant:
        raise SpecError("cwae takes no variant")
    reader = ParamReader(spec)
    epochs = reader.take("epochs", 20, cast=int)
    hidden = reader.take("hidden", 64, cast=int)
    latent = reader.take("latent", 32, cast=int)
    seed = reader.take("seed", 0, cast=int)
    batch = _batch_param(reader, resources)
    reader.finish()
    model = resources.model
    fitted_anew = not isinstance(model, CWAE)
    if fitted_anew:
        config = CWAEConfig(
            alphabet_chars=_alphabet_chars(resources),
            latent_dim=latent,
            hidden=hidden,
            epochs=epochs,
            seed=seed,
        )
        model = CWAE(config)
        model.fit(_need_corpus(spec, resources))
    return SampledModelStrategy(
        model,
        name="CWAE",
        batch_size=batch,
        spec=format_spec("cwae", None, _spec_params(reader, fitted_anew)),
    )

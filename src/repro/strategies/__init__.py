"""Unified guessing-strategy API: protocol, registry and streaming engine.

One composable surface over every guess generator in the repository --
the four PassFlow modes (static, dynamic, dynamic+GS, conditional) and the
five baselines (PassGAN, CWAE, Markov, PCFG, rules):

* :class:`GuessingStrategy` / :class:`GuessBatch` -- the lazy-producer
  protocol every strategy implements (:mod:`repro.strategies.base`),
* :func:`build` / :func:`parse_spec` / :func:`register` -- the string-spec
  registry (``build("passflow:dynamic+gs?alpha=1&sigma=0.12", model=m)``,
  ``build("markov:3", corpus=train)``),
* :class:`AttackEngine` -- streaming, budget-checkpointed, resumable
  attack driver producing :class:`~repro.core.guesser.GuessingReport`
  rows,
* :func:`take` -- attack-free sampling from any strategy.

Typical use::

    from repro.strategies import AttackEngine, build

    strategy = build("passflow:dynamic+gs?alpha=1&sigma=0.12", model=model)
    engine = AttackEngine(test_set, budgets=[10**4, 10**5])
    report = engine.run(strategy, rng)
"""

from repro.strategies.base import AttackContext, GuessBatch, GuessingStrategy
from repro.strategies.engine import AttackEngine, AttackState, take
from repro.strategies.registry import (
    BuildResources,
    SpecError,
    StrategySpec,
    available_strategies,
    build,
    format_spec,
    parse_spec,
    register,
    strategy_catalog,
    unwrap_spec,
)

# importing the implementation modules populates the registry
from repro.strategies.passflow import (  # noqa: E402
    ConditionalStrategy,
    DynamicStrategy,
    StaticStrategy,
)
from repro.strategies.baselines import SampledModelStrategy  # noqa: E402
from repro.bank.replay import BankReplayStrategy  # noqa: E402
from repro.scenarios import (  # noqa: E402
    CompositionPolicy,
    MangleStrategy,
    PolicyFilterStrategy,
)

__all__ = [
    "AttackContext",
    "AttackEngine",
    "AttackState",
    "BankReplayStrategy",
    "BuildResources",
    "CompositionPolicy",
    "ConditionalStrategy",
    "DynamicStrategy",
    "GuessBatch",
    "GuessingStrategy",
    "MangleStrategy",
    "PolicyFilterStrategy",
    "SampledModelStrategy",
    "SpecError",
    "StaticStrategy",
    "StrategySpec",
    "available_strategies",
    "build",
    "format_spec",
    "parse_spec",
    "register",
    "strategy_catalog",
    "take",
    "unwrap_spec",
]

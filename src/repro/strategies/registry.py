"""String-spec registry: build any guessing strategy from a config string.

Spec grammar (URL-query flavored, config/CLI/service friendly)::

    family[:variant][?key=value&key=value...]
    family(inner-spec)[?key=value&key=value...]     -- wrapper families

    passflow:dynamic+gs?alpha=1&sigma=0.12
    passflow:static?temperature=0.75
    passflow:conditional?template=love**
    markov:3
    pcfg
    rules?wordlist=300
    passgan?iterations=300
    cwae
    policy(passflow:dynamic)?min_len=8&classes=lud
    mangle(markov:3)?rules=leet,append_year&variants=2

Wrapper families (the scenario layer, :mod:`repro.scenarios`) take the
spec they wrap in parentheses instead of a variant; the inner spec is any
spec of this grammar, wrappers included, and is canonicalized
recursively.  Literal ``(``/``)`` inside parameter values are
percent-escaped like the other structural characters.

``build(spec, ...)`` resolves the family against the registry and hands the
parsed spec plus a :class:`BuildResources` bundle (trained model, training
corpus, alphabet) to the family's factory.  Factories validate parameters
strictly -- unknown keys raise :class:`SpecError` -- and attach the
canonical spec string to the strategy so ``build(s).describe()`` round-trips.

Families self-register at import time via the :func:`register` decorator
(see :mod:`repro.strategies.passflow` and
:mod:`repro.strategies.baselines`), mirroring the config-driven-builder
idiom of FAB-JAX's ``FlowDistConfig`` recipes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.strategies.base import GuessingStrategy

ParamValue = Any  # int | float | bool | str


class SpecError(ValueError):
    """Malformed spec string, unknown family, or unusable resources."""


# ----------------------------------------------------------------------
# spec parsing / formatting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StrategySpec:
    """A parsed strategy spec; equality gives round-trip semantics."""

    family: str
    variant: Optional[str] = None
    params: Tuple[Tuple[str, ParamValue], ...] = ()
    #: For wrapper specs (``policy(markov:3)``): the canonicalized inner
    #: spec string.  ``None`` for plain specs; mutually exclusive with
    #: ``variant``.
    inner: Optional[str] = None

    @property
    def param_dict(self) -> Dict[str, ParamValue]:
        return dict(self.params)

    def canonical(self) -> str:
        """Re-emit the canonical string form (sorted parameter keys)."""
        return format_spec(self.family, self.variant, self.param_dict, self.inner)


def _parse_value(text: str) -> ParamValue:
    """Coerce a query value to int/float only when the text round-trips.

    Lossy coercions stay strings so e.g. ``template=007`` is not mangled
    to ``7``; numeric-typed factory parameters recover the number through
    their ``cast`` at build time (``float("1e4")`` still works).
    """
    try:
        as_int = int(text)
        if str(as_int) == text:
            return as_int
    except ValueError:
        pass
    try:
        as_float = float(text)
        if np.isfinite(as_float) and repr(as_float) == text:
            return as_float
    except ValueError:
        pass
    return text


#: Characters with structural meaning inside a query or a wrapper form;
#: percent-escaped in string values so e.g. a conditional template
#: containing ``&`` (or a denylist pattern containing ``(``) survives.
_ESCAPES = {"%": "%25", "&": "%26", "=": "%3D", "(": "%28", ")": "%29"}


def _escape_text(text: str) -> str:
    for char, escape in _ESCAPES.items():
        text = text.replace(char, escape)
    return text


def _unescape_text(text: str) -> str:
    for char, escape in reversed(_ESCAPES.items()):
        text = text.replace(escape, char)
    return text


def _format_value(value: ParamValue) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        return _escape_text(value)
    return str(value)


def parse_bool(value: ParamValue) -> bool:
    """Cast helper for boolean spec parameters (``gs=true``)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, str) and value.lower() in ("true", "false"):
        return value.lower() == "true"
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    raise ValueError(f"expected true/false, got {value!r}")


def _parse_query(query: str, spec: str) -> Dict[str, ParamValue]:
    """Parse a ``k=v&...`` query tail into a parameter dict."""
    params: Dict[str, ParamValue] = {}
    for pair in query.split("&"):
        if not pair:
            continue
        key, sep, value = pair.partition("=")
        key = key.strip()
        if not sep or not key:
            raise SpecError(f"malformed parameter {pair!r} in spec {spec!r}")
        if key in params:
            raise SpecError(f"duplicate parameter {key!r} in spec {spec!r}")
        parsed_value = _parse_value(value.strip())
        if isinstance(parsed_value, str):
            parsed_value = _unescape_text(parsed_value)
        params[key] = parsed_value
    return params


def parse_spec(spec: str) -> StrategySpec:
    """Parse ``family[:variant][?k=v&...]`` or the wrapper form
    ``family(inner)[?k=v&...]`` into a :class:`StrategySpec`."""
    if not isinstance(spec, str) or not spec.strip():
        raise SpecError("spec must be a non-empty string")
    spec = spec.strip()
    paren = spec.find("(")
    question = spec.find("?")
    inner: Optional[str] = None
    variant: Optional[str] = None
    if paren != -1 and (question == -1 or paren < question):
        # wrapper form: the opening paren appears before any query
        depth = 0
        close = -1
        for pos in range(paren, len(spec)):
            if spec[pos] == "(":
                depth += 1
            elif spec[pos] == ")":
                depth -= 1
                if depth == 0:
                    close = pos
                    break
        if close == -1:
            raise SpecError(f"unbalanced parentheses in spec {spec!r}")
        family = spec[:paren].strip().lower()
        if not family:
            raise SpecError(f"spec {spec!r} has no strategy family")
        if ":" in family:
            raise SpecError(
                f"wrapper spec {spec!r} cannot take a variant; use ?key=value "
                "parameters"
            )
        raw_inner = spec[paren + 1 : close].strip()
        if not raw_inner:
            raise SpecError(f"wrapper spec {spec!r} has an empty inner spec")
        inner = parse_spec(raw_inner).canonical()
        rest = spec[close + 1 :]
        if rest and not rest.startswith("?"):
            raise SpecError(
                f"unexpected text {rest!r} after the wrapped spec in {spec!r}"
            )
        query = rest[1:]
    else:
        head, _, query = spec.partition("?")
        family, _, variant_text = head.partition(":")
        family = family.strip().lower()
        if not family:
            raise SpecError(f"spec {spec!r} has no strategy family")
        variant = variant_text.strip() or None
    params = _parse_query(query, spec) if query else {}
    return StrategySpec(
        family=family,
        variant=variant,
        params=tuple(sorted(params.items())),
        inner=inner,
    )


def format_spec(
    family: str,
    variant: Optional[str] = None,
    params: Optional[Mapping[str, ParamValue]] = None,
    inner: Optional[str] = None,
) -> str:
    """The canonical string form of a spec (sorted parameter keys)."""
    if inner is not None and variant:
        raise SpecError("a wrapper spec cannot carry a variant")
    out = family
    if inner is not None:
        out += f"({inner})"
    elif variant:
        out += f":{variant}"
    if params:
        query = "&".join(
            f"{key}={_format_value(value)}" for key, value in sorted(params.items())
        )
        if query:
            out += f"?{query}"
    return out


def unwrap_spec(spec) -> StrategySpec:
    """The innermost (non-wrapper) spec of a possibly-wrapped spec.

    ``unwrap_spec("policy(mangle(passflow:static))?min_len=8")`` resolves
    to the parsed ``passflow:static`` spec -- what callers inspect to
    decide which trained artifact a spec ultimately needs.
    """
    parsed = spec if isinstance(spec, StrategySpec) else parse_spec(spec)
    while parsed.inner is not None:
        parsed = parse_spec(parsed.inner)
    return parsed


# ----------------------------------------------------------------------
# build resources
# ----------------------------------------------------------------------
@dataclass
class BuildResources:
    """What a factory may draw on to construct a strategy.

    ``model`` is the family's primary artifact: a trained
    :class:`~repro.core.model.PassFlow` for ``passflow`` specs, a fitted
    baseline instance for baseline specs (factories ignore models of the
    wrong type, so callers can pass whatever they have).  ``corpus`` lets
    count-based baselines fit themselves on demand; ``alphabet`` pins the
    symbol set when a neural baseline must train from scratch.
    """

    model: Any = None
    corpus: Optional[Sequence[str]] = None
    alphabet: Any = None
    batch_size: Optional[int] = None


class ParamReader:
    """Strict parameter consumption for factories: typo-proof specs."""

    def __init__(self, spec: StrategySpec) -> None:
        self.spec = spec
        self._pending = spec.param_dict
        self.used: Dict[str, ParamValue] = {}

    def take(self, name: str, default: ParamValue = None, cast: Optional[Callable] = None):
        if name not in self._pending:
            return default
        value = self._pending.pop(name)
        if cast is not None:
            try:
                value = cast(value)
            except (TypeError, ValueError) as exc:
                raise SpecError(
                    f"parameter {name}={value!r} in spec "
                    f"{self.spec.canonical()!r}: {exc}"
                ) from None
        self.used[name] = value
        return value

    def finish(self) -> None:
        if self._pending:
            unknown = ", ".join(sorted(self._pending))
            raise SpecError(
                f"unknown parameter(s) {unknown} for strategy family "
                f"{self.spec.family!r}"
            )

    def canonical(self) -> str:
        """Canonical spec covering exactly the parameters consumed."""
        return format_spec(
            self.spec.family, self.spec.variant, self.used, self.spec.inner
        )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
StrategyFactory = Callable[[StrategySpec, BuildResources], GuessingStrategy]

_REGISTRY: Dict[str, Tuple[StrategyFactory, str, str]] = {}


def register(family: str, summary: str = "", bankable: str = "no"):
    """Class/function decorator registering a strategy factory.

    ``bankable`` is a one-line note on whether the family's specs are
    deterministic-replayable (``bank build``-able): samplers whose stream
    is a pure function of ``(spec, seed, budget)``.  Shown by
    ``repro strategies --bankable``.
    """

    def decorator(factory: StrategyFactory) -> StrategyFactory:
        key = family.lower()
        if key in _REGISTRY:
            raise ValueError(f"strategy family {family!r} already registered")
        _REGISTRY[key] = (
            factory,
            summary or (factory.__doc__ or "").strip(),
            bankable,
        )
        return factory

    return decorator


def available_strategies() -> Dict[str, str]:
    """Mapping of registered family -> one-line summary."""
    return {family: summary for family, (_, summary, _) in sorted(_REGISTRY.items())}


def strategy_catalog() -> Dict[str, Tuple[str, str]]:
    """Mapping of registered family -> ``(summary, bankable note)``."""
    return {
        family: (summary, bankable)
        for family, (_, summary, bankable) in sorted(_REGISTRY.items())
    }


def build(
    spec: str,
    model: Any = None,
    corpus: Optional[Sequence[str]] = None,
    alphabet: Any = None,
    batch_size: Optional[int] = None,
) -> GuessingStrategy:
    """Construct the strategy a spec string describes.

    >>> build("passflow:dynamic+gs?alpha=1&sigma=0.12", model=passflow)
    >>> build("markov:3", corpus=train_passwords)
    """
    parsed = spec if isinstance(spec, StrategySpec) else parse_spec(spec)
    entry = _REGISTRY.get(parsed.family)
    if entry is None:
        known = ", ".join(sorted(_REGISTRY))
        raise SpecError(f"unknown strategy family {parsed.family!r} (known: {known})")
    factory = entry[0]
    resources = BuildResources(
        model=model, corpus=corpus, alphabet=alphabet, batch_size=batch_size
    )
    return factory(parsed, resources)

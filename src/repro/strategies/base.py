"""The GuessingStrategy protocol: one interface for every guess generator.

The paper's framing (Sec. III) is that a single trained latent-space model
supports many *guessing strategies* -- static sampling, Dynamic Sampling
with Penalization, Gaussian Smoothing, conditional guessing -- and the
evaluation (Sec. VI) compares them against a roster of baselines under the
same accounting.  This module gives all of them one shape:

* a strategy is a lazy producer of :class:`GuessBatch` objects via
  ``iter_guesses(rng)``;
* the consumer (an :class:`~repro.strategies.engine.AttackEngine`, or
  :func:`~repro.strategies.engine.take` for plain sampling) *binds* an
  :class:`AttackContext` before iterating, giving the strategy a live view
  of progress (remaining budget, guesses seen so far) without coupling it
  to the accounting;
* feedback-driven strategies (Dynamic Sampling) receive match notifications
  through :meth:`GuessingStrategy.on_matches`.

Strategies never materialize more than one batch, so attack memory is
constant in the guess budget.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Set

import numpy as np

#: Engine-wide default guess-batch size (the legacy samplers' value); spec
#: canonicalization omits ``batch`` when it equals this.
DEFAULT_BATCH = 2048


@dataclass
class GuessBatch:
    """One batch of generated guesses plus optional generative provenance.

    ``latents`` / ``features`` carry the latent points and pre-binning
    data-space floats the passwords were decoded from, when the strategy
    has them; feedback consumers (Dynamic Sampling's matched-latent memory)
    and smoothing read these instead of re-encoding.

    **Encoded batches**: a strategy that never inspects its own guess
    strings (and never reads ``context.seen``) may yield ``passwords=None``
    with an ``index_matrix`` (the (N, D) alphabet-index rows) and the
    ``codec`` that decodes them.  Consumers that can, account the batch as
    interned ids without ever materializing strings
    (:meth:`~repro.core.guesser.GuessAccounting.observe_encoded`); everyone
    else calls :meth:`materialize`.
    """

    passwords: Optional[List[str]]
    latents: Optional[np.ndarray] = None
    features: Optional[np.ndarray] = None
    index_matrix: Optional[np.ndarray] = None
    codec: Optional[object] = None

    def __post_init__(self) -> None:
        if self.passwords is None and (self.index_matrix is None or self.codec is None):
            raise ValueError(
                "a GuessBatch needs passwords, or an index_matrix plus codec"
            )

    def materialize(self) -> List[str]:
        """The batch's password strings (decoded on first use, then kept)."""
        if self.passwords is None:
            self.passwords = self.codec.strings_from_indices(self.index_matrix)
        return self.passwords

    def __len__(self) -> int:
        if self.passwords is not None:
            return len(self.passwords)
        return len(self.index_matrix)

    def __iter__(self) -> Iterator[str]:
        return iter(self.materialize())


class AttackContext:
    """Live attack-progress view shared between a consumer and a strategy.

    Exactly one of two modes:

    * **accounting mode** (attack): wraps a
      :class:`~repro.core.guesser.GuessAccounting`; ``remaining`` and
      ``seen`` mirror the accounting as the engine updates it.
    * **standalone mode** (plain sampling, or an unbound strategy):
      optionally capped by ``limit``; ``seen`` is a private set the
      consumer maintains via :meth:`note`.
    """

    def __init__(self, accounting=None, limit: Optional[int] = None) -> None:
        if accounting is not None and limit is not None:
            raise ValueError("pass either accounting or limit, not both")
        self._accounting = accounting
        self._limit = limit
        self._produced = 0
        self._seen: Set[str] = set()

    @property
    def remaining(self) -> Optional[int]:
        """Guesses still wanted, or ``None`` for an unbounded stream."""
        if self._accounting is not None:
            return self._accounting.remaining
        if self._limit is None:
            return None
        return max(0, self._limit - self._produced)

    @property
    def seen(self) -> Set[str]:
        """Every distinct guess produced so far (for collision breaking)."""
        if self._accounting is not None:
            return self._accounting.unique
        return self._seen

    @property
    def matched(self) -> Set[str]:
        """Test-set passwords matched so far (empty outside an attack)."""
        if self._accounting is not None:
            return self._accounting.matched
        return set()

    def next_count(self, batch_size: int) -> int:
        """The batch size a strategy should produce next.

        Matches the eager samplers' ``min(batch_size, remaining)`` so a
        strategy driven by the engine draws exactly the same RNG sequence
        as the legacy ``.attack()`` loops.
        """
        remaining = self.remaining
        if remaining is None:
            return batch_size
        return min(batch_size, remaining)

    def note(self, passwords: Iterable[str]) -> None:
        """Standalone-mode bookkeeping (no-op in accounting mode)."""
        if self._accounting is not None:
            return
        count = 0
        for password in passwords:
            count += 1
            if password:
                self._seen.add(password)
        self._produced += count

    def advance(self, count: int) -> None:
        """Standalone-mode progress without strings (no-op in accounting mode).

        The encoded companion of :meth:`note`: consumers that account
        batches themselves (e.g. the guess-bank builder packing encoded
        batches) advance the produced counter so ``remaining`` shrinks,
        without materializing passwords.  ``seen`` is left untouched --
        only strategies that never read it should be driven this way.
        """
        if self._accounting is not None:
            return
        if count < 0:
            raise ValueError("count must be non-negative")
        self._produced += int(count)


class GuessingStrategy(abc.ABC):
    """Protocol every guessing strategy implements.

    Required surface: :attr:`name`, :meth:`describe` and
    :meth:`iter_guesses`.  :meth:`bind` and :meth:`on_matches` have
    do-nothing defaults for strategies that ignore attack feedback.
    """

    #: Human-readable method name used in reports ("PassFlow-Dynamic+GS").
    name: str = "strategy"

    #: True when the guess stream is a pure function of ``(spec, seed,
    #: budget)``: no attack feedback (``on_matches``), no reads of
    #: ``context.seen``/``context.matched``.  Such streams can be
    #: materialized once into a guess bank and replayed bit-identically;
    #: feedback-driven strategies must keep ``False`` (the conservative
    #: default for third-party subclasses).
    replayable: bool = False

    def __init__(self, spec: Optional[str] = None) -> None:
        self._spec = spec
        self._context = AttackContext()

    # ------------------------------------------------------------------
    @property
    def context(self) -> AttackContext:
        """The currently bound context (standalone by default)."""
        return self._context

    def bind(self, context: Optional[AttackContext]) -> None:
        """Attach a live attack context (``None`` resets to standalone)."""
        self._context = context if context is not None else AttackContext()

    def describe(self) -> str:
        """The canonical spec string that rebuilds this strategy.

        ``build(strategy.describe())`` (with the same resources) produces
        an equivalently configured strategy.
        """
        if self._spec is None:
            raise NotImplementedError(f"{type(self).__name__} has no spec")
        return self._spec

    def on_matches(self, batch: GuessBatch, indices: Sequence[int]) -> None:
        """Attack feedback: ``batch.passwords[i]`` was a fresh test-set hit
        for every ``i`` in ``indices``.  Default: ignore."""

    def bind_shard(self, index: int, workers: int) -> None:
        """Tell the strategy which shard of a ``workers``-wide fleet it is.

        Called by the runtime (static and elastic schedules alike) right
        after the per-shard strategy instance is built, before any guesses
        are drawn.  Most strategies ignore it -- their per-shard RNG stream
        already decorrelates the fleet.  Position-deterministic replay
        strategies (the guess bank) use it to select the strided substream
        ``index, index + workers, index + 2*workers, ...`` of their global
        guess order, which is what makes sharded replay reports
        bit-identical to the serial run.  Default: ignore.
        """

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        """Lazily yield guess batches; may be infinite.

        Implementations should size batches with
        ``self.context.next_count(...)`` so attacks stop exactly on budget
        and reproduce the legacy eager loops' RNG sequence.
        """
        raise NotImplementedError

"""Streaming attack engine: drive any GuessingStrategy through accounting.

Replaces the eager ``.attack()`` methods that every sampler/baseline used
to hand-roll.  The engine

* consumes a strategy lazily (constant memory in the guess budget),
* emits Table II/III-style :class:`~repro.core.guesser.BudgetRow`
  checkpoints as each budget is crossed (:meth:`AttackEngine.stream`),
* supports early-stop predicates and batch caps,
* is resumable: an :class:`AttackState` from :meth:`AttackEngine.begin`
  can be driven in several ``run``/``stream`` calls (e.g. pause a sharded
  worker, inspect, continue).

``take`` is the attack-free companion: materialize N guesses from any
strategy (the ``repro sample`` code path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Set

import numpy as np

from repro.core.guesser import BudgetRow, GuessAccounting, GuessingReport
from repro.strategies.base import AttackContext, GuessingStrategy
from repro.utils.progress import ProgressReporter


def _close_iterator(iterator) -> None:
    """Release a guess stream; plain (non-generator) iterators lack close()."""
    close = getattr(iterator, "close", None)
    if close is not None:
        close()


@dataclass
class AttackState:
    """Resumable progress of one attack run."""

    accounting: GuessAccounting
    batches: int = 0
    interrupted: bool = False

    @property
    def done(self) -> bool:
        """True once the final guess budget has been reached."""
        return self.accounting.done

    @property
    def total_guesses(self) -> int:
        return self.accounting.total

    @property
    def matched(self) -> int:
        return len(self.accounting.matched)

    @property
    def match_fraction(self) -> float:
        if not self.accounting.test_set:
            return 0.0
        return len(self.accounting.matched) / len(self.accounting.test_set)

    def report(self, method: str) -> GuessingReport:
        """Finalize the accounting into a report (state stays usable)."""
        return self.accounting.report(method)


class AttackEngine:
    """Runs guessing attacks: any strategy, one accounting discipline."""

    def __init__(
        self,
        test_set: Set[str],
        budgets: Sequence[int],
        sample_cap: int = 16,
    ) -> None:
        self.test_set = set(test_set)
        self.budgets = list(budgets)
        self.sample_cap = sample_cap
        # validate eagerly so misconfiguration fails at construction
        # (empty accounting: avoids copying a possibly multi-million-entry
        # test set just for budget validation)
        GuessAccounting(set(), self.budgets, sample_cap)

    # ------------------------------------------------------------------
    def begin(self) -> AttackState:
        """A fresh resumable state for this engine's test set and budgets."""
        return AttackState(
            GuessAccounting(set(self.test_set), list(self.budgets), self.sample_cap)
        )

    def stream(
        self,
        strategy: GuessingStrategy,
        rng: np.random.Generator,
        state: AttackState,
        max_batches: Optional[int] = None,
        stop_when: Optional[Callable[[AttackState], bool]] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> Iterator[BudgetRow]:
        """Drive the strategy, yielding each budget checkpoint as crossed.

        Stops when the final budget is reached, the strategy exhausts
        itself, ``max_batches`` additional batches were consumed, or
        ``stop_when(state)`` turns true; the last two set
        ``state.interrupted`` so callers know the run can be resumed.
        A ``progress`` reporter receives a rate-limited update per batch
        (guesses/sec plus the running match count).
        """
        accounting = state.accounting
        if accounting.done:
            return
        state.interrupted = False
        batches_before = state.batches
        emitted = len(accounting.rows)
        strategy.bind(AttackContext(accounting=accounting))
        generator = strategy.iter_guesses(rng)
        stream_codec = None
        try:
            for batch in generator:
                observed_before = accounting.total
                if batch.passwords is None and accounting.supports_encoded:
                    # interned-id fast path: strings never materialize
                    stream_codec = batch.codec
                    new_matches = accounting.observe_encoded(
                        batch.index_matrix, batch.codec
                    )
                elif accounting.mode == "encoded":
                    # a string batch after encoded ones (e.g. a custom
                    # strategy's fallback round): re-encode with the
                    # stream's codec rather than crash on the mode lock
                    if stream_codec is None:
                        raise ValueError(
                            "cannot resume an encoded attack with a string "
                            "batch before any encoded batch supplies a codec"
                        )
                    try:
                        new_matches = accounting.observe_encoded(
                            stream_codec.indices_from_strings(batch.materialize()),
                            stream_codec,
                        )
                    except (KeyError, ValueError) as exc:
                        raise ValueError(
                            "strategy mixed an unencodable string batch into "
                            f"an encoded guess stream: {exc}"
                        ) from exc
                else:
                    new_matches = accounting.observe(batch.materialize())
                state.batches += 1
                if new_matches:
                    strategy.on_matches(batch, new_matches)
                if progress is not None:
                    progress.update(
                        accounting.total - observed_before,
                        extra=f"{state.matched} matched",
                    )
                    if accounting.done:
                        progress.close(extra=f"{state.matched} matched")
                while emitted < len(accounting.rows):
                    yield accounting.rows[emitted]
                    emitted += 1
                if accounting.done:
                    return
                if max_batches is not None and state.batches - batches_before >= max_batches:
                    state.interrupted = True
                    return
                if stop_when is not None and stop_when(state):
                    state.interrupted = True
                    return
            if progress is not None:
                # strategy ran dry before the final budget
                progress.close(extra=f"{state.matched} matched")
        finally:
            _close_iterator(generator)
            strategy.bind(None)

    def run(
        self,
        strategy: GuessingStrategy,
        rng: np.random.Generator,
        method: Optional[str] = None,
        state: Optional[AttackState] = None,
        max_batches: Optional[int] = None,
        stop_when: Optional[Callable[[AttackState], bool]] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> GuessingReport:
        """Run (or resume, via ``state``) an attack and return the report."""
        state = state if state is not None else self.begin()
        for _ in self.stream(
            strategy,
            rng,
            state,
            max_batches=max_batches,
            stop_when=stop_when,
            progress=progress,
        ):
            pass
        return state.report(method or strategy.name)


def take(
    strategy: GuessingStrategy,
    count: int,
    rng: np.random.Generator,
) -> List[str]:
    """Materialize up to ``count`` guesses from a strategy outside an attack.

    Returns fewer than ``count`` when the strategy's stream is finite
    (e.g. a wildcard-free conditional template yields a single guess).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return []
    context = AttackContext(limit=count)
    strategy.bind(context)
    out: List[str] = []
    generator = strategy.iter_guesses(rng)
    try:
        for batch in generator:
            passwords = batch.materialize()
            out.extend(passwords)
            context.note(passwords)
            if len(out) >= count:
                break
    finally:
        _close_iterator(generator)
        strategy.bind(None)
    return out[:count]

"""Functional operations on :class:`~repro.autograd.tensor.Tensor`.

These complement the method-style ops on ``Tensor`` with multi-input ops
(``concatenate``, ``stack``, ``where``, ``maximum``) and numerically careful
reductions (``logsumexp``, used by the penalized Gaussian-mixture prior of
Eq. 14 when evaluating latent densities).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.autograd.tensor import Arrayish, Tensor, as_tensor, unbroadcast


def exp(x: Arrayish) -> Tensor:
    return as_tensor(x).exp()


def log(x: Arrayish) -> Tensor:
    return as_tensor(x).log()


def tanh(x: Arrayish) -> Tensor:
    return as_tensor(x).tanh()


def sigmoid(x: Arrayish) -> Tensor:
    return as_tensor(x).sigmoid()


def relu(x: Arrayish) -> Tensor:
    return as_tensor(x).relu()


def softplus(x: Arrayish) -> Tensor:
    return as_tensor(x).softplus()


def sum(x: Arrayish, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return as_tensor(x).sum(axis=axis, keepdims=keepdims)


def mean(x: Arrayish, axis=None, keepdims: bool = False) -> Tensor:
    return as_tensor(x).mean(axis=axis, keepdims=keepdims)


def concatenate(tensors: Sequence[Arrayish], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Arrayish], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.split(grad, len(tensors), axis=axis)
        for tensor, slab in zip(tensors, slabs):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(slab, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: Union[np.ndarray, Tensor], a: Arrayish, b: Arrayish) -> Tensor:
    """Differentiable ``np.where``; ``condition`` carries no gradient."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    cond = cond.astype(bool)
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * ~cond, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def maximum(a: Arrayish, b: Arrayish) -> Tensor:
    """Differentiable elementwise maximum (ties send gradient to ``a``)."""
    a, b = as_tensor(a), as_tensor(b)
    take_a = a.data >= b.data
    out_data = np.where(take_a, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * take_a, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * ~take_a, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def logsumexp(x: Arrayish, axis=None, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` with exact gradients.

    Gradient is the softmax of ``x`` along ``axis``, computed against the
    shifted values so that large log-densities (as in the Eq. 14 mixture with
    small sigma) do not overflow.
    """
    x = as_tensor(x)
    shift = x.data.max(axis=axis, keepdims=True)
    shift = np.where(np.isfinite(shift), shift, 0.0)
    shifted = x.data - shift
    sum_exp = np.exp(shifted).sum(axis=axis, keepdims=True)
    out_full = np.log(sum_exp) + shift
    out_data = out_full if keepdims or axis is None and out_full.ndim == 0 else out_full
    if not keepdims and axis is not None:
        out_data = np.squeeze(out_full, axis=axis)
    elif not keepdims and axis is None:
        out_data = out_full.reshape(())

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g = grad
        if not keepdims and axis is not None:
            g = np.expand_dims(g, axis=axis)
        elif not keepdims and axis is None:
            g = np.asarray(grad).reshape((1,) * x.ndim)
        softmax = np.exp(shifted) / sum_exp
        x._accumulate(np.broadcast_to(g, x.shape) * softmax)

    return Tensor._make(out_data, (x,), backward)

"""Functional operations on :class:`~repro.autograd.tensor.Tensor`.

These complement the method-style ops on ``Tensor`` with multi-input ops
(``concatenate``, ``stack``, ``where``, ``maximum``) and numerically careful
reductions (``logsumexp``, used by the penalized Gaussian-mixture prior of
Eq. 14 when evaluating latent densities).

The ``fused_*`` family collapses a whole bijector transform -- previously a
dozen tape nodes each re-walking the batch -- into one or two nodes with
closed-form backwards, dispatched through the active kernel backend
(:mod:`repro.kernels`).  Forward values are bit-identical to the composed
graphs they replace (the kernel contract); gradients are the same closed
forms the chain rule would compose, accumulated in one pass.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro import kernels
from repro.autograd.tensor import (
    Arrayish,
    Tensor,
    as_tensor,
    is_grad_enabled,
    unbroadcast,
)


def exp(x: Arrayish) -> Tensor:
    return as_tensor(x).exp()


def log(x: Arrayish) -> Tensor:
    return as_tensor(x).log()


def tanh(x: Arrayish) -> Tensor:
    return as_tensor(x).tanh()


def sigmoid(x: Arrayish) -> Tensor:
    return as_tensor(x).sigmoid()


def relu(x: Arrayish) -> Tensor:
    return as_tensor(x).relu()


def softplus(x: Arrayish) -> Tensor:
    return as_tensor(x).softplus()


def sum(x: Arrayish, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return as_tensor(x).sum(axis=axis, keepdims=keepdims)


def mean(x: Arrayish, axis=None, keepdims: bool = False) -> Tensor:
    return as_tensor(x).mean(axis=axis, keepdims=keepdims)


def concatenate(tensors: Sequence[Arrayish], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Arrayish], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.split(grad, len(tensors), axis=axis)
        for tensor, slab in zip(tensors, slabs):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(slab, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: Union[np.ndarray, Tensor], a: Arrayish, b: Arrayish) -> Tensor:
    """Differentiable ``np.where``; ``condition`` carries no gradient."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    cond = cond.astype(bool)
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * ~cond, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def maximum(a: Arrayish, b: Arrayish) -> Tensor:
    """Differentiable elementwise maximum (ties send gradient to ``a``)."""
    a, b = as_tensor(a), as_tensor(b)
    take_a = a.data >= b.data
    out_data = np.where(take_a, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * take_a, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * ~take_a, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def logsumexp(x: Arrayish, axis=None, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` with exact gradients.

    Gradient is the softmax of ``x`` along ``axis``, computed against the
    shifted values so that large log-densities (as in the Eq. 14 mixture with
    small sigma) do not overflow.
    """
    x = as_tensor(x)
    shift = x.data.max(axis=axis, keepdims=True)
    shift = np.where(np.isfinite(shift), shift, 0.0)
    shifted = x.data - shift
    sum_exp = np.exp(shifted).sum(axis=axis, keepdims=True)
    out_full = np.log(sum_exp) + shift
    out_data = out_full if keepdims or axis is None and out_full.ndim == 0 else out_full
    if not keepdims and axis is not None:
        out_data = np.squeeze(out_full, axis=axis)
    elif not keepdims and axis is None:
        out_data = out_full.reshape(())

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g = grad
        if not keepdims and axis is not None:
            g = np.expand_dims(g, axis=axis)
        elif not keepdims and axis is None:
            g = np.asarray(grad).reshape((1,) * x.ndim)
        softmax = np.exp(shifted) / sum_exp
        x._accumulate(np.broadcast_to(g, x.shape) * softmax)

    return Tensor._make(out_data, (x,), backward)


# ----------------------------------------------------------------------
# fused bijector transforms (kernel-dispatched, closed-form backwards)
# ----------------------------------------------------------------------
def fused_affine_coupling(
    x: Arrayish,
    raw_scale: Arrayish,
    translate: Arrayish,
    mask: np.ndarray,
    inv_mask: np.ndarray,
    clamp: float,
    masked_data: Optional[np.ndarray] = None,
) -> Tuple[Tensor, Tensor]:
    """The affine coupling combine ``z = b*x + (1-b)(x e^s + t)`` as one op.

    ``raw_scale`` is the conditioner output *before* the
    ``clamp * tanh(. / clamp)`` squash -- the squash happens inside the
    kernel.  Returns ``(z, log_det)``; gradients flow to ``x``,
    ``raw_scale`` and ``translate`` (the masks are constants).
    ``masked_data`` lets callers pass the already-computed ``x * b``.
    """
    x, raw_scale, translate = as_tensor(x), as_tensor(raw_scale), as_tensor(translate)
    backend = kernels.active()
    if masked_data is None:
        masked_data = x.data * mask
    needs_grad = is_grad_enabled() and (
        x.requires_grad or raw_scale.requires_grad or translate.requires_grad
    )
    if not needs_grad:
        z, log_det = backend.coupling_forward(
            x.data, masked_data, inv_mask, raw_scale.data, translate.data, clamp
        )
        return Tensor(z), Tensor(log_det)
    z_data, ld_data, exp_s, dtanh = backend.coupling_train_forward(
        x.data, masked_data, inv_mask, raw_scale.data, translate.data, clamp
    )

    def backward_z(grad: np.ndarray) -> None:
        gx, graw, gt = backend.coupling_backward_z(grad, x.data, mask, inv_mask, exp_s, dtanh)
        if x.requires_grad:
            x._accumulate(gx)
        if raw_scale.requires_grad:
            raw_scale._accumulate(graw)
        if translate.requires_grad:
            translate._accumulate(gt)

    def backward_log_det(grad: np.ndarray) -> None:
        if raw_scale.requires_grad:
            raw_scale._accumulate(backend.coupling_backward_log_det(grad, inv_mask, dtanh))

    z = Tensor._make(z_data, (x, raw_scale, translate), backward_z)
    log_det = Tensor._make(ld_data, (raw_scale,), backward_log_det)
    return z, log_det


def fused_logit(x: Arrayish, alpha: float) -> Tuple[Tensor, Tensor]:
    """The logit preprocessing bijector ``y = logit(a + (1-2a) x)`` as one op.

    Returns ``(y, log_det)`` with gradients flowing to ``x`` from both
    outputs.
    """
    x = as_tensor(x)
    backend = kernels.active()
    if not (is_grad_enabled() and x.requires_grad):
        y, log_det = backend.logit_forward(x.data, alpha)
        return Tensor(y), Tensor(log_det)
    y_data, ld_data, p = backend.logit_train_forward(x.data, alpha)

    def backward_y(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(backend.logit_backward_y(grad, p, alpha))

    def backward_log_det(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(backend.logit_backward_log_det(grad, p, alpha))

    y = Tensor._make(y_data, (x,), backward_y)
    log_det = Tensor._make(ld_data, (x,), backward_log_det)
    return y, log_det


def fused_actnorm(x: Arrayish, bias: Tensor, log_scale: Tensor) -> Tuple[Tensor, Tensor]:
    """The actnorm affine ``z = (x - bias) e^{log_scale}`` as one op.

    ``bias`` and ``log_scale`` are the layer's parameter tensors; gradients
    accumulate into them directly (the per-batch reductions happen inside
    the kernel instead of through broadcast-sum tape nodes).
    """
    x = as_tensor(x)
    backend = kernels.active()
    needs_grad = is_grad_enabled() and (
        x.requires_grad or bias.requires_grad or log_scale.requires_grad
    )
    if not needs_grad:
        z, log_det = backend.actnorm_forward(x.data, bias.data, log_scale.data)
        return Tensor(z), Tensor(log_det)
    z_data, ld_data, exp_ls = backend.actnorm_train_forward(x.data, bias.data, log_scale.data)

    def backward_z(grad: np.ndarray) -> None:
        gx, gbias, gls = backend.actnorm_backward_z(grad, z_data, exp_ls)
        if x.requires_grad:
            x._accumulate(gx)
        if bias.requires_grad:
            bias._accumulate(gbias)
        if log_scale.requires_grad:
            log_scale._accumulate(gls)

    def backward_log_det(grad: np.ndarray) -> None:
        if log_scale.requires_grad:
            log_scale._accumulate(np.full(log_scale.data.shape, grad.sum()))

    z = Tensor._make(z_data, (x, bias, log_scale), backward_z)
    log_det = Tensor._make(ld_data, (log_scale,), backward_log_det)
    return z, log_det

"""Reverse-mode automatic differentiation over numpy arrays.

This subpackage is the lowest-level substrate of the PassFlow reproduction.
The paper trains its flow networks with exact negative log-likelihood
(Eqs. 5-8); computing those gradients requires a full autodiff engine, which
the original work obtained from PyTorch.  Nothing beyond numpy is available
in this environment, so we implement a compact tape-based reverse-mode engine
with broadcasting-aware gradients.

Public surface:

``Tensor``
    The differentiable array type.  Supports arithmetic, matmul, reductions,
    elementwise nonlinearities, slicing and reshaping.
``no_grad`` / ``is_grad_enabled`` / ``set_grad_enabled``
    Context manager and toggles for disabling graph construction (used on
    every sampling/inference path for speed).
``concatenate``, ``stack``, ``where``, ``logsumexp`` ...
    Functional ops in :mod:`repro.autograd.ops`.
``numeric_gradient``, ``check_gradients``
    Finite-difference utilities in :mod:`repro.autograd.grad_check` used by
    the test-suite to validate every op.
"""

from repro.autograd.tensor import (
    Tensor,
    as_tensor,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)
from repro.autograd.ops import (
    concatenate,
    exp,
    fused_actnorm,
    fused_affine_coupling,
    fused_logit,
    log,
    logsumexp,
    maximum,
    mean,
    relu,
    sigmoid,
    softplus,
    stack,
    sum as tensor_sum,
    tanh,
    where,
)
from repro.autograd.grad_check import check_gradients, numeric_gradient

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "concatenate",
    "stack",
    "where",
    "logsumexp",
    "exp",
    "log",
    "tanh",
    "relu",
    "sigmoid",
    "softplus",
    "maximum",
    "mean",
    "tensor_sum",
    "fused_affine_coupling",
    "fused_logit",
    "fused_actnorm",
    "numeric_gradient",
    "check_gradients",
]

"""Finite-difference gradient checking.

Used pervasively by the test-suite: every op in the engine and every layer in
:mod:`repro.nn` is validated against central finite differences, which is the
only way to trust a hand-rolled autodiff engine enough to train the flows of
Section III on it.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numeric_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int = 0,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    ``fn`` receives :class:`Tensor` arguments and must return a Tensor; the
    scalar objective is the sum of its elements, matching the convention of
    calling ``out.sum().backward()``.
    """
    base = [np.asarray(x, dtype=np.float64) for x in inputs]
    target = base[wrt]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = target[idx]

        target[idx] = original + eps
        plus = float(fn(*[Tensor(b) for b in base]).sum().item())

        target[idx] = original - eps
        minus = float(fn(*[Tensor(b) for b in base]).sum().item())

        target[idx] = original
        grad[idx] = (plus - minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients match finite differences for every input.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    tensors = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    out.sum().backward()

    for i, tensor in enumerate(tensors):
        numeric = numeric_gradient(fn, [t.data for t in tensors], wrt=i, eps=eps)
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )

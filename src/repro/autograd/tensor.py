"""The :class:`Tensor` type: a numpy array with a gradient tape.

Design notes
------------
The engine is a classic dynamic tape.  Every differentiable operation
produces a new :class:`Tensor` holding

* ``data``      -- the forward value (always ``np.float64``),
* ``_parents``  -- the tensors it was computed from,
* ``_backward`` -- a closure that, given the output gradient accumulated in
  ``self.grad``, adds the correct contributions to each parent's ``grad``.

``Tensor.backward()`` topologically sorts the graph and runs the closures in
reverse order.  Broadcasting is handled by :func:`unbroadcast`, which sums
gradient contributions back down to the parent's shape.

Graph construction can be disabled globally (``no_grad``) in which case all
operations degrade to plain numpy computations wrapped in graph-free tensors;
this is what every sampling / password-generation path uses, making inference
roughly as fast as hand-written numpy.
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

Arrayish = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the tape."""
    return _GRAD_ENABLED


def set_grad_enabled(enabled: bool) -> bool:
    """Set the global tape toggle; returns the previous value."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    previous = set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting can (a) prepend dimensions and (b) stretch size-1 axes.
    The adjoint of broadcasting is summation over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # (a) remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # (b) collapse stretched axes.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable numpy array.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        Whether this tensor is a leaf that should accumulate gradients.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")
    __array_priority__ = 100.0  # make numpy defer to our __r*__ operators

    def __init__(self, data: Arrayish, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = ()
        self._backward = None
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a graph-free view of this tensor's value."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward,
    ) -> "Tensor":
        """Create an interior node, or a free tensor when the tape is off."""
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        """Reset accumulated gradient."""
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        ``grad`` defaults to ones (scalar outputs are the common case in
        training: the mean NLL of Eq. 7).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"backward grad shape {grad.shape} != tensor shape {self.data.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayish) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: Arrayish) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: Arrayish) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # numerically stable logistic
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
            np.exp(np.clip(self.data, -500, 500))
            / (1.0 + np.exp(np.clip(self.data, -500, 500))),
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def softplus(self) -> "Tensor":
        """log(1 + exp(x)) computed stably."""
        out_data = np.logaddexp(0.0, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                sig = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500)))
                self._accumulate(grad * sig)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through only inside the range."""
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = self.data == expanded
            # split gradient evenly among ties, matching subgradient convention
            counts = mask.sum(axis=axis if axis is not None else None, keepdims=True)
            self._accumulate(mask * g / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # comparison operators return plain boolean arrays (no gradients flow)
    def __gt__(self, other: Arrayish) -> np.ndarray:
        return self.data > _raw(other)

    def __lt__(self, other: Arrayish) -> np.ndarray:
        return self.data < _raw(other)

    def __ge__(self, other: Arrayish) -> np.ndarray:
        return self.data >= _raw(other)

    def __le__(self, other: Arrayish) -> np.ndarray:
        return self.data <= _raw(other)


def _raw(value: Arrayish) -> np.ndarray:
    return value.data if isinstance(value, Tensor) else np.asarray(value)


def as_tensor(value: Arrayish) -> Tensor:
    """Coerce ``value`` into a (non-leaf, grad-free) :class:`Tensor`."""
    return value if isinstance(value, Tensor) else Tensor(value)

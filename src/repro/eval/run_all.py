"""Run every paper experiment and emit a consolidated report.

Usage::

    python -m repro.eval.run_all                 # quick profile, stdout
    REPRO_BENCH_PROFILE=full python -m repro.eval.run_all
    python -m repro.eval.run_all --markdown out.md

The consolidated markdown output is what EXPERIMENTS.md is generated from.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.eval.experiments import (
    fig2,
    fig3,
    fig4,
    fig5,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.eval.harness import EvalContext, settings_from_env
from repro.eval.reporting import ExperimentResult

DRIVERS = (table1, table2, table3, table4, table5, table6, fig2, fig3, fig4, fig5)


def run_all(ctx: EvalContext) -> List[ExperimentResult]:
    """Execute every driver against one shared context."""
    results = []
    for driver in DRIVERS:
        start = time.monotonic()
        result = driver.run(ctx)
        result.notes["elapsed_seconds"] = round(time.monotonic() - start, 1)
        results.append(result)
    return results


def render_markdown(ctx: EvalContext, results: List[ExperimentResult]) -> str:
    lines = [
        f"# Experiment results (profile: {ctx.settings.name})",
        "",
        f"- corpus: {ctx.settings.corpus_size:,} synthetic passwords",
        f"- PassFlow train subset: {ctx.settings.train_size:,}"
        f" / baseline train: {ctx.settings.baseline_train_size:,}",
        f"- cleaned test set: {len(ctx.test_set):,} targets",
        f"- guess budgets: {ctx.settings.guess_budgets}",
        "",
    ]
    for result in results:
        lines.append(f"## {result.name}")
        lines.append("")
        lines.append(result.markdown())
        interesting = {
            k: v
            for k, v in result.notes.items()
            if isinstance(v, (int, float, str, tuple, dict)) and k != "elapsed_seconds"
        }
        if interesting:
            lines.append("")
            for key, value in interesting.items():
                lines.append(f"- {key}: {value}")
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--markdown", help="also write a markdown report to this path")
    args = parser.parse_args(argv)

    ctx = EvalContext(settings_from_env("quick"))
    print(f"profile: {ctx.settings.name}; test set {len(ctx.test_set):,} targets")
    results = run_all(ctx)
    for result in results:
        print()
        print(result)
        print(f"({result.notes['elapsed_seconds']}s)")
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(render_markdown(ctx, results))
        print(f"\nmarkdown report written to {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

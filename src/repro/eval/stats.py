"""Multi-seed attack statistics.

At reduced scale single-run match counts carry substantial sampling noise;
experiments that compare samplers should aggregate over independent seeds.
This module provides the aggregation used by the Fig. 5 driver and the
ablation benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.core.guesser import GuessingReport


@dataclass
class SeriesStats:
    """Mean/std/extremes of one metric across seeds, per budget."""

    budgets: List[int]
    mean: Dict[int, float]
    std: Dict[int, float]
    minimum: Dict[int, float]
    maximum: Dict[int, float]
    runs: int

    def mean_at(self, budget: int) -> float:
        return self.mean[budget]

    def interval_at(self, budget: int, z: float = 1.96) -> tuple:
        """Normal-approximation confidence interval for the mean."""
        half = z * self.std[budget] / math.sqrt(self.runs) if self.runs > 1 else 0.0
        return (self.mean[budget] - half, self.mean[budget] + half)


def aggregate_matched(reports: Sequence[GuessingReport]) -> SeriesStats:
    """Aggregate matched counts of repeated runs of the same attack."""
    return _aggregate(reports, lambda row: float(row.matched))


def aggregate_unique(reports: Sequence[GuessingReport]) -> SeriesStats:
    """Aggregate unique counts of repeated runs of the same attack."""
    return _aggregate(reports, lambda row: float(row.unique))


def _aggregate(reports: Sequence[GuessingReport], metric: Callable) -> SeriesStats:
    if not reports:
        raise ValueError("no reports to aggregate")
    budgets = [row.guesses for row in reports[0].rows]
    for report in reports[1:]:
        if [row.guesses for row in report.rows] != budgets:
            raise ValueError("reports disagree on budgets")
    mean: Dict[int, float] = {}
    std: Dict[int, float] = {}
    minimum: Dict[int, float] = {}
    maximum: Dict[int, float] = {}
    for budget in budgets:
        values = [metric(report.row_at(budget)) for report in reports]
        n = len(values)
        mu = sum(values) / n
        var = sum((v - mu) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
        mean[budget] = mu
        std[budget] = math.sqrt(var)
        minimum[budget] = min(values)
        maximum[budget] = max(values)
    return SeriesStats(
        budgets=budgets, mean=mean, std=std, minimum=minimum, maximum=maximum,
        runs=len(reports),
    )


def run_seeds(
    attack_factory: Callable[[int], GuessingReport], seeds: int
) -> List[GuessingReport]:
    """Run ``attack_factory(seed)`` for seeds 0..n-1 and collect reports."""
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    return [attack_factory(seed) for seed in range(seeds)]

"""Rendering experiment results as aligned text / markdown tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Monospace-aligned table (the paper-style console output)."""
    if not headers:
        raise ValueError("headers must not be empty")
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_markdown(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """GitHub-markdown table (used when writing EXPERIMENTS.md)."""
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    sep = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(_fmt(v) for v in row) + " |" for row in rows]
    return "\n".join([head, sep] + body)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass
class ExperimentResult:
    """Uniform container every experiment driver returns."""

    name: str
    headers: List[str]
    rows: List[List[Any]]
    notes: Dict[str, Any] = field(default_factory=dict)

    def table(self) -> str:
        return format_table(self.headers, self.rows)

    def markdown(self) -> str:
        return format_markdown(self.headers, self.rows)

    def __str__(self) -> str:
        return f"== {self.name} ==\n{self.table()}"

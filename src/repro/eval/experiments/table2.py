"""Table II: % of test-set passwords matched, per method per guess budget.

Paper reference values (RockYou, 1.94M-target test set):

    Method                  10^4   10^5   10^6   10^7   10^8
    PassGAN                 0.01   0.05   0.38   2.04   6.63
    GAN (Pasquini et al.)   -      -      -      -      9.51
    CWAE                    0.00   0.00   0.05   0.42   3.06
    PassFlow-Static         0.00   0.01   0.10   0.82   3.95
    PassFlow-Dynamic        0.01   0.12   0.59   2.60   8.08
    PassFlow-Dynamic+GS     0.01   0.13   0.78   3.37   9.92

Our scaled reproduction targets the *ordering*:
Static < Dynamic < Dynamic+GS, with Dynamic+GS leading overall.
"""

from __future__ import annotations

from repro.eval.experiments.common import METHODS, collect_reports
from repro.eval.harness import EvalContext
from repro.eval.reporting import ExperimentResult


def run(ctx: EvalContext) -> ExperimentResult:
    """Regenerate Table II at the context's scale."""
    reports = collect_reports(ctx)
    budgets = ctx.settings.guess_budgets
    headers = ["Method"] + [f"{b:,} guesses (%)" for b in budgets]
    rows = []
    for method in METHODS:
        report = reports[method]
        rows.append([method] + [round(report.row_at(b).match_percent, 2) for b in budgets])
    non_matched = reports["PassFlow-Dynamic+GS"].non_matched_samples
    return ExperimentResult(
        name="Table II: matched passwords (%)",
        headers=headers,
        rows=rows,
        notes={
            "test_size": reports[METHODS[0]].test_size,
            "non_matched_samples": non_matched,  # the Table IV data
        },
    )


def main() -> None:
    ctx = EvalContext()
    result = run(ctx)
    print(result)
    print("\nTable IV (non-matched samples from PassFlow-Dynamic+GS):")
    print("  " + "  ".join(result.notes["non_matched_samples"]))


if __name__ == "__main__":
    main()

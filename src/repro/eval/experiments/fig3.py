"""Fig. 3: latent interpolation between "jimmy91" and "123456".

The paper walks the latent line between the two passwords and shows the
decoded intermediate strings; most retain human-password structure and
consecutive samples are similar.  We report the path plus two quantitative
proxies: plausibility rate of intermediates and mean consecutive edit
distance.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.neighborhood import edit_distance
from repro.core.interpolation import interpolate
from repro.eval.harness import EvalContext
from repro.eval.metrics import plausibility_rate
from repro.eval.reporting import ExperimentResult

START = "jimmy91"
TARGET = "123456"


def run(ctx: EvalContext, start: str = START, target: str = TARGET, steps: int = 10) -> ExperimentResult:
    """Regenerate the Fig. 3 interpolation path."""
    model = ctx.passflow()
    path = interpolate(model, start, target, steps=steps)
    consecutive = [edit_distance(a, b) for a, b in zip(path[:-1], path[1:])]
    rows = [[j, password] for j, password in enumerate(path)]
    return ExperimentResult(
        name=f"Fig. 3: interpolation {start!r} -> {target!r}",
        headers=["Step", "Password"],
        rows=rows,
        notes={
            "plausibility": plausibility_rate(path),
            "mean_consecutive_edit_distance": float(np.mean(consecutive)),
            "endpoints_exact": (path[0] == start, path[-1] == target),
        },
    )


def main() -> None:
    result = run(EvalContext())
    print(result)
    print(f"\nplausibility={result.notes['plausibility']:.2f} "
          f"consecutive edit distance={result.notes['mean_consecutive_edit_distance']:.2f}")


if __name__ == "__main__":
    main()

"""Fig. 4: marginal performance improvement vs training-set size.

The paper trains PassFlow on increasing subset sizes (50K..2M of RockYou),
evaluates matches on the common test set, and plots improvement relative to
the 50K baseline: a sharp rise followed by a plateau ("flow-based models
generalize exceptionally well with little data").  We sweep the scaled
sizes of the active profile and report the same statistic.
"""

from __future__ import annotations

from repro.eval.experiments.common import dynamic_spec
from repro.eval.harness import EvalContext
from repro.eval.reporting import ExperimentResult
from repro.strategies import AttackEngine, build


def run(ctx: EvalContext) -> ExperimentResult:
    """Regenerate the Fig. 4 sweep at the context's scale.

    The attack arm is Dynamic+GS (the paper's strongest sampler): at
    reduced scale static sampling yields single-digit match counts that
    drown the train-size signal in noise.
    """
    sizes = list(ctx.settings.train_size_sweep)
    budget = ctx.settings.guess_budgets[-1]
    matches = {}
    for size in sizes:
        model = ctx.passflow_for_train_size(size)
        strategy = build(dynamic_spec(ctx, smoothed=True), model=model)
        report = AttackEngine(ctx.test_set, [budget]).run(
            strategy, ctx.attack_rng(f"fig4-{size}"), method=f"PassFlow-n{size}"
        )
        matches[size] = report.row_at(budget).matched
    baseline = max(matches[sizes[0]], 1)
    rows = []
    for size in sizes:
        improvement = 100.0 * (matches[size] - matches[sizes[0]]) / baseline
        rows.append([size, matches[size], round(improvement, 1)])
    return ExperimentResult(
        name=f"Fig. 4: marginal improvement vs train size ({budget:,} guesses)",
        headers=["Train size", "Matched", "Improvement vs smallest (%)"],
        rows=rows,
        notes={"budget": budget, "baseline_size": sizes[0]},
    )


def main() -> None:
    print(run(EvalContext()))


if __name__ == "__main__":
    main()

"""Table V: bounded neighbourhood sampling around a pivot password.

The paper samples around "jimmy91" with sigma in {0.05, 0.08, 0.10, 0.15}
and shows the first 10 unique decodings per sigma; structural similarity to
the pivot degrades gracefully as sigma grows.  We report the samples plus
the mean edit distance per sigma (the quantitative version of that claim).
"""

from __future__ import annotations

from repro.analysis.neighborhood import mean_edit_distance, sigma_sweep
from repro.eval.harness import EvalContext
from repro.eval.reporting import ExperimentResult

PIVOT = "jimmy91"
SIGMAS = (0.05, 0.08, 0.10, 0.15)


def run(ctx: EvalContext, pivot: str = PIVOT) -> ExperimentResult:
    """Regenerate Table V (plus edit-distance summary row)."""
    model = ctx.passflow()
    sweep = sigma_sweep(model, pivot, SIGMAS, ctx.attack_rng("table5"), unique_count=10)
    headers = [f"sigma = {s}" for s in SIGMAS]
    depth = max(len(v) for v in sweep.values())
    rows = []
    for i in range(depth):
        rows.append([sweep[s][i] if i < len(sweep[s]) else "" for s in SIGMAS])
    distances = {
        s: round(mean_edit_distance(pivot, sweep[s]), 2) if sweep[s] else float("nan")
        for s in SIGMAS
    }
    rows.append([f"(mean edit dist {distances[s]})" for s in SIGMAS])
    return ExperimentResult(
        name=f"Table V: neighbourhood samples around {pivot!r}",
        headers=headers,
        rows=rows,
        notes={"pivot": pivot, "mean_edit_distance": distances},
    )


def main() -> None:
    print(run(EvalContext()))


if __name__ == "__main__":
    main()

"""Fig. 2: t-SNE projection of latent neighbourhoods.

The paper projects latent points sampled around "jaram" and "royal" over
the learned latent space and observes that syntactically similar passwords
occupy spatially correlated regions.  We embed pivot neighbourhoods plus a
background cloud with our exact t-SNE and report the cluster-separation
ratio (inter/intra centroid distances) -- values well above 1 reproduce the
figure's visual claim.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.neighborhood import neighborhood_cloud
from repro.analysis.tsne import TSNE
from repro.eval.harness import EvalContext
from repro.eval.metrics import cluster_separation
from repro.eval.reporting import ExperimentResult

PIVOTS = ("jaram", "royal")


def run(
    ctx: EvalContext,
    pivots=PIVOTS,
    count_per_pivot: int = 60,
    background: int = 120,
    sigma: float = 0.08,
) -> ExperimentResult:
    """Regenerate the Fig. 2 embedding and its separation statistic."""
    model = ctx.passflow()
    rng = ctx.attack_rng("fig2")
    latents, labels, decoded = neighborhood_cloud(model, list(pivots), sigma, count_per_pivot, rng)
    # background: global prior samples (the light-blue cloud of the figure)
    background_latents = model.sample_latents(background, rng=rng)
    all_latents = np.concatenate([latents, background_latents], axis=0)
    all_labels = np.concatenate([labels, np.full(background, len(pivots))])

    perplexity = min(30.0, (len(all_latents) - 1) / 3.0)
    embedding = TSNE(perplexity=perplexity, n_iter=300, seed=0).fit_transform(all_latents)
    separation_latent = cluster_separation(latents, labels)
    separation_embedded = cluster_separation(embedding[: len(labels)], labels)

    rows = []
    for index, pivot in enumerate(pivots):
        members = [d for d, lab in zip(decoded, labels) if lab == index]
        centroid = embedding[: len(labels)][labels == index].mean(axis=0)
        rows.append(
            [pivot, len(members), f"({centroid[0]:.1f}, {centroid[1]:.1f})", "  ".join(members[:6])]
        )
    return ExperimentResult(
        name="Fig. 2: t-SNE projection of latent neighbourhoods",
        headers=["Pivot", "Points", "Embedded centroid", "Example decodings"],
        rows=rows,
        notes={
            "separation_latent": separation_latent,
            "separation_embedded": separation_embedded,
            "embedding": embedding,
            "labels": all_labels,
        },
    )


def main() -> None:
    result = run(EvalContext())
    print(result)
    print(
        f"\ncluster separation: latent={result.notes['separation_latent']:.2f} "
        f"embedded={result.notes['separation_embedded']:.2f}"
    )


if __name__ == "__main__":
    main()

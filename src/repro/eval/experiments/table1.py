"""Table I: the Dynamic Sampling parameter schedule.

Table I is configuration, not measurement; this driver renders the paper's
exact alpha/sigma/gamma mapping (carried by
:data:`repro.core.dynamic.PAPER_SCHEDULE`) together with the scaled values
the active profile actually uses, so reports are self-describing.
"""

from __future__ import annotations

from repro.core.dynamic import PAPER_SCHEDULE
from repro.eval.harness import EvalContext
from repro.eval.reporting import ExperimentResult


def run(ctx: EvalContext) -> ExperimentResult:
    """Render Table I plus this context's scaled parameters."""
    rows = []
    for budget in sorted(PAPER_SCHEDULE):
        entry = PAPER_SCHEDULE[budget]
        rows.append([f"10^{len(str(budget)) - 1}", entry["alpha"],
                     entry["sigma"], entry["gamma"]])
    rows.append([
        f"(this profile: {max(ctx.settings.guess_budgets):,})",
        ctx.DYNAMIC_ALPHA,
        ctx.DYNAMIC_SIGMA,
        ctx.DYNAMIC_GAMMA,
    ])
    return ExperimentResult(
        name="Table I: dynamic sampling parameters",
        headers=["Guesses", "alpha", "sigma", "gamma"],
        rows=rows,
        notes={"profile": ctx.settings.name},
    )


def main() -> None:
    print(run(EvalContext()))


if __name__ == "__main__":
    main()

"""Table VI: masking-strategy comparison (Sec. V-C).

Trains three PassFlow models identical except for the coupling-layer mask
(horizontal, char-run-2, char-run-1) and compares static-sampling matches.
Paper finding: char-run-1 wins at every budget.
"""

from __future__ import annotations

from repro.eval.experiments.common import static_spec
from repro.eval.harness import EvalContext
from repro.eval.reporting import ExperimentResult

STRATEGIES = ("horizontal", "char-run-2", "char-run-1")


def run(ctx: EvalContext) -> ExperimentResult:
    """Regenerate Table VI at the context's scale."""
    budgets = ctx.settings.guess_budgets
    results = {}
    for strategy in STRATEGIES:
        results[strategy] = ctx.run_attack(
            static_spec(ctx),
            f"table6-{strategy}",
            method=f"PassFlow-{strategy}",
            model=ctx.passflow(mask_strategy=strategy),
        )
    headers = ["Guesses"] + [f"{s} matched" for s in STRATEGIES]
    rows = []
    for budget in budgets:
        rows.append([budget] + [results[s].row_at(budget).matched for s in STRATEGIES])
    nll = {s: round(ctx.passflow(s).history.nll[-1], 3) for s in STRATEGIES if ctx.passflow(s).history.nll}
    return ExperimentResult(
        name="Table VI: masking strategies (matched passwords)",
        headers=headers,
        rows=rows,
        notes={"final_nll": nll},
    )


def main() -> None:
    print(run(EvalContext()))


if __name__ == "__main__":
    main()

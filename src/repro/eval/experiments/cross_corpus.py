"""Scenario matrix: spec x corpus-pair x policy cross-corpus attacks.

The paper evaluates in-distribution trawling only; deployed guessing
models face *transfer*: train on one leak, attack another, often behind a
composition policy.  This driver runs every cell of a
(spec, target-corpus, policy) matrix through the shared harness --
training always happens on the ``default`` corpus, the attacked test
slice comes from the cell's target corpus variant
(:data:`repro.eval.harness.CORPUS_VARIANTS`), and the cell's policy
wraps the spec (``policy(<spec>)?...``) while filtering the test set to
the conformant slice.

Determinism: the attack RNG label depends on the (spec, policy) pair but
*not* the target corpus, so every cell of a row attacks with the exact
same guess stream -- the transfer delta isolates the target-distribution
shift.  For a fixed (profile seed, spec, policy, workers, schedule,
executor) the whole report dict is bit-identical across runs and
executors.

Report schema (``schema`` = ``cross-corpus-matrix/v1``)::

    {
      "schema": "cross-corpus-matrix/v1",
      "profile": "tiny", "seed": 7, "budgets": [...],
      "train_corpus": "default",
      "corpora": [...], "policies": {name: query-or-null, ...},
      "cells": [
        {"label", "base_spec", "spec", "policy", "policy_query",
         "train_corpus", "target_corpus", "test_size", "rows",
         "match_percent", "baseline_match_percent", "transfer_delta"},
        ...
      ]
    }

``transfer_delta`` is the cell's final match % minus the same
(spec, policy) row's in-corpus (``default``-target) match % -- negative
values are the transfer degradation the scenario measures.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.eval.harness import (
    CORPUS_VARIANTS,
    DEFAULT_CACHE_DIR,
    BenchmarkSettings,
    EvalContext,
    settings_from_env,
)
from repro.eval.reporting import ExperimentResult
from repro.strategies import parse_spec

SCHEMA = "cross-corpus-matrix/v1"

#: Default matrix axes: corpus-trained baselines (no flow training beyond
#: the shared dataset encoder), all corpus variants, no-policy vs a
#: classes+length policy.
DEFAULT_SPECS: Dict[str, str] = {
    "markov3": "markov:3",
    "pcfg": "pcfg",
}
DEFAULT_POLICIES: Dict[str, Optional[str]] = {
    "none": None,
    "ld6": "min_len=6&classes=ld",
}


def run_matrix(
    specs: Optional[Mapping[str, str]] = None,
    corpora: Optional[Sequence[str]] = None,
    policies: Optional[Mapping[str, Optional[str]]] = None,
    settings: Optional[BenchmarkSettings] = None,
    cache_dir: Path | str = DEFAULT_CACHE_DIR,
    workers: Optional[int] = None,
    schedule: Optional[str] = None,
    executor: Optional[str] = None,
    bank_dir: Optional[Path | str] = None,
) -> Dict[str, object]:
    """Run every (spec, target-corpus, policy) cell; return the report dict.

    ``corpora`` lists target-corpus variant names; the ``default``
    (in-corpus) target is always included -- it is every row's transfer
    baseline.  All contexts share ``cache_dir``, so the trained encoder
    model and any guess banks are built once and reused across cells.
    """
    specs = dict(specs or DEFAULT_SPECS)
    policies = dict(policies or DEFAULT_POLICIES)
    corpora = list(dict.fromkeys(["default", *(corpora or CORPUS_VARIANTS)]))
    settings = settings or settings_from_env()

    contexts: Dict[tuple, EvalContext] = {}
    for corpus_name in corpora:
        for policy_name, query in policies.items():
            contexts[(corpus_name, policy_name)] = EvalContext(
                settings,
                cache_dir=cache_dir,
                workers=workers,
                schedule=schedule,
                executor=executor,
                bank_dir=bank_dir,
                target_corpus=None if corpus_name == "default" else corpus_name,
                policy=query,
            )

    cells: List[Dict[str, object]] = []
    for spec_label, spec in specs.items():
        for policy_name, query in policies.items():
            baseline_percent: Optional[float] = None
            for corpus_name in corpora:
                ctx = contexts[(corpus_name, policy_name)]
                # the RNG label omits the target corpus on purpose: every
                # cell of a (spec, policy) row attacks with the same
                # guess stream, so the delta isolates the target shift
                report = ctx.run_attack(spec, label=f"xc-{spec_label}-{policy_name}")
                percent = report.rows[-1].match_percent if report.rows else 0.0
                if corpus_name == "default":
                    baseline_percent = percent
                cells.append(
                    {
                        "label": spec_label,
                        "base_spec": parse_spec(spec).canonical(),
                        "spec": ctx.scenario_spec(spec),
                        "policy": policy_name,
                        "policy_query": query,
                        "train_corpus": "default",
                        "target_corpus": corpus_name,
                        "test_size": report.test_size,
                        "rows": [row.as_dict() for row in report.rows],
                        "match_percent": percent,
                        "baseline_match_percent": baseline_percent,
                        "transfer_delta": percent - baseline_percent,
                    }
                )

    return {
        "schema": SCHEMA,
        "profile": settings.name,
        "seed": settings.seed,
        "budgets": list(settings.budgets),
        "train_corpus": "default",
        "corpora": corpora,
        "policies": policies,
        "cells": cells,
    }


def result_table(report: Mapping[str, object]) -> ExperimentResult:
    """Render a :func:`run_matrix` report as an :class:`ExperimentResult`."""
    rows = [
        [
            cell["label"],
            cell["policy"],
            cell["target_corpus"],
            cell["test_size"],
            round(cell["match_percent"], 2),
            round(cell["baseline_match_percent"], 2),
            round(cell["transfer_delta"], 2),
        ]
        for cell in report["cells"]
    ]
    return ExperimentResult(
        name="Cross-corpus scenario matrix",
        headers=[
            "Method",
            "Policy",
            "Target",
            "Targets",
            "Match %",
            "In-corpus %",
            "Transfer Δ",
        ],
        rows=rows,
        notes={"schema": report["schema"], "profile": report["profile"]},
    )


def run(ctx: EvalContext) -> ExperimentResult:
    """Driver-convention entry point: the default matrix at ``ctx``'s scale."""
    report = run_matrix(
        settings=ctx.settings,
        cache_dir=ctx.cache_dir,
        workers=ctx.workers,
        schedule=ctx.schedule,
        executor=ctx.executor,
        bank_dir=ctx.bank_dir,
    )
    return result_table(report)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="cross-corpus scenario matrix")
    parser.add_argument(
        "--spec",
        action="append",
        metavar="LABEL=SPEC",
        help="matrix row, repeatable (default: markov3=markov:3, pcfg=pcfg)",
    )
    parser.add_argument(
        "--corpora",
        help=f"comma list of target corpus variants (default: all of "
        f"{sorted(CORPUS_VARIANTS)})",
    )
    parser.add_argument(
        "--policy",
        action="append",
        metavar="NAME=QUERY",
        help="policy column, repeatable; empty query = unconstrained "
        "(default: none= and ld6=min_len=6&classes=ld)",
    )
    parser.add_argument("--json", help="write the full report dict here")
    args = parser.parse_args(argv)

    specs = None
    if args.spec:
        specs = dict(item.split("=", 1) for item in args.spec)
    policies = None
    if args.policy:
        policies = {
            name: (query or None)
            for name, query in (item.split("=", 1) for item in args.policy)
        }
    corpora = args.corpora.split(",") if args.corpora else None

    report = run_matrix(specs=specs, corpora=corpora, policies=policies)
    print(result_table(report))
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

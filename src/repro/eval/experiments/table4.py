"""Table IV: quality of non-matched samples.

The paper shows that even guesses that miss the test set "resemble
human-like passwords".  We make the claim measurable: collect non-matched
samples from a PassFlow attack, report (a) the samples themselves, (b) the
fraction matching human-password structural templates, and (c) the
total-variation distance between the guess set's structural footprint and
the real corpus.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.diversity import compare_to_corpus, top_structures
from repro.eval.harness import EvalContext
from repro.eval.metrics import plausibility_rate
from repro.eval.reporting import ExperimentResult
from repro.flows.priors import StandardNormalPrior


def run(ctx: EvalContext, sample_count: int = 2000) -> ExperimentResult:
    """Regenerate the Table IV analysis at the context's scale."""
    model = ctx.passflow()
    prior = StandardNormalPrior(model.config.max_length, sigma=ctx.STATIC_TEMPERATURE)
    rng = ctx.attack_rng("table4")
    guesses = [g for g in model.sample_passwords(sample_count, rng=rng, prior=prior) if g]
    test_set = ctx.test_set
    non_matched = [g for g in guesses if g not in test_set]
    report = compare_to_corpus(non_matched, ctx.corpus)

    sample_rows = [non_matched[i : i + 4] for i in range(0, min(36, len(non_matched)), 4)]
    rows = [row + [""] * (4 - len(row)) for row in sample_rows]
    return ExperimentResult(
        name="Table IV: non-matched sample quality",
        headers=["sample 1", "sample 2", "sample 3", "sample 4"],
        rows=rows,
        notes={
            "plausibility_rate": round(plausibility_rate(non_matched), 3),
            "structure_tv": round(report.structure_tv, 3),
            "length_tv": round(report.length_tv, 3),
            "charclass_tv": round(report.charclass_tv, 3),
            "unique_fraction": round(report.unique_fraction, 3),
            "top_generated_structures": top_structures(non_matched, top=5),
            "top_corpus_structures": top_structures(ctx.corpus, top=5),
        },
    )


def main() -> None:
    result = run(EvalContext())
    print(result)
    for key in ("plausibility_rate", "structure_tv", "length_tv", "charclass_tv"):
        print(f"{key}: {result.notes[key]}")


if __name__ == "__main__":
    main()

"""Per-table/figure experiment drivers.

Each module exposes ``run(ctx: EvalContext) -> ExperimentResult`` and can be
executed directly (``python -m repro.eval.experiments.table2``).  The
mapping to the paper:

============  =====================================================
Module        Paper artifact
============  =====================================================
table2        Table II  -- % matched per method per guess budget
table3        Table III -- unique + matched counts (latent models)
table5        Table V   -- neighbourhood samples around "jimmy91"
table6        Table VI  -- masking-strategy comparison
fig2          Fig. 2    -- t-SNE projection of latent neighbourhoods
fig3          Fig. 3    -- latent interpolation jimmy91 -> 123456
fig4          Fig. 4    -- marginal improvement vs training-set size
fig5          Fig. 5    -- matches with vs without phi
cross_corpus  beyond the paper: spec x corpus-pair x policy
              scenario matrix with transfer deltas (docs/scenarios.md)
============  =====================================================
"""

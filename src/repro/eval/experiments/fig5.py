"""Fig. 5: Dynamic Sampling with vs without the penalization function phi.

The paper sets phi identically 1 (uniform weighting, the Pasquini et al.
scheme) as the "without" arm and its step function as the "with" arm;
the with-phi arm wins at every budget and the gap grows with budget
(0.82% -> 2.60% at 10^7; 3.95% -> 8.08% at 10^8).
"""

from __future__ import annotations

from repro.eval.experiments.common import dynamic_spec
from repro.eval.harness import EvalContext
from repro.eval.reporting import ExperimentResult


def run(ctx: EvalContext, seeds: int = 3) -> ExperimentResult:
    """Regenerate the Fig. 5 comparison at the context's scale.

    Match counts are averaged over ``seeds`` independent attack runs: at
    reduced scale single-run counts are small enough that sampling noise
    would otherwise dominate the phi effect.
    """
    budgets = ctx.settings.guess_budgets

    def averaged(with_phi: bool, label: str):
        totals = {budget: 0.0 for budget in budgets}
        for seed in range(seeds):
            report = ctx.engine().run(
                ctx.strategy(dynamic_spec(ctx, with_phi=with_phi)),
                ctx.attack_rng(f"fig5-{label}-{seed}"),
                method=f"Dynamic {label} phi",
            )
            for budget in budgets:
                totals[budget] += report.row_at(budget).matched
        return {budget: total / seeds for budget, total in totals.items()}

    with_phi = averaged(True, "with")
    without_phi = averaged(False, "without")
    test_size = len(ctx.test_set)
    rows = []
    for budget in budgets:
        gap_pp = 100.0 * (with_phi[budget] - without_phi[budget]) / test_size
        rows.append(
            [budget, round(without_phi[budget], 1), round(with_phi[budget], 1), round(gap_pp, 2)]
        )
    return ExperimentResult(
        name=f"Fig. 5: matches with vs without phi (mean of {seeds} runs)",
        headers=["Guesses", "Without phi", "With phi", "Gap (pp)"],
        rows=rows,
        notes={"test_size": test_size, "seeds": seeds},
    )


def main() -> None:
    print(run(EvalContext()))


if __name__ == "__main__":
    main()

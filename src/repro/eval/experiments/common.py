"""Shared attack runs reused by Table II and Table III drivers."""

from __future__ import annotations

from typing import Dict

from repro.core.dynamic import DynamicSampler, DynamicSamplingConfig
from repro.core.guesser import GuessingAttack, GuessingReport
from repro.core.penalization import NoPenalization, StepPenalization
from repro.core.sampling import StaticSampler
from repro.core.smoothing import GaussianSmoother
from repro.eval.harness import EvalContext
from repro.flows.priors import StandardNormalPrior

METHODS = (
    "PassGAN",
    "CWAE",
    "PassFlow-Static",
    "PassFlow-Dynamic",
    "PassFlow-Dynamic+GS",
)


def dynamic_config(ctx: EvalContext, with_phi: bool = True) -> DynamicSamplingConfig:
    """The scaled Dynamic Sampling parameters for this context."""
    phi = StepPenalization(ctx.DYNAMIC_GAMMA) if with_phi else NoPenalization()
    return DynamicSamplingConfig(
        alpha=ctx.DYNAMIC_ALPHA,
        sigma=ctx.DYNAMIC_SIGMA,
        phi=phi,
        batch_size=1024,
    )


def collect_reports(ctx: EvalContext) -> Dict[str, GuessingReport]:
    """Run (once per context) the five attacks of Tables II/III."""
    cached = getattr(ctx, "_table23_reports", None)
    if cached is not None:
        return cached

    test_set = ctx.test_set
    budgets = ctx.settings.guess_budgets
    model = ctx.passflow()
    prior = StandardNormalPrior(model.config.max_length, sigma=ctx.STATIC_TEMPERATURE)

    reports: Dict[str, GuessingReport] = {}
    attack = GuessingAttack(test_set, budgets)
    reports["PassGAN"] = attack.run(ctx.passgan(), ctx.attack_rng("passgan"), "PassGAN")
    reports["CWAE"] = attack.run(ctx.cwae(), ctx.attack_rng("cwae"), "CWAE")
    reports["PassFlow-Static"] = StaticSampler(model, prior=prior).attack(
        test_set, budgets, ctx.attack_rng("static"), method="PassFlow-Static"
    )
    reports["PassFlow-Dynamic"] = DynamicSampler(model, dynamic_config(ctx)).attack(
        test_set, budgets, ctx.attack_rng("dynamic"), method="PassFlow-Dynamic"
    )
    reports["PassFlow-Dynamic+GS"] = DynamicSampler(
        model, dynamic_config(ctx), smoother=GaussianSmoother(model.encoder)
    ).attack(test_set, budgets, ctx.attack_rng("dynamic-gs"), method="PassFlow-Dynamic+GS")

    ctx._table23_reports = reports
    return reports

"""Shared attack runs reused by Table II and Table III drivers.

The five methods are plain strategy spec strings resolved by
:meth:`repro.eval.harness.EvalContext.strategy` against the context's
cached artifacts and streamed through one
:class:`repro.strategies.AttackEngine` per run -- or, when the context was
built with ``workers > 1`` (``REPRO_ATTACK_WORKERS``), sharded across a
:class:`repro.runtime.ParallelAttackEngine`.  The serial default keeps
every table bit-identical to the seed-era reports.
"""

from __future__ import annotations

from typing import Dict

from repro.core.dynamic import DynamicSamplingConfig
from repro.core.guesser import GuessingReport
from repro.core.penalization import NoPenalization, StepPenalization
from repro.eval.harness import EvalContext

METHODS = (
    "PassGAN",
    "CWAE",
    "PassFlow-Static",
    "PassFlow-Dynamic",
    "PassFlow-Dynamic+GS",
)


def dynamic_config(ctx: EvalContext, with_phi: bool = True) -> DynamicSamplingConfig:
    """The scaled Dynamic Sampling parameters for this context."""
    phi = StepPenalization(ctx.DYNAMIC_GAMMA) if with_phi else NoPenalization()
    return DynamicSamplingConfig(
        alpha=ctx.DYNAMIC_ALPHA,
        sigma=ctx.DYNAMIC_SIGMA,
        phi=phi,
        batch_size=1024,
    )


def dynamic_spec(ctx: EvalContext, smoothed: bool = False, with_phi: bool = True) -> str:
    """The context's Dynamic Sampling parameters as a strategy spec."""
    variant = "dynamic+gs" if smoothed else "dynamic"
    phi = "step" if with_phi else "none"
    return (
        f"passflow:{variant}?alpha={ctx.DYNAMIC_ALPHA}&batch=1024"
        f"&gamma={ctx.DYNAMIC_GAMMA}&phi={phi}&sigma={ctx.DYNAMIC_SIGMA}"
    )


def static_spec(ctx: EvalContext) -> str:
    """The context's static-sampling parameters as a strategy spec."""
    return f"passflow:static?temperature={ctx.STATIC_TEMPERATURE}"


def collect_reports(ctx: EvalContext) -> Dict[str, GuessingReport]:
    """Run (once per context) the five attacks of Tables II/III."""
    cached = getattr(ctx, "_table23_reports", None)
    if cached is not None:
        return cached

    runs = (
        ("PassGAN", "passgan", "passgan"),
        ("CWAE", "cwae", "cwae"),
        ("PassFlow-Static", static_spec(ctx), "static"),
        ("PassFlow-Dynamic", dynamic_spec(ctx), "dynamic"),
        ("PassFlow-Dynamic+GS", dynamic_spec(ctx, smoothed=True), "dynamic-gs"),
    )
    reports: Dict[str, GuessingReport] = {
        method: ctx.run_attack(spec, label, method=method)
        for method, spec, label in runs
    }

    ctx._table23_reports = reports
    return reports

"""Table III: unique and matched counts for the latent-space models.

Paper shapes we target at reduced scale:

* Dynamic produces *fewer* unique guesses than Static (prior contraction);
* Dynamic+GS restores uniqueness close to Static while keeping (and
  improving) Dynamic's match counts;
* every PassFlow sampler beats CWAE on matches.
"""

from __future__ import annotations

from repro.eval.experiments.common import collect_reports
from repro.eval.harness import EvalContext
from repro.eval.reporting import ExperimentResult

LATENT_METHODS = ("CWAE", "PassFlow-Static", "PassFlow-Dynamic", "PassFlow-Dynamic+GS")


def run(ctx: EvalContext) -> ExperimentResult:
    """Regenerate Table III at the context's scale."""
    reports = collect_reports(ctx)
    budgets = ctx.settings.guess_budgets
    headers = ["Guesses"]
    for method in LATENT_METHODS:
        headers += [f"{method} unique", f"{method} matched"]
    rows = []
    for budget in budgets:
        row = [budget]
        for method in LATENT_METHODS:
            budget_row = reports[method].row_at(budget)
            row += [budget_row.unique, budget_row.matched]
        rows.append(row)
    return ExperimentResult(
        name="Table III: unique and matched passwords",
        headers=headers,
        rows=rows,
        notes={"test_size": reports["CWAE"].test_size},
    )


def main() -> None:
    print(run(EvalContext()))


if __name__ == "__main__":
    main()

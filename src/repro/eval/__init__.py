"""Evaluation harness: regenerates every table and figure of the paper.

* :mod:`repro.eval.harness` -- shared experiment context: scaled corpus,
  trained models (disk-cached), scale profiles,
* :mod:`repro.eval.metrics` -- match/unique/plausibility/cluster metrics,
* :mod:`repro.eval.reporting` -- text/markdown table rendering,
* :mod:`repro.eval.experiments` -- one driver per paper table/figure.
"""

from repro.eval.harness import BenchmarkSettings, EvalContext
from repro.eval.metrics import (
    cluster_separation,
    match_rate,
    plausibility_rate,
    uniqueness_rate,
)
from repro.eval.reporting import ExperimentResult, format_table

__all__ = [
    "EvalContext",
    "BenchmarkSettings",
    "match_rate",
    "uniqueness_rate",
    "plausibility_rate",
    "cluster_separation",
    "ExperimentResult",
    "format_table",
]

"""Evaluation metrics."""

from __future__ import annotations

import re
from typing import Iterable, Sequence, Set

import numpy as np

# Structural templates of human-like passwords (the patterns the synthetic
# corpus -- and real leaks -- are dominated by).  Used to score how
# password-like *non-matched* samples are (the Table IV discussion).
_PLAUSIBLE_PATTERNS = [
    re.compile(r"^[a-z]{3,10}$"),                 # plain word
    re.compile(r"^[a-z]{2,8}[0-9]{1,4}$"),        # word + digits
    re.compile(r"^[A-Z][a-z]{2,7}[0-9]{0,3}$"),   # Capitalized word (+digits)
    re.compile(r"^[0-9]{4,10}$"),                 # PIN
    re.compile(r"^[a-z0-9]{4,10}$"),              # leet-ish mix
    re.compile(r"^[a-z]{2,8}[0-9]{1,4}[!.@#*_\-?]$"),  # word+digits+symbol
]


def match_rate(matched: int, test_size: int) -> float:
    """Percentage of the test set matched (the Table II statistic)."""
    if test_size <= 0:
        raise ValueError("test_size must be positive")
    if matched < 0:
        raise ValueError("matched must be non-negative")
    return 100.0 * matched / test_size


def uniqueness_rate(unique: int, generated: int) -> float:
    """Fraction of generated guesses that are distinct."""
    if generated <= 0:
        raise ValueError("generated must be positive")
    return unique / generated


def is_plausible(password: str) -> bool:
    """Heuristic: does the string look like a human-chosen password?"""
    return any(p.match(password) for p in _PLAUSIBLE_PATTERNS)


def plausibility_rate(passwords: Iterable[str]) -> float:
    """Fraction of strings matching a human-like structural template."""
    passwords = list(passwords)
    if not passwords:
        raise ValueError("passwords must not be empty")
    return sum(1 for p in passwords if is_plausible(p)) / len(passwords)


def cluster_separation(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean inter-cluster / mean intra-cluster centroid distance ratio.

    Fig. 2's claim is qualitative ("syntactically similar passwords map to
    spatially correlated regions"); this gives it a number: values well
    above 1 mean the pivot neighbourhoods stay separated in the embedding.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    unique_labels = np.unique(labels)
    if len(unique_labels) < 2:
        raise ValueError("need at least two clusters")
    centroids = np.stack([points[labels == lab].mean(axis=0) for lab in unique_labels])
    intra = []
    for lab, centroid in zip(unique_labels, centroids):
        members = points[labels == lab]
        intra.append(np.mean(np.linalg.norm(members - centroid, axis=1)))
    inter = []
    for i in range(len(centroids)):
        for j in range(i + 1, len(centroids)):
            inter.append(np.linalg.norm(centroids[i] - centroids[j]))
    mean_intra = float(np.mean(intra))
    if mean_intra == 0:
        return float("inf")
    return float(np.mean(inter)) / mean_intra


def guess_overlap(a: Sequence[str], b: Sequence[str]) -> float:
    """Jaccard overlap between two guess sets (diversity diagnostics)."""
    sa, sb = set(a), set(b)
    union = sa | sb
    if not union:
        raise ValueError("both guess sets are empty")
    return len(sa & sb) / len(union)

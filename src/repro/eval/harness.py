"""Shared experiment context: scaled corpus and disk-cached trained models.

The paper's experiments share one data pipeline and a handful of trained
models; this module owns both so every table/figure driver (and every
benchmark) reuses identical artifacts.

Scale profiles
--------------
CPU-only numpy cannot run 10^8-guess attacks on a 23.5M-password corpus, so
the harness scales everything down while preserving the relative structure
(DESIGN.md records the substitution).  Three profiles are provided, chosen
via the ``REPRO_BENCH_PROFILE`` environment variable:

* ``tiny``  -- smoke-test scale (used by the test-suite),
* ``quick`` -- the default benchmark scale (minutes on a laptop),
* ``full``  -- the largest practical scale (tens of minutes).

Test-set cleaning at this scale removes the intersection with the *model's
training subset* (the 300K-analog), not the full 80% pool: with only a few
thousand unique passwords in play, full-pool cleaning leaves just singleton
tails and every method degenerates to zero matches (EXPERIMENTS.md
discusses this adaptation).

Trained models are cached under ``.repro_cache/`` keyed by profile + role;
delete the directory to retrain from scratch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bank import (
    BANK_DIR_ENV,
    BankError,
    bank_path_for,
    build_bank,
    replay_attack,
    resolve_bank,
)
from repro.baselines import CWAE, CWAEConfig, MarkovModel, PCFGModel, PassGAN, PassGANConfig
from repro.core.guesser import GuessingReport
from repro.core.model import PassFlow, PassFlowConfig
from repro.data.alphabet import Alphabet, compact_alphabet
from repro.data.dataset import PasswordDataset
from repro.data.encoding import PasswordEncoder
from repro.data.synthetic import SyntheticConfig, SyntheticRockYou
from repro.runtime import ParallelAttackEngine, StrategySource
from repro.scenarios import CompositionPolicy
from repro.strategies import AttackEngine, GuessingStrategy, parse_spec, unwrap_spec
from repro.utils.logging import get_logger
from repro.utils.rng import spawn_rng

logger = get_logger("eval.harness")

DEFAULT_CACHE_DIR = Path(".repro_cache")


@dataclass
class BenchmarkSettings:
    """One scale profile of the evaluation."""

    name: str
    corpus_size: int
    train_size: int          # PassFlow's training subset (the 300K analog)
    baseline_train_size: int  # what the GAN/CWAE baselines get (the 23.5M analog)
    test_size: int
    budgets: Tuple[int, ...]
    flow_couplings: int
    flow_hidden: int
    flow_epochs: int
    flow_batch: int
    gan_iterations: int
    cwae_epochs: int
    train_size_sweep: Tuple[int, ...]  # Fig. 4 x-axis
    sweep_epochs: int
    seed: int = 7

    @property
    def guess_budgets(self) -> List[int]:
        return list(self.budgets)


PROFILES: Dict[str, BenchmarkSettings] = {
    "tiny": BenchmarkSettings(
        name="tiny",
        corpus_size=3000,
        train_size=800,
        baseline_train_size=1500,
        test_size=1200,
        budgets=(200, 1000),
        flow_couplings=4,
        flow_hidden=24,
        flow_epochs=4,
        flow_batch=128,
        gan_iterations=40,
        cwae_epochs=4,
        train_size_sweep=(300, 600, 800),
        sweep_epochs=3,
    ),
    "quick": BenchmarkSettings(
        name="quick",
        corpus_size=40000,
        train_size=6000,
        baseline_train_size=20000,
        test_size=20000,
        budgets=(1000, 10000, 100000),
        flow_couplings=10,
        flow_hidden=64,
        flow_epochs=70,
        flow_batch=256,
        gan_iterations=1200,
        cwae_epochs=40,
        train_size_sweep=(1000, 2000, 4000, 6000),
        sweep_epochs=40,
    ),
    "full": BenchmarkSettings(
        name="full",
        corpus_size=100000,
        train_size=10000,
        baseline_train_size=60000,
        test_size=40000,
        budgets=(1000, 10000, 100000),
        flow_couplings=12,
        flow_hidden=96,
        flow_epochs=120,
        flow_batch=512,
        gan_iterations=4000,
        cwae_epochs=80,
        train_size_sweep=(1000, 2500, 5000, 7500, 10000),
        sweep_epochs=60,
    ),
}


#: Named synthetic-corpus variants for cross-corpus experiments: the same
#: generator with shifted composition statistics stands in for "a
#: different leak" (different base-word vocabulary, different suffix
#: habits).  ``default`` is the in-corpus baseline every other pair's
#: transfer delta is measured against; each variant draws from its own
#: named RNG stream (``spawn_rng(seed, "corpus-<name>")``), so adding
#: variants never perturbs the default corpus bytes.
CORPUS_VARIANTS: Dict[str, SyntheticConfig] = {
    "default": SyntheticConfig(vocabulary_size=30, max_suffix_digits=2),
    "narrow": SyntheticConfig(vocabulary_size=18, max_suffix_digits=2),
    "digits": SyntheticConfig(vocabulary_size=30, max_suffix_digits=4),
}


def settings_from_env(default: str = "quick") -> BenchmarkSettings:
    """Resolve the profile from ``REPRO_BENCH_PROFILE``."""
    name = os.environ.get("REPRO_BENCH_PROFILE", default)
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown profile {name!r}; options: {sorted(PROFILES)}") from None


class EvalContext:
    """Builds and caches the artifacts shared by all experiments."""

    # Dynamic-sampling parameters used at quick/full scale; the Table I
    # schedule targets paper-scale budgets, these are its scaled analog.
    DYNAMIC_ALPHA = 1
    DYNAMIC_SIGMA = 0.12
    DYNAMIC_GAMMA = 2
    STATIC_TEMPERATURE = 0.75

    def __init__(
        self,
        settings: Optional[BenchmarkSettings] = None,
        cache_dir: Path | str = DEFAULT_CACHE_DIR,
        alphabet: Optional[Alphabet] = None,
        workers: Optional[int] = None,
        schedule: Optional[str] = None,
        executor: Optional[str] = None,
        bank_dir: Optional[Path | str] = None,
        target_corpus: Optional[str] = None,
        policy: Optional[CompositionPolicy | str] = None,
    ) -> None:
        self.settings = settings or settings_from_env()
        self.cache_dir = Path(cache_dir)
        self.alphabet = alphabet or compact_alphabet()
        # attack parallelism: explicit argument, else REPRO_ATTACK_WORKERS,
        # else serial (workers=1 keeps every report bit-identical to the
        # seed-era single-process runs)
        if workers is None:
            raw = os.environ.get("REPRO_ATTACK_WORKERS", "1")
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_ATTACK_WORKERS must be an integer, got {raw!r}"
                ) from None
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        # shard scheduling: explicit argument, else REPRO_ATTACK_SCHEDULE,
        # else static (the bit-compatible default; "elastic" re-plans dry
        # shards' budgets at checkpoints, see docs/parallel.md)
        if schedule is None:
            schedule = os.environ.get("REPRO_ATTACK_SCHEDULE", "static")
        if schedule not in ("static", "elastic"):
            raise ValueError(
                f"schedule must be 'static' or 'elastic', got {schedule!r}"
            )
        self.schedule = schedule
        # shard executor: explicit argument, else REPRO_ATTACK_EXECUTOR,
        # else "auto" (per-schedule default; "processpool" = the
        # fork-server pool, same report bytes for a fixed
        # seed/workers/schedule, real multi-core throughput for
        # GIL-bound strategies)
        if executor is None:
            executor = os.environ.get("REPRO_ATTACK_EXECUTOR", "auto")
        from repro.runtime import EXECUTOR_NAMES

        if executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"executor must be one of {EXECUTOR_NAMES}, got {executor!r}"
            )
        self.executor = executor
        # guess-bank reuse: explicit argument, else $REPRO_GUESS_BANK, else
        # off.  When set, run_attack banks each deterministic-replayable
        # strategy's stream on first use and replays the mmapped artifact
        # on every later run (table2/3/6 share the same specs), with
        # reports bit-identical to the live serial sampling.
        if bank_dir is None:
            bank_dir = os.environ.get(BANK_DIR_ENV) or None
        self.bank_dir = Path(bank_dir) if bank_dir is not None else None
        # cross-corpus seam: train on the default corpus, attack the
        # named variant's test slice ("train on one leak, attack
        # another"); None keeps the in-corpus evaluation
        if target_corpus is not None and target_corpus not in CORPUS_VARIANTS:
            raise ValueError(
                f"unknown target corpus {target_corpus!r}; "
                f"options: {sorted(CORPUS_VARIANTS)}"
            )
        self.target_corpus = target_corpus
        # composition-policy seam: run_attack wraps every spec as
        # policy(<spec>)?... and the test set keeps only conformant
        # targets, so match rates model a policy-enforcing deployment
        if isinstance(policy, str):
            policy = CompositionPolicy.from_query(policy)
        self.policy = policy
        self._corpus: Optional[List[str]] = None
        self._corpora: Dict[str, List[str]] = {}
        self._dataset: Optional[PasswordDataset] = None
        self._passflow: Dict[str, PassFlow] = {}
        self._passgan: Optional[PassGAN] = None
        self._cwae: Optional[CWAE] = None
        self._markov: Optional[MarkovModel] = None
        self._pcfg: Optional[PCFGModel] = None

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------
    def synthetic_config(self) -> SyntheticConfig:
        """Tightened generator config (see DESIGN.md scaling notes)."""
        return CORPUS_VARIANTS["default"]

    @property
    def corpus(self) -> List[str]:
        if self._corpus is None:
            rng = spawn_rng(self.settings.seed, "corpus")
            generator = SyntheticRockYou(rng, self.synthetic_config(), self.alphabet)
            self._corpus = generator.generate(self.settings.corpus_size)
        return self._corpus

    def corpus_variant(self, name: Optional[str]) -> List[str]:
        """A named corpus variant (``None``/``"default"`` = the corpus).

        Variants draw from their own ``spawn_rng(seed, "corpus-<name>")``
        stream, so the default corpus -- and with it every seed-era
        report -- stays byte-identical no matter which variants exist.
        """
        if name in (None, "default"):
            return self.corpus
        if name not in CORPUS_VARIANTS:
            raise ValueError(
                f"unknown corpus variant {name!r}; options: {sorted(CORPUS_VARIANTS)}"
            )
        if name not in self._corpora:
            rng = spawn_rng(self.settings.seed, f"corpus-{name}")
            generator = SyntheticRockYou(rng, CORPUS_VARIANTS[name], self.alphabet)
            self._corpora[name] = generator.generate(self.settings.corpus_size)
        return self._corpora[name]

    @property
    def dataset(self) -> PasswordDataset:
        """Train subset + cleaned test set shared by every experiment.

        With ``target_corpus`` set, the test slice comes from the target
        corpus variant while training (and test-set cleaning) stays on
        the training corpus: generalization is measured across the
        distribution shift, and a password leaked in both corpora is
        still a fair target as long as the *model* never saw it.
        """
        if self._dataset is None:
            s = self.settings
            corpus = self.corpus
            train = corpus[: s.train_size]
            target = self.corpus_variant(self.target_corpus)
            test_raw = target[len(target) - s.test_size :]
            model = self.passflow()  # ensures encoder settings match
            self._dataset = PasswordDataset(
                train,
                test_raw,
                model.encoder,
                test_filter=self.policy.conforms if self.policy else None,
            )
        return self._dataset

    @property
    def baseline_train(self) -> List[str]:
        """The larger corpus slice the GAN/CWAE baselines train on."""
        return self.corpus[: self.settings.baseline_train_size]

    @property
    def test_set(self):
        return self.dataset.test_set

    # ------------------------------------------------------------------
    # models (trained lazily, cached on disk)
    # ------------------------------------------------------------------
    def _cache_path(self, role: str) -> Path:
        return self.cache_dir / f"{self.settings.name}-{role}.npz"

    def passflow_config(self, mask_strategy: str = "char-run-1", seed: int = 1) -> PassFlowConfig:
        s = self.settings
        return PassFlowConfig(
            alphabet_chars=self.alphabet.chars,
            num_couplings=s.flow_couplings,
            hidden=s.flow_hidden,
            batch_size=s.flow_batch,
            epochs=s.flow_epochs,
            mask_strategy=mask_strategy,
            seed=seed,
        )

    def passflow(self, mask_strategy: str = "char-run-1") -> PassFlow:
        """The main PassFlow model (or a mask-strategy variant, Table VI)."""
        if mask_strategy in self._passflow:
            return self._passflow[mask_strategy]
        path = self._cache_path(f"passflow-{mask_strategy}")
        if path.exists():
            logger.info("loading cached PassFlow (%s) from %s", mask_strategy, path)
            model = PassFlow.load(path)
        else:
            model = PassFlow(self.passflow_config(mask_strategy))
            train = self.corpus[: self.settings.train_size]
            logger.info(
                "training PassFlow (%s): %d passwords, %d epochs",
                mask_strategy,
                len(train),
                self.settings.flow_epochs,
            )
            model.fit(PasswordDataset(train, [], model.encoder))
            model.save(path)
        self._passflow[mask_strategy] = model
        return model

    def passflow_for_train_size(self, train_size: int) -> PassFlow:
        """A sweep model for Fig. 4 (own cache entry per size)."""
        if train_size > len(self.corpus):
            raise ValueError("train_size exceeds corpus")
        path = self._cache_path(f"passflow-n{train_size}")
        if path.exists():
            return PassFlow.load(path)
        config = self.passflow_config(seed=100 + train_size)
        config.epochs = self.settings.sweep_epochs
        model = PassFlow(config)
        model.fit(PasswordDataset(self.corpus[:train_size], [], model.encoder))
        model.save(path)
        return model

    def passgan(self) -> PassGAN:
        if self._passgan is None:
            path = self._cache_path("passgan")
            if path.exists():
                self._passgan = PassGAN.load(path)
            else:
                s = self.settings
                config = PassGANConfig(
                    alphabet_chars=self.alphabet.chars,
                    hidden=96,
                    iterations=s.gan_iterations,
                    seed=2,
                )
                model = PassGAN(config)
                logger.info("training PassGAN: %d iterations", s.gan_iterations)
                model.fit(self.baseline_train)
                model.save(path)
                self._passgan = model
        return self._passgan

    def cwae(self) -> CWAE:
        if self._cwae is None:
            path = self._cache_path("cwae")
            if path.exists():
                self._cwae = CWAE.load(path)
            else:
                s = self.settings
                config = CWAEConfig(
                    alphabet_chars=self.alphabet.chars,
                    latent_dim=48,
                    hidden=96,
                    epochs=s.cwae_epochs,
                    seed=3,
                )
                model = CWAE(config)
                logger.info("training CWAE: %d epochs", s.cwae_epochs)
                model.fit(self.baseline_train)
                model.save(path)
                self._cwae = model
        return self._cwae

    def markov(self) -> MarkovModel:
        if self._markov is None:
            self._markov = MarkovModel(order=3).fit(self.baseline_train)
        return self._markov

    def pcfg(self) -> PCFGModel:
        if self._pcfg is None:
            self._pcfg = PCFGModel().fit(self.baseline_train)
        return self._pcfg

    # ------------------------------------------------------------------
    # guessing strategies (spec strings resolved against cached artifacts)
    # ------------------------------------------------------------------
    def engine(self) -> AttackEngine:
        """A streaming attack engine over this context's test set/budgets."""
        return AttackEngine(self.test_set, self.settings.guess_budgets)

    def resolve_model(self, spec: str):
        """The cached artifact a spec resolves against (None for fit-on-demand).

        Wrapper specs (``policy(...)``/``mangle(...)``) resolve against
        their innermost spec's artifact.
        """
        parsed = unwrap_spec(spec)
        if parsed.family == "passflow":
            return self.passflow()
        if parsed.family == "passgan":
            return self.passgan()
        if parsed.family == "cwae":
            return self.cwae()
        if parsed.family == "markov" and parsed.variant in (None, "3"):
            return self.markov()
        if parsed.family == "pcfg":
            return self.pcfg()
        return None

    def scenario_spec(self, spec: str) -> str:
        """The spec :meth:`run_attack` actually streams.

        With a context ``policy`` set, plain specs are wrapped as
        ``policy(<spec>)?...`` so the guess stream is pre-image filtered
        to the same slice the test set was; specs already policy-wrapped
        pass through untouched.
        """
        if self.policy is None:
            return spec
        parsed = parse_spec(spec)
        if parsed.family == "policy":
            return parsed.canonical()
        return self.policy.wrap(spec)

    def strategy(self, spec: str, model=None) -> GuessingStrategy:
        """Build a strategy spec using this context's trained artifacts.

        ``passflow:*`` specs resolve against the main cached PassFlow;
        baseline specs reuse the cached baseline when it matches the spec
        and otherwise fit a fresh model on ``baseline_train``.  Pass
        ``model`` to pin a specific artifact (e.g. a Table VI mask
        variant).
        """
        return self.strategy_source(spec, model=model).build()

    def strategy_source(self, spec: str, model=None) -> StrategySource:
        """The spec as a rebuildable recipe (what shard workers consume)."""
        return StrategySource(
            spec,
            model=model if model is not None else self.resolve_model(spec),
            corpus=self.baseline_train,
            alphabet=self.alphabet,
        )

    def _run_banked(
        self,
        spec: str,
        label: str,
        method: Optional[str],
        source: StrategySource,
        workers: int,
        schedule: str,
    ) -> Optional[GuessingReport]:
        """Replay ``spec`` from ``bank_dir``, banking it first on a miss.

        Returns ``None`` when the spec is not deterministic-replayable
        (feedback-driven strategies must sample live) or when banking
        fails, so ``run_attack`` falls back to the live path.  The bank's
        identity key pins ``(canonical spec, seed, rng label, alphabet)``
        to the *serial* live run -- ``spawn_rng(seed, "attack-{label}")``
        -- so replays under any fleet shape reproduce that run's report
        bit for bit.
        """
        strategy = source.build()
        if not getattr(strategy, "replayable", False):
            return None
        canonical = parse_spec(spec).canonical()
        rng_label = f"attack-{label}"
        budgets = self.settings.guess_budgets
        seed = self.settings.seed
        bank = resolve_bank(
            self.bank_dir, canonical, seed, rng_label, self.alphabet.chars
        )
        if bank is None or bank.total < budgets[-1]:
            path = bank_path_for(
                self.bank_dir, canonical, seed, rng_label, self.alphabet.chars
            )
            try:
                bank = build_bank(
                    strategy,
                    budgets[-1],
                    path,
                    seed=seed,
                    rng_label=rng_label,
                    encoder=PasswordEncoder(self.alphabet),
                )
            except BankError as exc:
                logger.warning(
                    "cannot bank %s (%s); sampling live instead", canonical, exc
                )
                return None
            logger.info("banked %s: %d guesses at %s", canonical, bank.total, bank.path)
        else:
            logger.info("replaying %s from %s", canonical, bank.path)
        return replay_attack(
            bank,
            self.test_set,
            budgets,
            workers=workers,
            schedule=schedule,
            seed=seed,
            executor=self.executor,
            method=method,
        )

    def run_attack(
        self,
        spec: str,
        label: str,
        method: Optional[str] = None,
        model=None,
        workers: Optional[int] = None,
        schedule: Optional[str] = None,
    ) -> GuessingReport:
        """One seeded attack run: build the spec, stream it to completion.

        ``workers`` and ``schedule`` default to the context's settings.
        The serial path (``workers=1`` with the static schedule)
        reproduces seed-era reports bit-identically; otherwise the budgets
        shard through a :class:`~repro.runtime.ParallelAttackEngine`
        (deterministic for a fixed ``(seed, workers, schedule)``, with
        per-shard -- per-chunk, under ``schedule="elastic"`` -- RNG
        streams derived from ``attack-{label}``).  Shards account in
        interned-id key space when the strategy streams index-matrix
        batches, shipping checkpoint deltas as packed uint64 arrays rather
        than string lists, so large parallel table runs stay queue-cheap;
        the elastic schedule additionally re-plans dry shards' budgets at
        checkpoints (see ``docs/parallel.md``).

        With ``bank_dir`` set (or ``$REPRO_GUESS_BANK``),
        deterministic-replayable specs are banked once and replayed from
        the mmapped artifact on every later run -- reports bit-identical
        to the serial live sampling regardless of fleet shape (see
        ``docs/bank.md``).
        """
        workers = self.workers if workers is None else workers
        schedule = self.schedule if schedule is None else schedule
        spec = self.scenario_spec(spec)
        source = self.strategy_source(spec, model=model)
        if self.bank_dir is not None:
            report = self._run_banked(spec, label, method, source, workers, schedule)
            if report is not None:
                return report
        if workers <= 1 and schedule == "static" and self.executor == "auto":
            return self.engine().run(
                source.build(), self.attack_rng(label), method=method
            )
        engine = ParallelAttackEngine(
            self.test_set,
            self.settings.guess_budgets,
            workers=workers,
            schedule=schedule,
            executor=self.executor,
        )
        # method=None lets the shard strategies name the report, matching
        # the serial engine's default (e.g. "Markov-3", not "markov:3")
        return engine.run(
            source, seed=self.settings.seed, method=method, label=f"attack-{label}/"
        )

    # ------------------------------------------------------------------
    def attack_rng(self, label: str) -> np.random.Generator:
        """Seeded generator for one attack run."""
        return spawn_rng(self.settings.seed, f"attack-{label}")

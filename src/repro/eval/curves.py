"""Guess-number curves: the (guesses, matches) series behind the figures.

The paper's figures are curves over guess budgets; this module produces
log-spaced checkpoint series from any sampler and exports them as CSV so
users can re-plot with their tool of choice.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, List, Sequence

from repro.core.guesser import GuessingReport


def log_budgets(max_guesses: int, points_per_decade: int = 3, start: int = 100) -> List[int]:
    """Log-spaced guess budgets from ``start`` to ``max_guesses``.

    >>> log_budgets(10000, points_per_decade=1)
    [100, 1000, 10000]
    """
    if max_guesses < start:
        raise ValueError("max_guesses must be >= start")
    if points_per_decade < 1:
        raise ValueError("points_per_decade must be >= 1")
    budgets: List[int] = []
    value = float(start)
    ratio = 10.0 ** (1.0 / points_per_decade)
    while value <= max_guesses + 0.5:
        budget = int(round(value))
        if not budgets or budget > budgets[-1]:
            budgets.append(budget)
        value *= ratio
    if budgets[-1] != max_guesses:
        budgets.append(max_guesses)
    return budgets


def curves_to_csv(reports: Sequence[GuessingReport]) -> str:
    """Render match curves of several reports as a tidy CSV string."""
    if not reports:
        raise ValueError("no reports given")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["method", "guesses", "unique", "matched", "match_percent"])
    for report in reports:
        for row in report.rows:
            writer.writerow(
                [report.method, row.guesses, row.unique, row.matched,
                 f"{row.match_percent:.4f}"]
            )
    return buffer.getvalue()


def write_curves(reports: Sequence[GuessingReport], path: str | Path) -> Path:
    """Write :func:`curves_to_csv` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(curves_to_csv(reports))
    return path


def curve_dict(report: GuessingReport) -> Dict[int, int]:
    """Guesses -> matched mapping for quick lookups/plots."""
    return {row.guesses: row.matched for row in report.rows}

"""PCA projection (cheap alternative/preprocessor to t-SNE)."""

from __future__ import annotations

import numpy as np


class PCA:
    """Principal component analysis via SVD."""

    def __init__(self, n_components: int = 2) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "PCA":
        """Learn the principal axes of the rows of ``x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] < 2:
            raise ValueError("PCA needs a (N>=2, D) matrix")
        if self.n_components > min(x.shape):
            raise ValueError("n_components exceeds data rank bound")
        self.mean_ = x.mean(axis=0)
        centered = x - self.mean_
        _, singular_values, v_t = np.linalg.svd(centered, full_matrices=False)
        self.components_ = v_t[: self.n_components]
        variance = singular_values**2
        self.explained_variance_ratio_ = variance[: self.n_components] / variance.sum()
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Project rows of ``x`` onto the learned axes."""
        if self.components_ is None:
            raise RuntimeError("fit() the PCA first")
        return (np.asarray(x, dtype=np.float64) - self.mean_) @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

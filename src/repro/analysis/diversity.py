"""Distribution-level diversity diagnostics for generated passwords.

Table IV's qualitative claim -- non-matched samples "closely resemble
human-like passwords" -- gets quantitative teeth here: we compare the
*structural footprint* of a guess set against a real corpus (structure
templates, length histogram, character-class mix) and summarize agreement
as total-variation distances.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.baselines.pcfg import structure_of


def _distribution(counter: Counter) -> Dict[str, float]:
    total = sum(counter.values())
    if total == 0:
        raise ValueError("empty distribution")
    return {k: v / total for k, v in counter.items()}


def total_variation(p: Dict[str, float], q: Dict[str, float]) -> float:
    """TV distance between two discrete distributions (0 = identical)."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def structure_distribution(passwords: Sequence[str]) -> Dict[str, float]:
    """Distribution over Weir structure templates (L4 D2 etc.)."""
    return _distribution(Counter(structure_of(p) for p in passwords if p))


def length_distribution(passwords: Sequence[str]) -> Dict[str, float]:
    """Distribution over password lengths."""
    return _distribution(Counter(str(len(p)) for p in passwords if p))


def charclass_distribution(passwords: Sequence[str]) -> Dict[str, float]:
    """Distribution over character classes across all positions."""
    counter: Counter = Counter()
    for password in passwords:
        for ch in password:
            if ch.isalpha():
                counter["letter"] += 1
            elif ch.isdigit():
                counter["digit"] += 1
            else:
                counter["symbol"] += 1
    return _distribution(counter)


@dataclass
class DiversityReport:
    """Structural-agreement summary between a guess set and a corpus."""

    structure_tv: float
    length_tv: float
    charclass_tv: float
    unique_fraction: float

    def overall(self) -> float:
        """Mean TV distance (0 = footprints identical)."""
        return (self.structure_tv + self.length_tv + self.charclass_tv) / 3.0


def compare_to_corpus(guesses: Sequence[str], corpus: Sequence[str]) -> DiversityReport:
    """Compare the structural footprint of guesses against a real corpus."""
    guesses = [g for g in guesses if g]
    corpus = [c for c in corpus if c]
    if not guesses or not corpus:
        raise ValueError("guesses and corpus must both be non-empty")
    return DiversityReport(
        structure_tv=total_variation(
            structure_distribution(guesses), structure_distribution(corpus)
        ),
        length_tv=total_variation(
            length_distribution(guesses), length_distribution(corpus)
        ),
        charclass_tv=total_variation(
            charclass_distribution(guesses), charclass_distribution(corpus)
        ),
        unique_fraction=len(set(guesses)) / len(guesses),
    )


def top_structures(passwords: Sequence[str], top: int = 10) -> Dict[str, float]:
    """Most common structure templates with their frequencies."""
    dist = structure_distribution(passwords)
    return dict(sorted(dist.items(), key=lambda kv: -kv[1])[:top])

"""Bounded latent-neighbourhood sampling (Table V, Fig. 2).

Sec. V-B: "We can generate instances of passwords belonging to a specific
class by bounding the sampling to specific subspaces of the latent space",
parameterized by the standard deviation of the Gaussian around a pivot.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.model import PassFlow


def neighborhood_samples(
    model: PassFlow,
    pivot: str,
    sigma: float,
    rng: np.random.Generator,
    unique_count: int = 10,
    max_draws: int = 4096,
    batch: int = 256,
) -> List[str]:
    """First ``unique_count`` distinct passwords sampled around ``pivot``.

    Reproduces one column of Table V: draw z ~ N(f(pivot), sigma^2 I),
    decode, collect unique decodings in generation order.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if unique_count < 1:
        raise ValueError("unique_count must be >= 1")
    center = model.encode_passwords([pivot])[0]
    seen: List[str] = []
    seen_set = set()
    drawn = 0
    while len(seen) < unique_count and drawn < max_draws:
        latents = center[None, :] + rng.normal(0.0, sigma, size=(batch, center.size))
        drawn += batch
        for password in model.decode_latents(latents):
            if password and password not in seen_set:
                seen_set.add(password)
                seen.append(password)
                if len(seen) >= unique_count:
                    break
    return seen


def sigma_sweep(
    model: PassFlow,
    pivot: str,
    sigmas: Sequence[float],
    rng: np.random.Generator,
    unique_count: int = 10,
) -> Dict[float, List[str]]:
    """Table V: neighbourhood samples for each sigma around one pivot."""
    return {
        float(sigma): neighborhood_samples(model, pivot, sigma, rng, unique_count)
        for sigma in sigmas
    }


def neighborhood_cloud(
    model: PassFlow,
    pivots: Sequence[str],
    sigma: float,
    count_per_pivot: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """Latent clouds around several pivots (the Fig. 2 input data).

    Returns ``(latents, labels, decoded)``: stacked latent points, an int
    label per point identifying its pivot, and the decoded passwords.
    """
    if count_per_pivot < 1:
        raise ValueError("count_per_pivot must be >= 1")
    centers = model.encode_passwords(list(pivots))
    clouds, labels = [], []
    for index, center in enumerate(centers):
        noise = rng.normal(0.0, sigma, size=(count_per_pivot, center.size))
        clouds.append(center[None, :] + noise)
        labels.extend([index] * count_per_pivot)
    latents = np.concatenate(clouds, axis=0)
    decoded = model.decode_latents(latents)
    return latents, np.asarray(labels), decoded


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance (used to quantify Table V's structural drift)."""
    if a == b:
        return 0
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def mean_edit_distance(pivot: str, samples: Sequence[str]) -> float:
    """Average edit distance from a pivot to its neighbourhood samples."""
    if not samples:
        raise ValueError("samples must not be empty")
    return float(np.mean([edit_distance(pivot, s) for s in samples]))

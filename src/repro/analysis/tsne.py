"""Exact t-SNE on numpy.

The paper's Fig. 2 projects latent neighbourhoods with "the TSNE tool";
scikit-learn is unavailable here, so this is a faithful implementation of
the exact (O(n^2)) algorithm: perplexity-calibrated Gaussian affinities in
the input space, Student-t affinities in the embedding, KL-divergence
gradient descent with momentum and early exaggeration.  Fine for the
few-hundred-point clouds the figure uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    sq = np.sum(x**2, axis=1)
    d = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    np.maximum(d, 0.0, out=d)
    return d


def _binary_search_betas(
    dists: np.ndarray, perplexity: float, tol: float = 1e-5, max_iter: int = 50
) -> np.ndarray:
    """Per-point precision (beta = 1/2sigma^2) matching the target perplexity."""
    n = dists.shape[0]
    target_entropy = np.log(perplexity)
    betas = np.ones(n)
    for i in range(n):
        beta, beta_min, beta_max = 1.0, -np.inf, np.inf
        row = np.delete(dists[i], i)
        for _ in range(max_iter):
            p = np.exp(-row * beta)
            total = p.sum()
            if total <= 0:
                entropy = 0.0
                p_norm = np.zeros_like(p)
            else:
                p_norm = p / total
                entropy = -np.sum(p_norm * np.log(np.maximum(p_norm, 1e-12)))
            diff = entropy - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> narrower kernel
                beta_min = beta
                beta = beta * 2.0 if beta_max == np.inf else 0.5 * (beta + beta_max)
            else:
                beta_max = beta
                beta = beta / 2.0 if beta_min == -np.inf else 0.5 * (beta + beta_min)
        betas[i] = beta
    return betas


def _joint_probabilities(x: np.ndarray, perplexity: float) -> np.ndarray:
    dists = _pairwise_sq_dists(x)
    betas = _binary_search_betas(dists, perplexity)
    n = x.shape[0]
    p = np.exp(-dists * betas[:, None])
    np.fill_diagonal(p, 0.0)
    row_sums = p.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0] = 1.0
    p /= row_sums
    p = (p + p.T) / (2.0 * n)
    return np.maximum(p, 1e-12)


@dataclass
class TSNE:
    """Exact t-SNE embedder."""

    n_components: int = 2
    perplexity: float = 30.0
    learning_rate: float = 100.0
    n_iter: int = 400
    early_exaggeration: float = 4.0
    exaggeration_iters: int = 100
    momentum: float = 0.8
    seed: int = 0

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Embed rows of ``x`` into ``n_components`` dimensions."""
        x = np.asarray(x, dtype=np.float64)
        n = x.shape[0]
        if n < 3:
            raise ValueError("t-SNE needs at least 3 points")
        if self.perplexity >= n:
            raise ValueError("perplexity must be < number of points")

        p = _joint_probabilities(x, self.perplexity)
        rng = np.random.default_rng(self.seed)
        y = rng.normal(0.0, 1e-4, size=(n, self.n_components))
        velocity = np.zeros_like(y)

        for iteration in range(self.n_iter):
            exaggeration = (
                self.early_exaggeration if iteration < self.exaggeration_iters else 1.0
            )
            d_y = _pairwise_sq_dists(y)
            q_num = 1.0 / (1.0 + d_y)
            np.fill_diagonal(q_num, 0.0)
            q = np.maximum(q_num / q_num.sum(), 1e-12)

            pq = (exaggeration * p - q) * q_num
            grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)

            velocity = self.momentum * velocity - self.learning_rate * grad
            y += velocity
            y -= y.mean(axis=0)
        return y

    def kl_divergence(self, x: np.ndarray, y: np.ndarray) -> float:
        """KL(P || Q) of an embedding (quality diagnostic)."""
        p = _joint_probabilities(np.asarray(x, dtype=np.float64), self.perplexity)
        d_y = _pairwise_sq_dists(np.asarray(y, dtype=np.float64))
        q_num = 1.0 / (1.0 + d_y)
        np.fill_diagonal(q_num, 0.0)
        q = np.maximum(q_num / q_num.sum(), 1e-12)
        return float(np.sum(p * np.log(p / q)))

"""Latent-space analysis tools (Sec. V-B: smoothness and locality).

* :mod:`repro.analysis.tsne` -- exact t-SNE (van der Maaten & Hinton 2008),
  reimplemented on numpy, used for the Fig. 2 projections,
* :mod:`repro.analysis.projection` -- PCA fallback projection,
* :mod:`repro.analysis.neighborhood` -- bounded sampling around pivot
  passwords (Table V) and neighbourhood clouds for Fig. 2.
"""

from repro.analysis.tsne import TSNE
from repro.analysis.projection import PCA
from repro.analysis.diversity import DiversityReport, compare_to_corpus, top_structures
from repro.analysis.neighborhood import (
    neighborhood_cloud,
    neighborhood_samples,
    sigma_sweep,
)

__all__ = [
    "TSNE",
    "PCA",
    "neighborhood_samples",
    "neighborhood_cloud",
    "sigma_sweep",
    "DiversityReport",
    "compare_to_corpus",
    "top_structures",
]

"""One-hot password encoding.

PassGAN and the Pasquini et al. GAN operate on one-hot character matrices
(the generator emits a per-position distribution over the alphabet; the
paper's Sec. VI-B "stochastic smoothing" perturbs exactly this
representation).  This codec provides that representation for the GAN/CWAE
baselines, complementing the numeric bin encoding PassFlow itself uses
(Sec. IV-D).

Layout: a password becomes an (L, V) matrix flattened to length L*V, where
V includes the PAD symbol at index 0.  ``decode`` accepts *soft* rows
(probabilities or logits) and takes the per-position argmax, which is how
GAN generator outputs are read back into strings.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.data.alphabet import Alphabet


class OneHotEncoder:
    """Fixed-length one-hot codec for passwords."""

    def __init__(self, alphabet: Alphabet, max_length: int = 10) -> None:
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        self.alphabet = alphabet
        self.max_length = int(max_length)
        self.vocab_size = len(alphabet)  # includes PAD
        self.flat_dim = self.max_length * self.vocab_size

    # ------------------------------------------------------------------
    def encode(self, password: str) -> np.ndarray:
        """Password -> flat one-hot vector of length L*V."""
        if len(password) > self.max_length:
            raise ValueError(
                f"password longer than max_length={self.max_length}: {password!r}"
            )
        matrix = np.zeros((self.max_length, self.vocab_size))
        for position in range(self.max_length):
            if position < len(password):
                matrix[position, self.alphabet.index_of(password[position])] = 1.0
            else:
                matrix[position, Alphabet.PAD_INDEX] = 1.0
        return matrix.ravel()

    def encode_batch(self, passwords: Iterable[str]) -> np.ndarray:
        """Passwords -> (N, L*V) one-hot matrix."""
        rows = [self.encode(p) for p in passwords]
        if not rows:
            return np.empty((0, self.flat_dim))
        return np.stack(rows)

    # ------------------------------------------------------------------
    def decode(self, flat: np.ndarray) -> str:
        """Flat (possibly soft) vector -> password via per-position argmax."""
        flat = np.asarray(flat, dtype=np.float64)
        if flat.size != self.flat_dim:
            raise ValueError(f"expected length {self.flat_dim}, got {flat.size}")
        matrix = flat.reshape(self.max_length, self.vocab_size)
        indices = matrix.argmax(axis=1)
        chars: List[str] = []
        for index in indices:
            if index == Alphabet.PAD_INDEX:
                break
            chars.append(self.alphabet.char_at(int(index)))
        return "".join(chars)

    def decode_batch(self, flats: np.ndarray) -> List[str]:
        """(N, L*V) soft matrix -> passwords."""
        flats = np.atleast_2d(np.asarray(flats))
        return [self.decode(row) for row in flats]

    def smooth(self, onehot: np.ndarray, rng: np.random.Generator, gamma: float = 0.01) -> np.ndarray:
        """Pasquini-style stochastic smoothing of one-hot rows.

        Adds uniform noise U(0, gamma) to every coordinate and renormalizes
        each position to sum to one -- the trick that stabilizes long GAN
        training (Sec. VI-B).
        """
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        noisy = np.asarray(onehot, dtype=np.float64) + rng.uniform(
            0.0, gamma, size=np.shape(onehot)
        )
        shaped = noisy.reshape(-1, self.max_length, self.vocab_size)
        shaped = shaped / shaped.sum(axis=2, keepdims=True)
        return shaped.reshape(np.shape(onehot))

"""Corpus statistics: the numbers behind the RockYou substitution.

DESIGN.md claims the synthetic corpus preserves the structural properties
real leaks have (heavy Zipfian head, short lengths, word+digit structure).
This module computes those properties so the claim is checkable:

* rank-frequency (Zipf) exponent of the corpus head,
* duplication and head-mass statistics,
* length and character-class histograms,
* per-position character entropy (the local structure flows exploit).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class CorpusStatistics:
    """Summary of a password corpus."""

    size: int
    unique: int
    duplication_rate: float        # 1 - unique/size
    top10_mass: float              # probability mass of the 10 most common
    zipf_exponent: float           # fitted rank-frequency slope
    mean_length: float
    length_histogram: Dict[int, float]
    charclass_mix: Dict[str, float]
    positional_entropy: List[float]  # bits per character position


def zipf_exponent(counts: Sequence[int], head: int = 100) -> float:
    """Least-squares slope of log-frequency vs log-rank over the head.

    Real leaks sit around s in [0.7, 1.2]; a uniform corpus gives ~0.
    """
    counts = sorted(counts, reverse=True)[:head]
    if len(counts) < 3:
        raise ValueError("need at least 3 distinct passwords for a Zipf fit")
    ranks = np.arange(1, len(counts) + 1, dtype=np.float64)
    freqs = np.asarray(counts, dtype=np.float64)
    slope, _ = np.polyfit(np.log(ranks), np.log(freqs), 1)
    return float(-slope)


def positional_entropy(passwords: Sequence[str], max_length: int = 10) -> List[float]:
    """Shannon entropy (bits) of the character at each position.

    Padding counts as a symbol, so trailing positions of short corpora show
    low entropy -- exactly the structure the flow's PAD bins must learn.
    """
    entropies = []
    for position in range(max_length):
        counter = Counter(p[position] if position < len(p) else "\x00" for p in passwords)
        total = sum(counter.values())
        probs = np.array([c / total for c in counter.values()])
        entropies.append(float(-(probs * np.log2(probs)).sum()))
    return entropies


def charclass_mix(passwords: Sequence[str]) -> Dict[str, float]:
    """Fraction of letters / digits / symbols across all characters."""
    counter: Counter = Counter()
    for password in passwords:
        for ch in password:
            if ch.isalpha():
                counter["letter"] += 1
            elif ch.isdigit():
                counter["digit"] += 1
            else:
                counter["symbol"] += 1
    total = sum(counter.values())
    if total == 0:
        raise ValueError("corpus has no characters")
    return {k: v / total for k, v in sorted(counter.items())}


def length_histogram(passwords: Sequence[str]) -> Dict[int, float]:
    """Normalized histogram of password lengths."""
    counter = Counter(len(p) for p in passwords)
    total = sum(counter.values())
    return {k: v / total for k, v in sorted(counter.items())}


def head_mass(counter: Counter, top: int = 10) -> float:
    """Probability mass of the ``top`` most common passwords."""
    total = sum(counter.values())
    return sum(c for _, c in counter.most_common(top)) / total


def summarize(passwords: Sequence[str], max_length: int = 10) -> CorpusStatistics:
    """Compute the full :class:`CorpusStatistics` summary."""
    passwords = [p for p in passwords if p]
    if not passwords:
        raise ValueError("corpus is empty")
    counter = Counter(passwords)
    lengths = [len(p) for p in passwords]
    return CorpusStatistics(
        size=len(passwords),
        unique=len(counter),
        duplication_rate=1.0 - len(counter) / len(passwords),
        top10_mass=head_mass(counter, 10),
        zipf_exponent=zipf_exponent(list(counter.values())),
        mean_length=float(np.mean(lengths)),
        length_histogram=length_histogram(passwords),
        charclass_mix=charclass_mix(passwords),
        positional_entropy=positional_entropy(passwords, max_length),
    )


def compare(a: CorpusStatistics, b: CorpusStatistics) -> Dict[str, Tuple[float, float]]:
    """Side-by-side scalar comparison of two corpora."""
    return {
        "duplication_rate": (a.duplication_rate, b.duplication_rate),
        "top10_mass": (a.top10_mass, b.top10_mass),
        "zipf_exponent": (a.zipf_exponent, b.zipf_exponent),
        "mean_length": (a.mean_length, b.mean_length),
    }

"""Dataset assembly: the paper's 80/20 split and test-set cleaning.

Sec. IV-D: the corpus is split 80/20; a small subset of the training side
(300K of ~23.5M) actually trains PassFlow; the test side is cleaned by
"removing duplicates and intersection with the training set" so match rates
measure generalization rather than memorization.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence, Set, Tuple

import numpy as np

from repro.data.encoding import PasswordEncoder


def train_test_split(
    passwords: Sequence[str],
    rng: np.random.Generator,
    train_fraction: float = 0.8,
) -> Tuple[List[str], List[str]]:
    """Shuffle and split a corpus into train/test multisets."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    order = rng.permutation(len(passwords))
    cut = int(round(len(passwords) * train_fraction))
    train = [passwords[i] for i in order[:cut]]
    test = [passwords[i] for i in order[cut:]]
    return train, test


def clean_test_set(test: Sequence[str], train: Sequence[str]) -> List[str]:
    """Deduplicate the test set and remove its intersection with training.

    This is exactly the cleaning of Sec. IV-D / Sec. V-A, "to provide a
    precise evaluation of the generalization performance of the models,
    excluding potential overfitting artifacts".
    """
    train_set = set(train)
    seen: Set[str] = set()
    cleaned: List[str] = []
    for password in test:
        if password in train_set or password in seen:
            continue
        seen.add(password)
        cleaned.append(password)
    return cleaned


@dataclass
class DatasetStats:
    """Summary statistics of an assembled dataset."""

    train_size: int
    test_size_raw: int
    test_size_clean: int
    train_unique: int
    mean_length: float


class PasswordDataset:
    """A train corpus + cleaned test set + encoder, with batch iteration.

    Parameters
    ----------
    train:
        Training passwords (multiset; duplicates inform the density model).
    test_raw:
        Raw held-out passwords; cleaned on construction.
    encoder:
        The numeric codec shared by every model in an experiment.
    test_filter:
        Optional predicate applied to the *cleaned* test set (e.g. a
        :meth:`repro.scenarios.policy.CompositionPolicy.conforms` bound
        method), so match rates under a composition policy are computed
        against the policy-conformant target slice only.  The training
        side is never filtered -- models train on the raw corpus.
    """

    def __init__(
        self,
        train: Sequence[str],
        test_raw: Sequence[str],
        encoder: PasswordEncoder,
        test_filter: Callable[[str], bool] | None = None,
    ) -> None:
        self.encoder = encoder
        self.train = list(train)
        self.test_raw = list(test_raw)
        self.test = clean_test_set(self.test_raw, self.train)
        if test_filter is not None:
            self.test = [p for p in self.test if test_filter(p)]
        if not self.train:
            raise ValueError("training set is empty")
        self._train_features: np.ndarray | None = None

    @property
    def train_features(self) -> np.ndarray:
        """(N, D) float matrix of the training passwords (cached)."""
        if self._train_features is None:
            self._train_features = self.encoder.encode_batch(self.train)
        return self._train_features

    @property
    def test_set(self) -> Set[str]:
        """The cleaned test set as a set (the Omega of Algorithm 1)."""
        return set(self.test)

    def stats(self) -> DatasetStats:
        """Compute summary statistics."""
        lengths = [len(p) for p in self.train]
        return DatasetStats(
            train_size=len(self.train),
            test_size_raw=len(self.test_raw),
            test_size_clean=len(self.test),
            train_unique=len(set(self.train)),
            mean_length=float(np.mean(lengths)),
        )

    def frequency_table(self, top: int = 20) -> List[Tuple[str, int]]:
        """Most common training passwords (the corpus head)."""
        return Counter(self.train).most_common(top)

    def batches(
        self,
        batch_size: int,
        rng: np.random.Generator,
        dequantize: bool = True,
    ) -> Iterator[np.ndarray]:
        """Yield shuffled (B, D) feature batches for one epoch.

        Dequantization noise is freshly sampled per epoch, as required for
        the continuous flow to see the full within-bin mass.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        features = self.train_features
        order = rng.permutation(len(features))
        for start in range(0, len(features), batch_size):
            batch = features[order[start : start + batch_size]]
            if dequantize:
                batch = self.encoder.dequantize(batch, rng)
            yield batch

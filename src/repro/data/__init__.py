"""Password data pipeline.

Implements everything Sec. IV-D describes around data handling:

* :mod:`repro.data.alphabet` -- the character set and index mapping,
* :mod:`repro.data.encoding` -- password <-> normalized numeric feature
  vectors ("we convert the passwords in feature vectors that contain their
  numerical representation and then we normalize by the size of the
  alphabet"), including the uniform dequantization needed to train a
  continuous flow on discrete symbols,
* :mod:`repro.data.synthetic` -- a seeded generator producing a RockYou-like
  corpus (substitution for the real leak, which we do not ship; see
  DESIGN.md),
* :mod:`repro.data.rockyou` -- loader for a real ``rockyou.txt`` when the
  user provides one,
* :mod:`repro.data.dataset` -- the 80/20 split with test-set cleaning
  (dedup + removal of the train intersection) exactly as the paper does,
* :mod:`repro.data.mangling` -- word-mangling rules shared by the synthetic
  generator and the rule-based baseline.
"""

from repro.data.alphabet import Alphabet, default_alphabet
from repro.data.encoding import PasswordEncoder
from repro.data.synthetic import SyntheticConfig, SyntheticRockYou
from repro.data.rockyou import load_password_file
from repro.data.dataset import PasswordDataset, clean_test_set, train_test_split

__all__ = [
    "Alphabet",
    "default_alphabet",
    "PasswordEncoder",
    "SyntheticConfig",
    "SyntheticRockYou",
    "load_password_file",
    "PasswordDataset",
    "train_test_split",
    "clean_test_set",
]

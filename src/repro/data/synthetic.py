"""Synthetic RockYou-like password corpus.

The paper evaluates on the RockYou leak, which we neither ship nor can
download offline.  This module is the documented substitution (DESIGN.md):
a seeded generator whose output mimics the structural properties of
human-chosen passwords that every model in the paper exploits:

* a heavy head of extremely common passwords ("123456", "password", ...),
  sampled with Zipfian frequencies like a real leak,
* a long tail of name/word stems mangled with digit, year and symbol
  suffixes, capitalization and leet substitutions,
* digit-only PINs and keyboard walks,
* natural duplicates (the raw corpus is a multiset, as a real dump is).

Passwords are guaranteed representable in the target alphabet and at most
``max_length`` characters (Sec. IV-D trains on length <= 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.data.alphabet import Alphabet, default_alphabet
from repro.data import mangling

# Head of the real RockYou frequency table (public knowledge; no user data).
COMMON_HEAD = [
    "123456", "12345", "123456789", "password", "iloveyou", "princess",
    "1234567", "rockyou", "12345678", "abc123", "nicole", "daniel",
    "babygirl", "monkey", "lovely", "jessica", "654321", "michael",
    "ashley", "qwerty", "111111", "iloveu", "000000", "michelle",
    "tigger", "sunshine", "chocolate", "password1", "soccer", "anthony",
    "friends", "butterfly", "purple", "angel", "jordan", "liverpool",
    "justin", "loveme", "fuckyou", "123123", "football", "secret",
    "andrea", "carlos", "jennifer", "joshua", "bubbles", "1234567890",
    "superman", "hannah", "amanda", "loveyou", "pretty", "basketball",
    "andrew", "angels", "tweety", "flower", "playboy", "hello",
]

NAMES = [
    "james", "john", "robert", "mary", "patricia", "linda", "barbara",
    "elizabeth", "jenny", "maria", "susan", "margaret", "dorothy", "lisa",
    "nancy", "karen", "betty", "helen", "sandra", "donna", "carol", "ruth",
    "sharon", "laura", "sarah", "kim", "deborah", "jason", "matthew",
    "gary", "timothy", "jose", "larry", "jeffrey", "frank", "scott",
    "eric", "stephen", "jacob", "raymond", "patrick", "sean", "adam",
    "jerry", "dennis", "tyler", "samuel", "gregory", "henry", "douglas",
    "peter", "zachary", "kyle", "walter", "harold", "carl", "jeremy",
    "keith", "roger", "arthur", "terry", "lawrence", "jesse", "alan",
    "bryan", "louis", "billy", "bruce", "bobby", "diana", "emma", "lucas",
    "sofia", "diego", "valeria", "camila", "mateo", "pablo", "lucia",
    "marco", "elena", "ivan", "olga", "dmitri", "yuki", "hana", "kenji",
    "mei", "wei", "ling", "raj", "priya", "amit", "fatima", "omar",
    "layla", "ahmed", "chloe", "louise", "manon", "hugo", "lea",
]

WORDS = [
    "love", "baby", "angel", "heart", "girl", "friend", "family", "happy",
    "smile", "dream", "music", "dance", "star", "moon", "summer", "winter",
    "spring", "autumn", "shadow", "dragon", "tiger", "eagle", "wolf",
    "panda", "kitty", "puppy", "bunny", "candy", "sugar", "honey", "cookie",
    "banana", "apple", "cherry", "mango", "peach", "berry", "pepper",
    "ginger", "coffee", "pizza", "soccer", "hockey", "tennis", "boxing",
    "racing", "gamer", "ninja", "pirate", "wizard", "knight", "queen",
    "king", "prince", "diamond", "silver", "golden", "purple", "orange",
    "yellow", "green", "black", "white", "pink", "blue", "red", "crazy",
    "sweet", "cute", "sexy", "cool", "rock", "metal", "guitar", "piano",
    "beach", "ocean", "river", "mountain", "forest", "storm", "thunder",
    "light", "spirit", "legend", "master", "hunter", "rider", "flying",
    "magic", "lucky", "crystal", "flame", "frozen", "velvet", "cosmic",
]

KEYBOARD_WALKS = [
    "qwerty", "qwertyuiop", "asdfgh", "asdfghjkl", "zxcvbnm", "qazwsx",
    "1q2w3e4r", "1qaz2wsx", "q1w2e3r4", "zaq12wsx", "qweasd", "poiuyt",
]


@dataclass
class SyntheticConfig:
    """Knobs of the corpus generator.

    ``pattern_weights`` control the mixture of generation patterns; they are
    normalized internally so any positive numbers work.  ``zipf_exponent``
    shapes the rank-frequency curve of word/name stems.
    """

    max_length: int = 10
    zipf_exponent: float = 1.05
    vocabulary_size: int | None = None  # slice of the word/name lists, None = all
    max_suffix_digits: int = 4
    pattern_weights: Dict[str, float] = field(
        default_factory=lambda: {
            "head": 0.14,
            "word": 0.08,
            "name": 0.07,
            "word_digits": 0.19,
            "name_digits": 0.16,
            "word_year": 0.08,
            "leet_word": 0.05,
            "capitalized_digits": 0.07,
            "digits_only": 0.08,
            "two_words": 0.04,
            "keyboard_walk": 0.04,
        }
    )


class SyntheticRockYou:
    """Seeded generator of a RockYou-like password multiset."""

    def __init__(
        self,
        rng: np.random.Generator,
        config: SyntheticConfig | None = None,
        alphabet: Alphabet | None = None,
    ) -> None:
        self.rng = rng
        self.config = config or SyntheticConfig()
        self.alphabet = alphabet or default_alphabet()
        weights = self.config.pattern_weights
        if not weights:
            raise ValueError("pattern_weights must not be empty")
        if any(w < 0 for w in weights.values()):
            raise ValueError("pattern_weights must be non-negative")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("pattern_weights must sum to a positive value")
        self._patterns = list(weights)
        self._probs = np.array([weights[p] / total for p in self._patterns])
        self._zipf_cache: Dict[int, np.ndarray] = {}
        cut = self.config.vocabulary_size
        if cut is not None and cut < 1:
            raise ValueError("vocabulary_size must be >= 1")
        self._words = WORDS if cut is None else WORDS[:cut]
        self._names = NAMES if cut is None else NAMES[:cut]

    # ------------------------------------------------------------------
    # sampling helpers
    # ------------------------------------------------------------------
    def _zipf_probs(self, n: int) -> np.ndarray:
        if n not in self._zipf_cache:
            ranks = np.arange(1, n + 1, dtype=np.float64)
            weights = ranks ** (-self.config.zipf_exponent)
            self._zipf_cache[n] = weights / weights.sum()
        return self._zipf_cache[n]

    def _zipf_choice(self, items: Sequence[str]) -> str:
        probs = self._zipf_probs(len(items))
        return items[int(self.rng.choice(len(items), p=probs))]

    def _fit(self, password: str) -> str:
        """Truncate to max_length and coerce into the alphabet.

        Characters outside the alphabet are first lowercased (so a compact
        lowercase alphabet keeps capitalized patterns as their lowercase
        form rather than mangling them) and dropped only as a last resort.
        """
        trimmed = password[: self.config.max_length]
        out = []
        for ch in trimmed:
            if ch in self.alphabet:
                out.append(ch)
            elif ch.lower() in self.alphabet:
                out.append(ch.lower())
        return "".join(out)

    # ------------------------------------------------------------------
    # patterns
    # ------------------------------------------------------------------
    def _pattern_head(self) -> str:
        return self._zipf_choice(COMMON_HEAD)

    def _pattern_word(self) -> str:
        return self._zipf_choice(self._words)

    def _pattern_name(self) -> str:
        return self._zipf_choice(self._names)

    def _pattern_word_digits(self) -> str:
        return mangling.append_digits(self._zipf_choice(self._words), self.rng, max_digits=self.config.max_suffix_digits)

    def _pattern_name_digits(self) -> str:
        return mangling.append_digits(self._zipf_choice(self._names), self.rng, max_digits=self.config.max_suffix_digits)

    def _pattern_word_year(self) -> str:
        stem = self._zipf_choice(self._words + self._names)
        return mangling.append_year(stem, self.rng)

    def _pattern_leet_word(self) -> str:
        return mangling.leet_partial(self._zipf_choice(self._words), self.rng, probability=0.6)

    def _pattern_capitalized_digits(self) -> str:
        stem = mangling.capitalize(self._zipf_choice(self._words + self._names))
        return mangling.append_digits(stem, self.rng, max_digits=min(3, self.config.max_suffix_digits))

    def _pattern_digits_only(self) -> str:
        length = int(self.rng.integers(4, 9))
        if self.rng.random() < 0.3:  # repeated/sequential PINs are common
            digit = str(self.rng.integers(0, 10))
            return digit * length
        start = int(self.rng.integers(0, 10))
        return "".join(str((start + i) % 10) for i in range(length))

    def _pattern_two_words(self) -> str:
        first = self._zipf_choice(self._words)
        second = self._zipf_choice(self._words)
        return first + second

    def _pattern_keyboard_walk(self) -> str:
        walk = str(self.rng.choice(KEYBOARD_WALKS))
        if self.rng.random() < 0.3:
            walk = mangling.append_digits(walk, self.rng, max_digits=2)
        return walk

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def sample(self) -> str:
        """Draw one password (never empty, always representable)."""
        for _ in range(32):
            pattern = self._patterns[int(self.rng.choice(len(self._patterns), p=self._probs))]
            raw = getattr(self, f"_pattern_{pattern}")()
            fitted = self._fit(raw)
            if fitted:
                return fitted
        raise RuntimeError("synthetic generator failed to produce a password")

    def generate(self, count: int) -> List[str]:
        """Draw ``count`` passwords (a multiset; duplicates are expected)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample() for _ in range(count)]

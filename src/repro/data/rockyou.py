"""Loader for real password files (e.g. the user's own ``rockyou.txt``).

The repository ships no leaked data; when a user has a local copy of the
RockYou file (or any newline-separated password list) this loader applies
the same filtering the paper does: keep passwords of length <= 10 that are
representable in the chosen alphabet.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.data.alphabet import Alphabet, default_alphabet
from repro.utils.logging import get_logger

logger = get_logger("data.rockyou")


def load_password_file(
    path: str | Path,
    alphabet: Optional[Alphabet] = None,
    max_length: int = 10,
    limit: Optional[int] = None,
    encoding: str = "latin-1",
) -> List[str]:
    """Read a newline-separated password list, applying Sec. IV-D filtering.

    Parameters
    ----------
    path:
        File to read.  RockYou is traditionally latin-1 encoded.
    alphabet:
        Characters to allow (default: the library's full alphabet).
    max_length:
        Maximum password length to keep (paper: 10).
    limit:
        Optional cap on the number of *kept* passwords (reads lazily).
    """
    alphabet = alphabet or default_alphabet()
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"password file not found: {path}")

    kept: List[str] = []
    dropped = 0
    with path.open("r", encoding=encoding, errors="ignore") as handle:
        for line in handle:
            password = line.rstrip("\r\n")
            if not password or len(password) > max_length:
                dropped += 1
                continue
            if not alphabet.is_representable(password):
                dropped += 1
                continue
            kept.append(password)
            if limit is not None and len(kept) >= limit:
                break
    logger.info("loaded %d passwords from %s (%d dropped)", len(kept), path, dropped)
    return kept

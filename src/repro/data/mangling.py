"""Word-mangling rules.

The synthetic RockYou generator applies these rules to base words to emulate
how humans derive passwords; the same rule engine doubles as the HashCat/JTR
style rule-based dimension referenced throughout the paper's related work.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

LEET_MAP = {
    "a": "4",
    "e": "3",
    "i": "1",
    "o": "0",
    "s": "5",
    "t": "7",
    "b": "8",
    "g": "9",
}


def identity(word: str) -> str:
    """Leave the word unchanged."""
    return word


def capitalize(word: str) -> str:
    """Uppercase the first character."""
    return word[:1].upper() + word[1:] if word else word


def uppercase(word: str) -> str:
    """Uppercase the whole word."""
    return word.upper()


def reverse(word: str) -> str:
    """Reverse the word."""
    return word[::-1]


def leet(word: str) -> str:
    """Full leet-speak substitution (a->4, e->3, ...)."""
    return "".join(LEET_MAP.get(ch, ch) for ch in word)


def leet_partial(word: str, rng: np.random.Generator, probability: float = 0.5) -> str:
    """Substitute each leet-able character independently with ``probability``."""
    out = []
    for ch in word:
        if ch in LEET_MAP and rng.random() < probability:
            out.append(LEET_MAP[ch])
        else:
            out.append(ch)
    return "".join(out)


def append_digits(word: str, rng: np.random.Generator, max_digits: int = 4) -> str:
    """Append 1..max_digits random digits (skewed toward fewer digits)."""
    count = 1 + int(rng.geometric(0.55) - 1)
    count = min(count, max_digits)
    digits = "".join(str(rng.integers(0, 10)) for _ in range(count))
    return word + digits


def append_year(word: str, rng: np.random.Generator) -> str:
    """Append a plausible birth/graduation year (2- or 4-digit)."""
    year = int(rng.integers(1950, 2023))
    if rng.random() < 0.5:
        return word + str(year)
    return word + str(year)[2:]


def append_symbol(word: str, rng: np.random.Generator) -> str:
    """Append one common trailing symbol."""
    return word + str(rng.choice(list("!.@#*_-?")))


DETERMINISTIC_RULES: Dict[str, Callable[[str], str]] = {
    "identity": identity,
    "capitalize": capitalize,
    "uppercase": uppercase,
    "reverse": reverse,
    "leet": leet,
}

#: Rules that draw from an rng; one call produces one variant.  The
#: ``mangle(<spec>)`` wrapper strategy gives each (rule, word) pair its
#: own named sub-stream, so variants are chunk-order independent.
STOCHASTIC_RULES: Dict[str, Callable[[str, np.random.Generator], str]] = {
    "leet_partial": leet_partial,
    "append_digits": append_digits,
    "append_year": append_year,
    "append_symbol": append_symbol,
}

#: Every rule name addressable from a ``mangle(...)?rules=`` spec.
RULE_NAMES: Tuple[str, ...] = tuple(DETERMINISTIC_RULES) + tuple(STOCHASTIC_RULES)


def apply_rule(
    name: str, word: str, rng: Optional[np.random.Generator] = None
) -> str:
    """Apply one named rule; stochastic rules require ``rng``."""
    if name in DETERMINISTIC_RULES:
        return DETERMINISTIC_RULES[name](word)
    if name in STOCHASTIC_RULES:
        if rng is None:
            raise ValueError(f"rule {name!r} is stochastic and needs an rng")
        return STOCHASTIC_RULES[name](word, rng)
    raise KeyError(
        f"unknown mangling rule {name!r} (known: {', '.join(RULE_NAMES)})"
    )


class RuleEngine:
    """Apply mangling-rule chains to a wordlist, HashCat-style.

    ``expand`` generates, for each word, the word under every deterministic
    rule plus ``samples_per_word`` stochastic variants; this is the
    rule-based guess generator used as an extra baseline.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def stochastic_variant(self, word: str) -> str:
        """One random mangling chain applied to ``word``."""
        base = word
        roll = self.rng.random()
        if roll < 0.25:
            base = capitalize(base)
        elif roll < 0.35:
            base = leet_partial(base, self.rng)
        suffix_roll = self.rng.random()
        if suffix_roll < 0.45:
            base = append_digits(base, self.rng)
        elif suffix_roll < 0.70:
            base = append_year(base, self.rng)
        elif suffix_roll < 0.80:
            base = append_symbol(base, self.rng)
        return base

    def expand(self, words: List[str], samples_per_word: int = 4) -> List[str]:
        """Deterministic rules + stochastic variants for every word."""
        guesses: List[str] = []
        for word in words:
            for rule in DETERMINISTIC_RULES.values():
                guesses.append(rule(word))
            for _ in range(samples_per_word):
                guesses.append(self.stochastic_variant(word))
        return guesses

"""Password <-> feature-vector encoding.

Sec. IV-D: "Before feeding the data for training we convert the passwords in
feature vectors that contain their numerical representation and then we
normalize by the size of the alphabet."

A password of length <= D becomes a length-D integer vector of alphabet
indices (PAD-filled), then a float vector by mapping index ``k`` to the bin
center ``(k + 0.5) / V`` where ``V = len(alphabet)`` (PAD included).  Each
symbol therefore owns a width-``1/V`` bin in (0, 1); decoding is binning.

Training a continuous-density flow on discrete symbols requires
dequantization (spreading each symbol's probability mass over its bin);
:meth:`PasswordEncoder.dequantize` adds uniform noise within the bin, the
same device Pasquini et al. [33] use for their GAN and the standard practice
for flows on discrete data.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.data.alphabet import Alphabet


class PasswordEncoder:
    """Fixed-length numeric codec for passwords.

    Parameters
    ----------
    alphabet:
        The symbol set.
    max_length:
        Model dimensionality D; the paper uses 10.
    """

    def __init__(self, alphabet: Alphabet, max_length: int = 10) -> None:
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        self.alphabet = alphabet
        self.max_length = int(max_length)
        self.vocab_size = len(alphabet)  # includes PAD
        self.bin_width = 1.0 / self.vocab_size

    # ------------------------------------------------------------------
    # string <-> indices
    # ------------------------------------------------------------------
    def to_indices(self, password: str) -> np.ndarray:
        """Integer index vector, PAD-filled to ``max_length``."""
        if len(password) > self.max_length:
            raise ValueError(
                f"password longer than max_length={self.max_length}: {password!r}"
            )
        indices = np.full(self.max_length, Alphabet.PAD_INDEX, dtype=np.int64)
        for i, ch in enumerate(password):
            indices[i] = self.alphabet.index_of(ch)
        return indices

    def from_indices(self, indices: Sequence[int]) -> str:
        """Inverse of :meth:`to_indices`; stops at the first PAD."""
        chars: List[str] = []
        for index in indices:
            if index == Alphabet.PAD_INDEX:
                break
            chars.append(self.alphabet.char_at(int(index)))
        return "".join(chars)

    # ------------------------------------------------------------------
    # indices <-> floats
    # ------------------------------------------------------------------
    def indices_to_floats(self, indices: np.ndarray) -> np.ndarray:
        """Map indices to bin centers in (0, 1)."""
        return (np.asarray(indices, dtype=np.float64) + 0.5) * self.bin_width

    def floats_to_indices(self, values: np.ndarray) -> np.ndarray:
        """Bin float features back to alphabet indices (clipped to range)."""
        raw = np.floor(np.asarray(values, dtype=np.float64) * self.vocab_size)
        return np.clip(raw, 0, self.vocab_size - 1).astype(np.int64)

    # ------------------------------------------------------------------
    # batch-level convenience
    # ------------------------------------------------------------------
    def encode(self, password: str) -> np.ndarray:
        """Single password -> float feature vector of shape (D,)."""
        return self.indices_to_floats(self.to_indices(password))

    def encode_batch(self, passwords: Iterable[str]) -> np.ndarray:
        """Passwords -> (N, D) float matrix."""
        rows = [self.to_indices(p) for p in passwords]
        if not rows:
            return np.empty((0, self.max_length), dtype=np.float64)
        return self.indices_to_floats(np.stack(rows))

    def decode(self, values: np.ndarray) -> str:
        """Float feature vector -> password string."""
        return self.from_indices(self.floats_to_indices(values))

    def decode_batch(self, values: np.ndarray) -> List[str]:
        """(N, D) float matrix -> list of passwords."""
        values = np.atleast_2d(np.asarray(values))
        index_matrix = self.floats_to_indices(values)
        return [self.from_indices(row) for row in index_matrix]

    def dequantize(self, features: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Add uniform within-bin noise: U(-w/2, w/2) with w = bin width."""
        noise = rng.uniform(-0.5 * self.bin_width, 0.5 * self.bin_width, size=features.shape)
        return features + noise

    def clamp_to_data_range(self, values: np.ndarray) -> np.ndarray:
        """Clip floats into the open unit interval covered by the bins."""
        eps = 0.25 * self.bin_width
        return np.clip(values, eps, 1.0 - eps)

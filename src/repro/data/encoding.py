"""Password <-> feature-vector encoding.

Sec. IV-D: "Before feeding the data for training we convert the passwords in
feature vectors that contain their numerical representation and then we
normalize by the size of the alphabet."

A password of length <= D becomes a length-D integer vector of alphabet
indices (PAD-filled), then a float vector by mapping index ``k`` to the bin
center ``(k + 0.5) / V`` where ``V = len(alphabet)`` (PAD included).  Each
symbol therefore owns a width-``1/V`` bin in (0, 1); decoding is binning.

Training a continuous-density flow on discrete symbols requires
dequantization (spreading each symbol's probability mass over its bin);
:meth:`PasswordEncoder.dequantize` adds uniform noise within the bin, the
same device Pasquini et al. [33] use for their GAN and the standard practice
for flows on discrete data.

Decoding is a guessing-attack hot path (every generated guess passes
through it), so it is batch-vectorized: a character lookup table turns a
whole (N, D) index matrix into N strings in one numpy pass
(:meth:`PasswordEncoder.decode_batch`), with the original per-character
loop kept in :meth:`PasswordEncoder.from_indices` for single passwords.

For the accounting core's interned-id fast path, index rows can be
*canonicalized* (everything after the first PAD zeroed, so row <-> decoded
string is a bijection) and bit-packed into single uint64 keys
(:meth:`PasswordEncoder.pack_indices`), letting set membership over
millions of guesses run as integer array operations.  The inverse
(:meth:`PasswordEncoder.unpack_keys` / :meth:`PasswordEncoder.strings_from_keys`)
is exact, which is what lets the sharded runtime transport checkpoint
deltas as packed key arrays and materialize strings only on demand.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.data.alphabet import Alphabet


class PasswordEncoder:
    """Fixed-length numeric codec for passwords.

    Parameters
    ----------
    alphabet:
        The symbol set.
    max_length:
        Model dimensionality D; the paper uses 10.
    """

    def __init__(self, alphabet: Alphabet, max_length: int = 10) -> None:
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        self.alphabet = alphabet
        self.max_length = int(max_length)
        self.vocab_size = len(alphabet)  # includes PAD
        self.bin_width = 1.0 / self.vocab_size
        # vectorized-decode lookup table: index -> character ('' for PAD)
        self._char_lut = np.array(
            [alphabet.char_at(i) for i in range(self.vocab_size)], dtype="<U1"
        )
        # vectorized-encode lookup table: unicode code point -> index
        # (-1 marks out-of-alphabet; 0 is PAD / the NUL padding cell)
        top = max(ord(ch) for ch in alphabet.chars)
        self._codepoint_lut = np.full(top + 1, -1, dtype=np.int64)
        self._codepoint_lut[0] = Alphabet.PAD_INDEX
        for i, ch in enumerate(alphabet.chars):
            self._codepoint_lut[ord(ch)] = i + 1
        # interned-id packing: bits per symbol, None when a row of
        # max_length symbols cannot fit one uint64 key
        bits = int(self.vocab_size - 1).bit_length()
        self.pack_bits: Optional[int] = bits if bits * self.max_length <= 64 else None

    # ------------------------------------------------------------------
    # string <-> indices
    # ------------------------------------------------------------------
    def to_indices(self, password: str) -> np.ndarray:
        """Integer index vector, PAD-filled to ``max_length``."""
        if len(password) > self.max_length:
            raise ValueError(
                f"password longer than max_length={self.max_length}: {password!r}"
            )
        indices = np.full(self.max_length, Alphabet.PAD_INDEX, dtype=np.int64)
        for i, ch in enumerate(password):
            indices[i] = self.alphabet.index_of(ch)
        return indices

    def from_indices(self, indices: Sequence[int]) -> str:
        """Inverse of :meth:`to_indices`; stops at the first PAD."""
        chars: List[str] = []
        for index in indices:
            if index == Alphabet.PAD_INDEX:
                break
            chars.append(self.alphabet.char_at(int(index)))
        return "".join(chars)

    # ------------------------------------------------------------------
    # indices <-> floats
    # ------------------------------------------------------------------
    def indices_to_floats(self, indices: np.ndarray) -> np.ndarray:
        """Map indices to bin centers in (0, 1)."""
        return (np.asarray(indices, dtype=np.float64) + 0.5) * self.bin_width

    def floats_to_indices(self, values: np.ndarray) -> np.ndarray:
        """Bin float features back to alphabet indices (clipped to range)."""
        raw = np.floor(np.asarray(values, dtype=np.float64) * self.vocab_size)
        return np.clip(raw, 0, self.vocab_size - 1).astype(np.int64)

    # ------------------------------------------------------------------
    # batch-level convenience
    # ------------------------------------------------------------------
    def encode(self, password: str) -> np.ndarray:
        """Single password -> float feature vector of shape (D,)."""
        return self.indices_to_floats(self.to_indices(password))

    def encode_batch(self, passwords: Iterable[str]) -> np.ndarray:
        """Passwords -> (N, D) float matrix."""
        return self.indices_to_floats(self.indices_from_strings(passwords))

    def indices_from_strings(self, passwords: Iterable[str]) -> np.ndarray:
        """Passwords -> (N, D) index matrix, no per-character Python loop.

        Vectorized equivalent of :meth:`to_indices` per password: raises
        :class:`ValueError` for over-length passwords and :class:`KeyError`
        for out-of-alphabet characters, like the scalar path.
        """
        passwords = (
            passwords if isinstance(passwords, (list, tuple)) else list(passwords)
        )
        if not passwords:
            return np.empty((0, self.max_length), dtype=np.int64)
        raw = np.asarray(passwords)
        if raw.dtype.kind != "U":
            raise TypeError("passwords must be strings")
        if raw.dtype.itemsize // 4 > self.max_length:
            longest = max(passwords, key=len)
            raise ValueError(
                f"password longer than max_length={self.max_length}: {longest!r}"
            )
        padded = raw.astype(f"<U{self.max_length}")
        codepoints = padded.view(np.uint32).reshape(len(passwords), self.max_length)
        in_table = codepoints < self._codepoint_lut.size
        indices = np.where(
            in_table,
            self._codepoint_lut[np.minimum(codepoints, self._codepoint_lut.size - 1)],
            -1,
        )
        if (indices < 0).any():
            row, col = np.argwhere(indices < 0)[0]
            raise KeyError(f"character {passwords[row][col]!r} not in alphabet")
        if (indices != self._canonical(indices)).any():
            # a non-PAD index after a PAD cell means an embedded NUL
            raise KeyError(f"character {Alphabet.PAD_CHAR!r} not in alphabet")
        # trailing NULs vanish into numpy's U-dtype padding, so 'abc\0'
        # would otherwise alias 'abc': compare recovered vs true lengths
        recovered = (indices != Alphabet.PAD_INDEX).sum(axis=1)
        true_lengths = np.fromiter(map(len, passwords), dtype=np.int64, count=len(passwords))
        if (recovered != true_lengths).any():
            raise KeyError(f"character {Alphabet.PAD_CHAR!r} not in alphabet")
        return indices

    def decode(self, values: np.ndarray) -> str:
        """Float feature vector -> password string."""
        return self.from_indices(self.floats_to_indices(values))

    def decode_batch(self, values: np.ndarray) -> List[str]:
        """(N, D) float matrix -> list of passwords (one vectorized pass)."""
        values = np.atleast_2d(np.asarray(values))
        return self.strings_from_indices(self.floats_to_indices(values))

    def strings_from_indices(self, index_matrix: np.ndarray) -> List[str]:
        """(N, D) index matrix -> N passwords, no per-character Python loop.

        Vectorized equivalent of :meth:`from_indices` per row: characters
        after the first PAD are dropped.  Out-of-range indices must have
        been clipped already (as :meth:`floats_to_indices` guarantees).
        """
        index_matrix = np.atleast_2d(np.asarray(index_matrix, dtype=np.int64))
        if index_matrix.shape[0] == 0:
            return []
        chars = self._char_lut[self._canonical(index_matrix)]
        # (N, D) single-character cells concatenate into one fixed-width
        # string per row; masked cells are NUL, which only ever appears as
        # a suffix here and is stripped by the unicode view conversion
        width = index_matrix.shape[1]
        return chars.view(f"<U{width}").ravel().tolist()

    @staticmethod
    def _canonical(index_matrix: np.ndarray) -> np.ndarray:
        """Zero every position at or after a row's first PAD.

        Distinct raw rows can decode to the same string (decoding stops at
        the first PAD, so trailing symbols are dead); canonical rows are in
        bijection with decoded strings.
        """
        keep = np.logical_and.accumulate(index_matrix != Alphabet.PAD_INDEX, axis=1)
        return np.where(keep, index_matrix, Alphabet.PAD_INDEX)

    # ------------------------------------------------------------------
    # interned ids: canonical rows packed into uint64 keys
    # ------------------------------------------------------------------
    def pack_indices(self, index_matrix: np.ndarray) -> np.ndarray:
        """(N, D) index matrix -> N uint64 keys, one per password.

        Rows are canonicalized first, so ``pack_indices(a) == pack_indices(b)``
        exactly when the rows decode to the same string: the keys are
        collision-free interned ids, fit for exact vectorized set
        membership (:meth:`repro.core.guesser.GuessAccounting.observe_encoded`).
        Raises :class:`ValueError` when ``alphabet_bits * max_length > 64``
        (:attr:`pack_bits` is ``None``); callers fall back to strings.
        """
        if self.pack_bits is None:
            raise ValueError(
                f"cannot pack {self.max_length} symbols of "
                f"{self.vocab_size}-way alphabet into 64 bits"
            )
        index_matrix = np.atleast_2d(np.asarray(index_matrix, dtype=np.int64))
        canonical = self._canonical(index_matrix).astype(np.uint64)
        shifts = (
            np.arange(canonical.shape[1], dtype=np.uint64) * np.uint64(self.pack_bits)
        )
        return (canonical << shifts).sum(axis=1, dtype=np.uint64)

    def can_encode(self, password: str) -> bool:
        """Whether this codec can represent ``password`` at all."""
        return (
            len(password) <= self.max_length
            and Alphabet.PAD_CHAR not in password
            and self.alphabet.is_representable(password)
        )

    def pack_passwords(self, passwords: Iterable[str]) -> np.ndarray:
        """Passwords -> uint64 interned-id keys (one vectorized pass)."""
        indices = self.indices_from_strings(passwords)
        if not indices.size:
            return np.empty(0, dtype=np.uint64)
        return self.pack_indices(indices)

    def unpack_keys(self, keys: np.ndarray) -> np.ndarray:
        """uint64 keys -> (N, D) canonical index matrix (pack inverse)."""
        if self.pack_bits is None:
            raise ValueError("alphabet/max_length does not support packing")
        keys = np.asarray(keys, dtype=np.uint64).reshape(-1, 1)
        shifts = (
            np.arange(self.max_length, dtype=np.uint64) * np.uint64(self.pack_bits)
        )
        mask = np.uint64((1 << self.pack_bits) - 1)
        return ((keys >> shifts) & mask).astype(np.int64)

    def strings_from_keys(self, keys: np.ndarray) -> List[str]:
        """uint64 interned-id keys -> password strings (exact inverse).

        One vectorized unpack + decode pass; the lazy-materialization hook
        for :class:`~repro.core.guesser.KeyedCheckpointDelta` payloads.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return []
        return self.strings_from_indices(self.unpack_keys(keys))

    def dequantize(self, features: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Add uniform within-bin noise: U(-w/2, w/2) with w = bin width."""
        noise = rng.uniform(-0.5 * self.bin_width, 0.5 * self.bin_width, size=features.shape)
        return features + noise

    def clamp_to_data_range(self, values: np.ndarray) -> np.ndarray:
        """Clip floats into the open unit interval covered by the bins."""
        eps = 0.25 * self.bin_width
        return np.clip(values, eps, 1.0 - eps)

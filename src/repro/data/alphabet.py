"""Character alphabet: the symbol set passwords are drawn from.

Index 0 is reserved for the padding symbol that fills passwords shorter than
the model's fixed length (10, per Sec. IV-D).  Real characters occupy
indices ``1..len(chars)``.
"""

from __future__ import annotations

from typing import Iterable, List

LOWERCASE = "abcdefghijklmnopqrstuvwxyz"
UPPERCASE = LOWERCASE.upper()
DIGITS = "0123456789"
SYMBOLS = "!@#$%&*._-+?"


class Alphabet:
    """Bidirectional char <-> index mapping with a reserved PAD slot."""

    PAD_INDEX = 0
    PAD_CHAR = "\x00"

    def __init__(self, chars: str) -> None:
        if len(set(chars)) != len(chars):
            raise ValueError("alphabet contains duplicate characters")
        if self.PAD_CHAR in chars:
            raise ValueError("NUL is reserved for padding")
        if not chars:
            raise ValueError("alphabet must not be empty")
        self.chars = chars
        self._to_index = {ch: i + 1 for i, ch in enumerate(chars)}
        self._to_char = {i + 1: ch for i, ch in enumerate(chars)}

    def __len__(self) -> int:
        """Number of symbols including PAD (this is the normalization base)."""
        return len(self.chars) + 1

    def __contains__(self, ch: str) -> bool:
        return ch in self._to_index

    def index_of(self, ch: str) -> int:
        """Index of a character; raises KeyError for out-of-alphabet chars."""
        try:
            return self._to_index[ch]
        except KeyError:
            raise KeyError(f"character {ch!r} not in alphabet") from None

    def char_at(self, index: int) -> str:
        """Character at ``index``; PAD maps to the empty string."""
        if index == self.PAD_INDEX:
            return ""
        try:
            return self._to_char[index]
        except KeyError:
            raise KeyError(f"index {index} out of alphabet range") from None

    def is_representable(self, password: str) -> bool:
        """Whether every character of ``password`` is in the alphabet."""
        return all(ch in self._to_index for ch in password)

    def filter_representable(self, passwords: Iterable[str]) -> List[str]:
        """Keep only passwords fully covered by this alphabet."""
        return [p for p in passwords if self.is_representable(p)]


def default_alphabet() -> Alphabet:
    """Alphabet covering the character classes common in leaked corpora."""
    return Alphabet(LOWERCASE + UPPERCASE + DIGITS + SYMBOLS)


def compact_alphabet() -> Alphabet:
    """Smaller alphabet (lowercase + digits) for fast unit tests."""
    return Alphabet(LOWERCASE + DIGITS)

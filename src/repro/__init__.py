"""PassFlow reproduction: password guessing with generative flows.

A from-scratch (numpy-only) reproduction of *PassFlow: Guessing Passwords
with Generative Flows* (DSN 2022), including the full deep-learning
substrate, the flow architecture, the sampling strategies (static, Dynamic
Sampling with Penalization, Gaussian Smoothing), latent-space operations
(interpolation, neighbourhood exploration, conditional guessing), the
baselines the paper compares against, and an evaluation harness that
regenerates every table and figure of the paper.

Quickstart::

    import numpy as np
    from repro import PassFlow, PassFlowConfig
    from repro.data import PasswordDataset, SyntheticRockYou

    rng = np.random.default_rng(0)
    corpus = SyntheticRockYou(rng).generate(5000)
    model = PassFlow(PassFlowConfig.small())
    dataset = PasswordDataset(corpus[:4000], corpus[4000:], model.encoder)
    model.fit(dataset, epochs=10)
    print(model.sample_passwords(10))
"""

from repro.core import (
    ConditionalGuesser,
    DynamicSampler,
    DynamicSamplingConfig,
    GaussianSmoother,
    GuessingAttack,
    GuessingReport,
    PassFlow,
    PassFlowConfig,
    StaticSampler,
    StepPenalization,
    interpolate,
    paper_schedule,
)

__version__ = "1.0.0"

__all__ = [
    "PassFlow",
    "PassFlowConfig",
    "StaticSampler",
    "DynamicSampler",
    "DynamicSamplingConfig",
    "GaussianSmoother",
    "StepPenalization",
    "GuessingAttack",
    "GuessingReport",
    "ConditionalGuesser",
    "interpolate",
    "paper_schedule",
    "__version__",
]

"""PassFlow reproduction: password guessing with generative flows.

A from-scratch (numpy-only) reproduction of *PassFlow: Guessing Passwords
with Generative Flows* (DSN 2022), including the full deep-learning
substrate, the flow architecture, the sampling strategies (static, Dynamic
Sampling with Penalization, Gaussian Smoothing), latent-space operations
(interpolation, neighbourhood exploration, conditional guessing), the
baselines the paper compares against, and an evaluation harness that
regenerates every table and figure of the paper.

Every guess generator -- the four PassFlow modes and the five baselines --
implements one :class:`~repro.strategies.GuessingStrategy` protocol and is
constructible from a spec string; attacks stream through the
:class:`~repro.strategies.AttackEngine` with constant memory, budget
checkpoints and resumable state.

Quickstart::

    import numpy as np
    from repro import AttackEngine, PassFlow, PassFlowConfig, build
    from repro.data import PasswordDataset, SyntheticRockYou

    rng = np.random.default_rng(0)
    corpus = SyntheticRockYou(rng).generate(5000)
    model = PassFlow(PassFlowConfig.small())
    dataset = PasswordDataset(corpus[:4000], corpus[4000:], model.encoder)
    model.fit(dataset, epochs=10)

    # any strategy from a spec string: "passflow:static", "markov:3", ...
    strategy = build("passflow:dynamic+gs?alpha=1&sigma=0.12", model=model)
    engine = AttackEngine(dataset.test_set, budgets=[1000, 10000])
    report = engine.run(strategy, rng)
    print(report.final().match_percent)

The same spec strings drive the CLI::

    python -m repro attack --model model.npz --corpus corpus.txt \\
        --strategy "passflow:dynamic+gs?alpha=1&sigma=0.12"
    python -m repro attack --corpus corpus.txt --strategy markov:3
"""

from repro.core import (
    ConditionalGuesser,
    DynamicSampler,
    DynamicSamplingConfig,
    GaussianSmoother,
    GuessingAttack,
    GuessingReport,
    PassFlow,
    PassFlowConfig,
    StaticSampler,
    StepPenalization,
    interpolate,
    paper_schedule,
)
from repro.strategies import (
    AttackEngine,
    AttackState,
    GuessBatch,
    GuessingStrategy,
    available_strategies,
    build,
    parse_spec,
    take,
)

__version__ = "1.1.0"

__all__ = [
    "PassFlow",
    "PassFlowConfig",
    "StaticSampler",
    "DynamicSampler",
    "DynamicSamplingConfig",
    "GaussianSmoother",
    "StepPenalization",
    "GuessingAttack",
    "GuessingReport",
    "ConditionalGuesser",
    "interpolate",
    "paper_schedule",
    # unified strategy API
    "AttackEngine",
    "AttackState",
    "GuessBatch",
    "GuessingStrategy",
    "available_strategies",
    "build",
    "parse_spec",
    "take",
    "__version__",
]

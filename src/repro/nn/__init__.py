"""A compact neural-network library over :mod:`repro.autograd`.

Provides exactly what PassFlow and its baselines need:

* :class:`Module` with automatic parameter/submodule registration and
  ``state_dict`` (de)serialization,
* :class:`Linear` layers with configurable initialization,
* activation modules, :class:`BatchNorm1d` / :class:`LayerNorm`,
* the residual MLP blocks used for the coupling layers' ``s`` and ``t``
  functions (Sec. III-A: "two residual blocks with a hidden size of 256"),
* optimizers (:class:`~repro.nn.optim.Adam` per Sec. IV-D, plus SGD) and
  learning-rate schedulers.
"""

from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear
from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Softplus, Tanh
from repro.nn.normalization import BatchNorm1d, LayerNorm
from repro.nn.residual import ResidualBlock, ResidualMLP
from repro.nn.sequential import Sequential
from repro.nn.losses import binary_cross_entropy_with_logits, mse_loss
from repro.nn import init
from repro.nn.optim import SGD, Adam, CosineDecay, Optimizer, StepDecay

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "BatchNorm1d",
    "LayerNorm",
    "ResidualBlock",
    "ResidualMLP",
    "Sequential",
    "mse_loss",
    "binary_cross_entropy_with_logits",
    "init",
    "Optimizer",
    "SGD",
    "Adam",
    "StepDecay",
    "CosineDecay",
]

"""Learning-rate schedulers."""

from __future__ import annotations

import math

from repro.nn.optim.optimizer import Optimizer


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)
        return self.optimizer.lr

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class StepDecay(LRScheduler):
    """Multiply lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = step_size
        self.gamma = float(gamma)

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class CosineDecay(LRScheduler):
    """Cosine annealing from base lr to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.total_epochs = total_epochs
        self.min_lr = float(min_lr)

    def _lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + math.cos(math.pi * progress))

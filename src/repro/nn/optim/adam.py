"""Adam optimizer (Kingma & Ba), the paper's choice (Sec. IV-D)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro import kernels
from repro.nn.module import Parameter
from repro.nn.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction; PassFlow trains with lr=1e-3, batch 512.

    The per-parameter update dispatches through the active kernel backend
    (:func:`repro.kernels` ``adam_step``), which applies the moment and
    parameter updates fully in place against preallocated scratch buffers:
    a step allocates nothing once the buffers are warm, where the seed-era
    update built six temporaries per parameter per step.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(params, lr, clip_norm)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [dict() for _ in self.params]

    def _update(self, index: int, param: Parameter) -> None:
        grad = param.grad
        scratch = self._scratch[index]
        if self.weight_decay > 0.0:
            buf = scratch.get("wd")
            if buf is None or buf.shape != param.data.shape:
                buf = scratch["wd"] = np.empty_like(param.data)
            np.multiply(param.data, self.weight_decay, out=buf)
            np.add(grad, buf, out=buf)
            grad = buf
        kernels.active().adam_step(
            param.data,
            grad,
            self._m[index],
            self._v[index],
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            1.0 - self.beta1**self.step_count,
            1.0 - self.beta2**self.step_count,
            scratch,
        )

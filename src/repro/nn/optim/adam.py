"""Adam optimizer (Kingma & Ba), the paper's choice (Sec. IV-D)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.nn.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction; PassFlow trains with lr=1e-3, batch 512."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(params, lr, clip_norm)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _update(self, index: int, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay > 0.0:
            grad = grad + self.weight_decay * param.data
        m, v = self._m[index], self._v[index]
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad**2
        m_hat = m / (1.0 - self.beta1**self.step_count)
        v_hat = v / (1.0 - self.beta2**self.step_count)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Holds a parameter list and applies gradient updates.

    Subclasses implement :meth:`_update` for a single parameter.  Gradient
    clipping (by global norm) is built in because flow NLL spikes on small
    batches otherwise.
    """

    def __init__(self, params: Iterable[Parameter], lr: float, clip_norm: float | None = None):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        self.clip_norm = clip_norm
        self.step_count = 0

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def grad_global_norm(self) -> float:
        """L2 norm over all parameter gradients (zeros where grad is None)."""
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float(np.sum(param.grad**2))
        return float(np.sqrt(total))

    def _clip(self) -> None:
        if self.clip_norm is None:
            return
        norm = self.grad_global_norm()
        if norm > self.clip_norm and norm > 0:
            scale = self.clip_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale

    def step(self) -> None:
        """Apply one update using the gradients accumulated on the params."""
        self._clip()
        self.step_count += 1
        for i, param in enumerate(self.params):
            if param.grad is not None:
                self._update(i, param)

    def _update(self, index: int, param: Parameter) -> None:
        raise NotImplementedError

"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.nn.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Vanilla / momentum SGD."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(params, lr, clip_norm)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def _update(self, index: int, param: Parameter) -> None:
        if self.momentum > 0.0:
            vel = self._velocity[index]
            vel *= self.momentum
            vel -= self.lr * param.grad
            param.data += vel
        else:
            param.data -= self.lr * param.grad

"""Optimizers and learning-rate schedulers."""

from repro.nn.optim.optimizer import Optimizer
from repro.nn.optim.sgd import SGD
from repro.nn.optim.adam import Adam
from repro.nn.optim.schedulers import CosineDecay, LRScheduler, StepDecay

__all__ = ["Optimizer", "SGD", "Adam", "LRScheduler", "StepDecay", "CosineDecay"]

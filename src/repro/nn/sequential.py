"""Sequential container."""

from __future__ import annotations

from repro.autograd import Tensor
from repro.nn.module import Module


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            self.add_module(name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

"""Residual MLP blocks.

Sec. III-A: "we implement s and t as two residual block-based neural
networks due to the impressive generalization performance of these
architectures", and Sec. IV-D fixes "2 residual blocks with a hidden size of
256 units".  :class:`ResidualMLP` is exactly that shape (configurable widths
so tests and CI-scale experiments can shrink it).
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.autograd import Tensor
from repro.nn.linear import Linear
from repro.nn.module import Module


class ResidualBlock(Module):
    """Two linear layers with ReLU and an identity skip: ``x + F(x)``."""

    def __init__(self, width: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.fc1 = Linear(width, width, rng=rng)
        self.fc2 = Linear(width, width, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.fc1(x).relu()
        return x + self.fc2(hidden).relu()


class ResidualMLP(Module):
    """Input projection, ``n`` residual blocks, zero-initialized output head.

    The zero-initialized head makes a freshly constructed coupling layer an
    identity transform, which stabilizes early NLL optimization.
    """

    def __init__(
        self,
        in_features: int,
        hidden: int,
        out_features: int,
        num_blocks: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_blocks < 1:
            raise ValueError("ResidualMLP needs at least one residual block")
        rng = rng if rng is not None else np.random.default_rng()
        self.input = Linear(in_features, hidden, rng=rng)
        self.num_blocks = num_blocks
        for i in range(num_blocks):
            self.add_module(f"block{i}", ResidualBlock(hidden, rng=rng))
        self.output = Linear(hidden, out_features, init="zeros", rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.input(x).relu()
        for i in range(self.num_blocks):
            hidden = self._modules[f"block{i}"](hidden)
        return self.output(hidden)

    def forward_array(self, x: np.ndarray) -> np.ndarray:
        """Kernel-dispatched forward on a raw batch (no Tensor graph).

        The returned array may be backend scratch memory: it is only valid
        until this module's next ``forward_array`` call, so callers that
        need to keep it must copy.
        """
        params = [self.input.weight.data, self.input.bias.data]
        for i in range(self.num_blocks):
            block = self._modules[f"block{i}"]
            params.extend(
                (
                    block.fc1.weight.data,
                    block.fc1.bias.data,
                    block.fc2.weight.data,
                    block.fc2.bias.data,
                )
            )
        params.extend((self.output.weight.data, self.output.bias.data))
        scratch = self.__dict__.setdefault("_kernel_scratch", {})
        return kernels.active().mlp_forward(params, x, self.num_blocks, scratch)

"""Activation modules (thin wrappers over tensor ops)."""

from __future__ import annotations

from repro.autograd import Tensor
from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope (used by the GAN critic)."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: Tensor) -> Tensor:
        positive = x.relu()
        negative = (-x).relu() * (-self.negative_slope)
        return positive + negative

    def __repr__(self) -> str:
        return f"LeakyReLU(slope={self.negative_slope})"


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Softplus(Module):
    """log(1 + exp(x))."""

    def forward(self, x: Tensor) -> Tensor:
        return x.softplus()

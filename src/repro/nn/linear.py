"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn import init as init_schemes
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input / output widths.
    bias:
        Whether to learn an additive bias (default True).
    init:
        Name of the weight init scheme (see :mod:`repro.nn.init`).
    rng:
        Generator used for initialization; a default is created when omitted
        (deterministic behaviour requires passing one explicitly).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        init: str = "kaiming",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        scheme = init_schemes.get(init)
        self.weight = Parameter(scheme(rng, in_features, out_features), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"

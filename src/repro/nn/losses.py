"""Loss functions for the baselines (the flow's NLL lives in repro.flows)."""

from __future__ import annotations

from repro.autograd import Tensor, ops


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error; used for CWAE reconstruction."""
    diff = prediction - target
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor, target: Tensor) -> Tensor:
    """Numerically-stable BCE on raw logits.

    Uses ``max(x,0) - x*t + log(1+exp(-|x|))``, the standard stable form.
    """
    relu_logits = logits.relu()
    abs_logits = logits.abs()
    loss = relu_logits - logits * target + ((-abs_logits).exp() + 1.0).log()
    return loss.mean()


__all__ = ["mse_loss", "binary_cross_entropy_with_logits", "ops"]

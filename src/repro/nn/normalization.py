"""Normalization layers.

BatchNorm is used by the Pasquini-style GAN generator (Sec. VI-B notes that
batch-normalization plus residual skips is what lets their deeper generator
train); LayerNorm is offered as an alternative for the critic, where batch
statistics would leak across Wasserstein estimates.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.module import Module, Parameter


class BatchNorm1d(Module):
    """Batch normalization over the feature axis of (N, F) inputs.

    Keeps running estimates of mean/variance for evaluation mode, matching
    the standard semantics: batch statistics while ``training`` is True,
    running statistics otherwise.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expects (N, {self.num_features}) input, got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            var = x.var(axis=0, keepdims=True)
            # update running stats out-of-graph
            self.running_mean *= 1.0 - self.momentum
            self.running_mean += self.momentum * mean.data.ravel()
            self.running_var *= 1.0 - self.momentum
            self.running_var += self.momentum * var.data.ravel()
        else:
            mean = Tensor(self.running_mean.reshape(1, -1))
            var = Tensor(self.running_var.reshape(1, -1))
        normalized = (x - mean) / ((var + self.eps) ** 0.5)
        return normalized * self.gamma + self.beta

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.num_features})"


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"LayerNorm expects trailing dim {self.num_features}, got {x.shape}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalized = (x - mean) / ((var + self.eps) ** 0.5)
        return normalized * self.gamma + self.beta

    def __repr__(self) -> str:
        return f"LayerNorm({self.num_features})"

"""Module base class: parameter registry, modes, and checkpointing."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.autograd import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is a trainable leaf of a :class:`Module`."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`, buffer arrays (via
    :meth:`register_buffer`) and sub-:class:`Module` instances as attributes;
    registration is automatic through ``__setattr__``.  ``forward`` must be
    implemented; instances are callable.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield prefix + name, self._buffers[name]
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[f"buffer:{name}"] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        expected = set(params)
        got = {k for k in state if not k.startswith("buffer:")}
        if expected != got:
            missing, extra = expected - got, got - expected
            raise KeyError(f"state mismatch: missing={sorted(missing)} extra={sorted(extra)}")
        for name, value in state.items():
            if name.startswith("buffer:"):
                self._load_buffer(name[len("buffer:"):], value)
            else:
                param = params[name]
                if param.data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {param.data.shape} vs {value.shape}"
                    )
                param.data = np.array(value, dtype=np.float64, copy=True)

    def _load_buffer(self, dotted: str, value: np.ndarray) -> None:
        module: Module = self
        parts = dotted.split(".")
        for part in parts[:-1]:
            module = module._modules[part]
        module.register_buffer(parts[-1], value)

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, module in self._modules.items():
            body = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {body}")
        lines.append(")")
        return "\n".join(lines) if self._modules else self.__class__.__name__ + "()"

"""Weight initializers.

The coupling layers' final linear layer is zero-initialized (``zeros``) so
that every coupling layer starts as the identity map -- a standard trick for
stable flow training (Glow, RealNVP) that matters even more with the shallow
residual ``s``/``t`` nets of Sec. III-A.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def kaiming_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He/Kaiming uniform for ReLU nets: U(-a, a) with a = sqrt(6 / fan_in)."""
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def normal(rng: np.random.Generator, fan_in: int, fan_out: int, std: float = 0.02) -> np.ndarray:
    """Gaussian init with fixed standard deviation."""
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """All-zeros init (identity start for flow output layers)."""
    del rng
    return np.zeros((fan_in, fan_out))


SCHEMES = {
    "xavier": xavier_uniform,
    "kaiming": kaiming_uniform,
    "normal": normal,
    "zeros": zeros,
}


def get(name: str):
    """Look up an initializer by name."""
    try:
        return SCHEMES[name]
    except KeyError:
        raise KeyError(f"unknown init scheme {name!r}; options: {sorted(SCHEMES)}") from None

"""Command-line interface.

Every workflow in the library is reachable from the shell::

    python -m repro synthesize --count 20000 --out corpus.txt
    python -m repro train --corpus corpus.txt --train-size 5000 \
        --epochs 40 --holdout 0.1 --out model.npz
    python -m repro sample --model model.npz --count 20
    python -m repro attack --model model.npz --corpus corpus.txt \
        --strategy "passflow:dynamic+gs?alpha=1&sigma=0.12" --budgets 1000,10000
    python -m repro attack --corpus corpus.txt --strategy markov:3 \
        --workers 4 --report report.json
    python -m repro bank build --strategy markov:3 --corpus corpus.txt \
        --budget 50000 --out markov3.bank
    python -m repro attack --bank markov3.bank --corpus corpus.txt \
        --workers 2 --budgets 1000,10000
    python -m repro attack --corpus corpus.txt --target-corpus other.txt \
        --strategy "mangle(markov:3)?rules=leet,append_year" \
        --policy "min_len=6&classes=ld"
    python -m repro scenarios --specs markov:3,pcfg
    python -m repro strategies --bankable
    python -m repro interpolate --model model.npz jimmy91 123456
    python -m repro conditional --model model.npz "love**"
    python -m repro strength --model model.npz --corpus corpus.txt love12 x9$kQ
    python -m repro serve --spec "strength?model=model.npz&corpus=corpus.txt" \
        --spec bank:markov3.bank --socket /tmp/repro.sock
    python -m repro experiments --markdown results.md

``attack`` and ``sample`` accept any registry spec string
(``repro strategies`` lists the families); the bare names ``static``,
``dynamic`` and ``dynamic+gs`` remain as shorthands wired to the
``--alpha/--sigma/--gamma/--temperature`` flags.  Wrapper specs compose:
``policy(<spec>)?min_len=8&classes=lud`` filters a stream to a
composition policy (``attack --policy`` is shorthand and also restricts
the attacked test set), ``mangle(<spec>)?rules=leet,append_year``
expands each guess through deterministic mangling rules, and ``attack
--target-corpus`` attacks a second file's test half with models trained
on ``--corpus`` -- ``repro scenarios`` enumerates the full matrix; see
``docs/scenarios.md``.

``attack --workers N`` shards the guess budgets across N processes
(deterministic for a fixed seed, worker count and schedule;
``--workers 1``, the default, reproduces seed-era reports
bit-identically), ``attack --schedule elastic`` switches to the
work-stealing runtime (dry or straggling shards release their unconsumed
budget back to the fleet at checkpoints), ``attack --executor
processpool`` runs either schedule on the fork-server process pool
(sticky shard affinity; multi-core throughput for GIL-bound strategies,
same report bytes as the in-process executors), and ``attack --report
out.json`` writes the full machine-readable GuessingReport next to the
stdout table.  Shard workers account in interned-id key space whenever
the strategy streams index-matrix batches, so checkpoint deltas cross the
worker queue as packed uint64 arrays; see ``docs/parallel.md`` for the
sharding model and how to pick ``--workers`` and ``--schedule``.

``bank build`` materializes a strategy's ranked guess stream once as a
memory-mapped artifact of packed uint64 keys, ``bank info``/``bank
verify`` inspect and check one, and ``attack --bank path.bank`` replays
it -- bit-identical to the live-sampled run for fixed ``(seed,
budgets)`` across worker counts and schedules; see ``docs/bank.md``.

``serve`` runs the strength-audit daemon: warm models behind a
micro-batching scheduler, NDJSON requests over a local socket (or
``--once`` for stdin/stdout), rank lookups against guess banks, and a
``stats`` endpoint; SIGTERM drains in-flight batches and exits 0.  See
``docs/serve.md`` for the protocol and the determinism contract.

``train``/``sample``/``attack``/``bank build``/``strength``/``serve``
accept ``--kernels
auto|numpy|numba|reference`` (default: the ``REPRO_KERNELS`` environment
variable, else ``auto``) to pick the fused kernel backend the flow/NN hot
paths run on; guess streams are backend-independent for a fixed seed and
the attack report records the backend used.  See ``docs/kernels.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro import kernels
from repro.bank import BankError, GuessBank, build_bank, replay_attack
from repro.core.conditional import ConditionalGuesser
from repro.core.guesser import validate_budgets
from repro.core.interpolation import interpolate
from repro.core.model import PassFlow, PassFlowConfig
from repro.core.strength import StrengthEstimator
from repro.data.alphabet import compact_alphabet, default_alphabet
from repro.data.dataset import PasswordDataset
from repro.data.encoding import PasswordEncoder
from repro.data.rockyou import load_password_file
from repro.data.synthetic import SyntheticConfig, SyntheticRockYou
from repro.eval.reporting import format_table
from repro.runtime import ParallelAttackEngine, StrategySource
from repro.scenarios import CompositionPolicy
from repro.strategies import (
    AttackEngine,
    SpecError,
    available_strategies,
    build,
    parse_spec,
    strategy_catalog,
    take,
    unwrap_spec,
)
from repro.utils.logging import enable_console_logging
from repro.utils.progress import ProgressReporter


def _alphabet(name: str):
    if name == "compact":
        return compact_alphabet()
    if name == "default":
        return default_alphabet()
    raise SystemExit(f"unknown alphabet {name!r} (compact|default)")


def _read_corpus(path: str, alphabet) -> List[str]:
    return load_password_file(path, alphabet=alphabet)


def _parse_budgets(raw: str) -> List[int]:
    """Parse and validate a ``--budgets`` comma list (SystemExit on misuse)."""
    try:
        budgets = sorted(int(b) for b in raw.split(",") if b.strip())
    except ValueError:
        raise SystemExit("--budgets must be comma-separated integers")
    try:
        validate_budgets(budgets)
    except ValueError as exc:
        raise SystemExit(f"--budgets: {exc}")
    return budgets


def _select_kernels(args) -> None:
    """Pin the kernel backend before any model math runs.

    ``--kernels`` wins over ``REPRO_KERNELS`` and is exported back into the
    environment so spawned shard workers resolve the same backend.  Invalid
    values (and ``numba`` without numba installed) exit with the registry's
    one-line error.
    """
    choice = getattr(args, "kernels", None)
    try:
        if choice is not None:
            kernels.select(choice)
            os.environ["REPRO_KERNELS"] = choice
        else:
            kernels.select(None)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _emit_attack_report(report, args, budgets: List[int], described: str) -> None:
    """Shared ``attack`` tail: stdout table, shard warnings, JSON report."""
    rows = [
        [row.guesses, row.unique, row.matched, round(row.match_percent, 2)]
        for row in report.rows
    ]
    print(f"method: {report.method}")
    print(format_table(["guesses", "unique", "matched", "% of test"], rows))
    for error in report.shard_errors:
        print(
            f"warning: {error} (its budget was re-absorbed by the surviving shards)",
            file=sys.stderr,
        )
    if args.report:
        payload = report.as_dict()
        payload["budgets"] = budgets
        payload["seed"] = args.seed
        payload["workers"] = args.workers
        payload["schedule"] = args.schedule
        payload["executor"] = getattr(args, "executor", None) or "auto"
        payload["strategy"] = described
        payload["policy"] = getattr(args, "policy", None)
        payload["target_corpus"] = getattr(args, "target_corpus", None)
        out = Path(args.report)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report written to {out}")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_synthesize(args) -> int:
    alphabet = _alphabet(args.alphabet)
    config = SyntheticConfig(
        vocabulary_size=args.vocabulary_size, max_suffix_digits=args.max_suffix_digits
    )
    generator = SyntheticRockYou(np.random.default_rng(args.seed), config, alphabet)
    corpus = generator.generate(args.count)
    out = Path(args.out)
    out.write_text("\n".join(corpus) + "\n")
    print(f"wrote {len(corpus)} passwords to {out}")
    return 0


def cmd_train(args) -> int:
    _select_kernels(args)
    alphabet = _alphabet(args.alphabet)
    corpus = _read_corpus(args.corpus, alphabet)
    if args.train_size and args.train_size < len(corpus):
        corpus = corpus[: args.train_size]
    if not 0.0 <= args.holdout < 1.0:
        raise SystemExit("--holdout must be a fraction in [0, 1)")
    validation: Optional[List[str]] = None
    if args.holdout > 0.0:
        holdout_size = int(len(corpus) * args.holdout)
        if holdout_size < 1:
            raise SystemExit(
                f"--holdout {args.holdout} of {len(corpus)} passwords is empty; "
                "use a larger corpus or fraction"
            )
        # sample the holdout uniformly (seeded): leak files are typically
        # frequency-sorted, so a tail slice would validate only on rare
        # passwords and skew best-epoch selection
        held = set(
            np.random.default_rng(args.seed).choice(
                len(corpus), size=holdout_size, replace=False
            )
        )
        validation = [p for i, p in enumerate(corpus) if i in held]
        corpus = [p for i, p in enumerate(corpus) if i not in held]
    config = PassFlowConfig(
        alphabet_chars=alphabet.chars,
        num_couplings=args.couplings,
        hidden=args.hidden,
        batch_size=args.batch_size,
        epochs=args.epochs,
        mask_strategy=args.mask,
        learning_rate=args.lr,
        seed=args.seed,
    )
    model = PassFlow(config)
    held = f", {len(validation)} held out" if validation else ""
    print(f"training on {len(corpus)} passwords ({args.epochs} epochs{held})...")
    history = model.fit(
        PasswordDataset(corpus, [], model.encoder),
        verbose=True,
        validation=validation,
        keep_best=validation is not None,  # Sec. IV-D: save the best epoch
    )
    path = model.save(args.out)
    summary = f"final NLL {history.nll[-1]:.3f}"
    if history.val_nll:
        summary += (
            f"; val NLL {history.val_nll[-1]:.3f}"
            f" (saved best epoch {history.best_epoch + 1})"
        )
    print(f"{summary}; checkpoint saved to {path}")
    return 0


def _spec_from_args(args) -> str:
    """Resolve --strategy: registry spec strings plus legacy shorthands."""
    name = args.strategy
    if name == "static":
        return f"passflow:static?temperature={args.temperature}"
    if name in ("dynamic", "dynamic+gs"):
        return (
            f"passflow:{name}?alpha={args.alpha}"
            f"&gamma={args.gamma}&sigma={args.sigma}"
        )
    return name


def cmd_sample(args) -> int:
    _select_kernels(args)
    model = PassFlow.load(args.model)
    spec = _spec_from_args(args)
    try:
        strategy = build(spec, model=model)
    except SpecError as exc:
        raise SystemExit(str(exc))
    for sample in take(strategy, args.count, np.random.default_rng(args.seed)):
        print(sample)
    return 0


def _attack_from_bank(args) -> int:
    """``attack --bank``: replay a prebuilt artifact instead of sampling."""
    try:
        bank = GuessBank.open(args.bank)
    except BankError as exc:
        raise SystemExit(str(exc))
    alphabet = bank.codec.alphabet
    corpus = _read_corpus(args.corpus, alphabet)
    # same train/test split and cleaning as the live attack path, through
    # the bank's own codec, so replay targets match the live run's exactly
    split = int(len(corpus) * 0.5)
    train_half = corpus[:split] or corpus
    dataset = PasswordDataset(train_half, corpus[split:], bank.codec)
    test_set = dataset.test_set
    budgets = _parse_budgets(args.budgets)
    if budgets[-1] > bank.total:
        raise SystemExit(
            f"bank {bank.path} holds {bank.total} guesses; "
            f"largest budget {budgets[-1]} cannot be replayed"
        )
    workers = "" if args.workers == 1 else f" across {args.workers} workers"
    elastic = "" if args.schedule == "static" else f" ({args.schedule} schedule)"
    print(
        f"attacking {len(test_set)} cleaned targets by replaying "
        f"{bank.path} ({bank.method}, {bank.total} banked guesses), "
        f"budgets {budgets}{workers}{elastic}"
    )
    progress = ProgressReporter(total=budgets[-1], label="attack")
    try:
        report = replay_attack(
            bank,
            test_set,
            budgets,
            workers=args.workers,
            schedule=args.schedule,
            seed=args.seed,
            executor=args.executor,
            progress=progress,
        )
    except BankError as exc:
        raise SystemExit(str(exc))
    except ValueError as exc:
        raise SystemExit(str(exc))  # e.g. an impossible --executor request
    _emit_attack_report(report, args, budgets, bank.replay_spec())
    return 0


def _parse_policy(args) -> Optional[CompositionPolicy]:
    """Resolve ``--policy`` (a bare query like ``min_len=8&classes=ld``)."""
    if not getattr(args, "policy", None):
        return None
    try:
        return CompositionPolicy.from_query(args.policy)
    except (SpecError, ValueError) as exc:
        raise SystemExit(f"--policy: {exc}")


def cmd_attack(args) -> int:
    _select_kernels(args)
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    policy = _parse_policy(args)
    if args.bank:
        if policy is not None:
            raise SystemExit(
                "--policy does not combine with --bank; replay the artifact "
                "through the spec grammar instead: "
                "--strategy 'policy(bank:<path>)?min_len=8'"
            )
        return _attack_from_bank(args)
    spec = _spec_from_args(args)
    if policy is not None:
        spec = policy.wrap(spec)
    try:
        parsed = parse_spec(spec)
        innermost = unwrap_spec(parsed)
    except SpecError as exc:
        raise SystemExit(str(exc))
    model = PassFlow.load(args.model) if args.model else None
    if innermost.family == "passflow" and model is None:
        raise SystemExit("passflow strategies need --model <checkpoint.npz>")
    alphabet = model.alphabet if model is not None else _alphabet(args.alphabet)
    encoder = (
        model.encoder if model is not None else PasswordEncoder(alphabet)
    )
    corpus = _read_corpus(args.corpus, alphabet)
    split = int(len(corpus) * 0.5)
    train_half = corpus[:split] or corpus
    # cross-corpus attacks: train (and clean) against --corpus, target the
    # test half of --target-corpus — "train on one leak, attack another"
    if args.target_corpus:
        target = _read_corpus(args.target_corpus, alphabet)
        target_split = int(len(target) * 0.5)
        test_raw = target[target_split:] or target
    else:
        test_raw = corpus[split:]
    dataset = PasswordDataset(
        train_half,
        test_raw,
        encoder,
        test_filter=policy.conforms if policy else None,
    )
    test_set = dataset.test_set
    budgets = _parse_budgets(args.budgets)

    source = StrategySource(spec, model=model, corpus=train_half, alphabet=alphabet)
    try:
        strategy = source.build()
    except SpecError as exc:
        raise SystemExit(str(exc))
    described = strategy.describe()
    workers = "" if args.workers == 1 else f" across {args.workers} workers"
    elastic = "" if args.schedule == "static" else f" ({args.schedule} schedule)"
    print(
        f"attacking {len(test_set)} cleaned targets with {described}, "
        f"budgets {budgets}{workers}{elastic}"
    )
    progress = ProgressReporter(total=budgets[-1], label="attack")
    serial = (
        args.workers == 1
        and args.schedule == "static"
        and args.executor in (None, "auto")
    )
    try:
        if serial:
            # serial path: bit-identical to the seed-era single-process engine
            report = AttackEngine(test_set, budgets).run(
                strategy, np.random.default_rng(args.seed), progress=progress
            )
        else:
            try:
                engine = ParallelAttackEngine(
                    test_set,
                    budgets,
                    workers=args.workers,
                    schedule=args.schedule,
                    executor=args.executor,
                )
            except ValueError as exc:
                # an explicit --executor the platform or schedule cannot
                # honor: one actionable line, not a traceback
                raise SystemExit(str(exc))
            report = engine.run(
                source.pin(strategy),
                seed=args.seed,
                method=strategy.name,
                progress=progress,
            )
    except SpecError as exc:
        raise SystemExit(str(exc))

    _emit_attack_report(report, args, budgets, described)
    return 0


def cmd_bank_build(args) -> int:
    """``bank build``: materialize a strategy's stream into an artifact.

    Mirrors ``attack``'s model/alphabet/corpus-train-half resolution so
    the banked stream is the one a live attack with the same flags would
    sample.
    """
    _select_kernels(args)
    try:
        parsed = parse_spec(args.strategy)
    except SpecError as exc:
        raise SystemExit(str(exc))
    model = PassFlow.load(args.model) if args.model else None
    if unwrap_spec(parsed).family == "passflow" and model is None:
        raise SystemExit("passflow strategies need --model <checkpoint.npz>")
    alphabet = model.alphabet if model is not None else _alphabet(args.alphabet)
    encoder = model.encoder if model is not None else PasswordEncoder(alphabet)
    train_half: Optional[List[str]] = None
    if args.corpus:
        corpus = _read_corpus(args.corpus, alphabet)
        split = int(len(corpus) * 0.5)
        train_half = corpus[:split] or corpus
    try:
        strategy = build(
            parsed, model=model, corpus=train_half, alphabet=alphabet
        )
    except SpecError as exc:
        raise SystemExit(str(exc))
    progress = ProgressReporter(total=args.budget, label="bank")
    try:
        bank = build_bank(
            strategy,
            args.budget,
            args.out,
            seed=args.seed,
            rng_label=args.rng_label,
            encoder=encoder,
            force=args.force,
            progress=progress,
        )
    except BankError as exc:
        raise SystemExit(str(exc))
    print(
        f"banked {bank.total} guesses ({bank.unique} unique) from "
        f"{bank.spec} into {bank.path}"
    )
    print(f"replay with: attack --bank {bank.path}  (or spec {bank.replay_spec()!r})")
    return 0


def cmd_bank_info(args) -> int:
    """``bank info``: print an artifact's manifest summary."""
    try:
        bank = GuessBank.open(args.path)
    except BankError as exc:
        raise SystemExit(str(exc))
    for line in bank.describe_lines():
        print(line)
    return 0


def cmd_bank_verify(args) -> int:
    """``bank verify``: integrity-check an artifact (exit 1 on problems)."""
    try:
        bank = GuessBank.open(args.path)
    except BankError as exc:
        raise SystemExit(str(exc))
    problems = bank.verify()
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(
        f"ok: {bank.path} ({bank.total} guesses, {bank.unique} unique, "
        f"sha256 and key canonicality verified)"
    )
    return 0


def cmd_strategies(args) -> int:
    if args.bankable:
        rows = [
            [family, summary, bankable]
            for family, (summary, bankable) in strategy_catalog().items()
        ]
        print(format_table(["family", "description", "bankable"], rows))
    else:
        rows = [
            [family, summary] for family, summary in available_strategies().items()
        ]
        print(format_table(["family", "description"], rows))
    print(
        "\nspec grammar: family[:variant][?key=value&...]   e.g. "
        "passflow:dynamic+gs?alpha=1&sigma=0.12, markov:3, rules?wordlist=300"
        "\nwrapper form: family(inner)[?key=value&...]      e.g. "
        "policy(markov:3)?min_len=8&classes=lud, mangle(pcfg)?rules=leet"
    )
    return 0


def cmd_scenarios(args) -> int:
    """``scenarios``: enumerate the scenario matrix (docs/scenarios.md)."""
    from repro.data.mangling import DETERMINISTIC_RULES, STOCHASTIC_RULES
    from repro.eval.harness import CORPUS_VARIANTS

    specs = [s.strip() for s in args.specs.split(",") if s.strip()]
    # an empty policy entry is the unconstrained column
    policies = [q.strip() for q in args.policies.split(";")]
    corpora = [c.strip() for c in args.corpora.split(",") if c.strip()]
    for name in corpora:
        if name not in CORPUS_VARIANTS:
            raise SystemExit(
                f"unknown corpus variant {name!r} "
                f"(have: {', '.join(sorted(CORPUS_VARIANTS))})"
            )

    rows = []
    for spec in specs:
        try:
            base = parse_spec(spec).canonical()
        except SpecError as exc:
            raise SystemExit(str(exc))
        for query in policies:
            try:
                policy = CompositionPolicy.from_query(query) if query else None
            except (SpecError, ValueError) as exc:
                raise SystemExit(f"policy {query!r}: {exc}")
            cell_spec = policy.wrap(base) if policy else base
            for corpus in corpora:
                rows.append([cell_spec, "default", corpus, query or "-"])
    print(format_table(["attack spec", "train", "target", "policy"], rows))
    print(
        f"\n{len(rows)} cells = {len(specs)} spec(s) x {len(policies)} "
        f"policy column(s) x {len(corpora)} target corpus(es)"
    )
    print("policy grammar: min_len=<n>&max_len=<n>&classes=[luds]+&deny=w1,w2")
    print(
        "mangle rules:   deterministic "
        + ", ".join(DETERMINISTIC_RULES)
        + " | stochastic "
        + ", ".join(STOCHASTIC_RULES)
    )
    print(
        "run one cell:   repro attack --corpus train.txt --target-corpus "
        "other.txt --strategy <spec> --policy '<query>'"
    )
    print("run the matrix: python -m repro.eval.experiments.cross_corpus")
    return 0


def cmd_interpolate(args) -> int:
    model = PassFlow.load(args.model)
    path = interpolate(model, args.start, args.target, steps=args.steps)
    print(" -> ".join(path))
    return 0


def cmd_conditional(args) -> int:
    model = PassFlow.load(args.model)
    guesser = ConditionalGuesser(model, population=args.population)
    guesses = guesser.guess(
        args.template,
        rounds=args.rounds,
        top_k=args.top_k,
        rng=np.random.default_rng(args.seed),
    )
    for guess in guesses:
        print(guess)
    return 0


def cmd_strength(args) -> int:
    _select_kernels(args)
    if args.batch < 1:
        raise SystemExit("--batch must be >= 1")
    model = PassFlow.load(args.model)
    estimator = StrengthEstimator(model)
    if args.corpus:
        estimator.calibrate(_read_corpus(args.corpus, model.alphabet)[:5000])
    started = time.perf_counter()
    # the batch-vectorized path: ceil(N/batch) flow evaluations, not N
    report = estimator.report(args.passwords, batch_size=args.batch)
    elapsed = time.perf_counter() - started
    headers = ["password", "log_prob"] + (
        ["percentile", "band"] if estimator.calibrated else []
    )
    rows = [[entry[key] for key in headers] for entry in report]
    print(format_table(headers, rows))
    print(
        f"scored {len(report)} passwords in {elapsed * 1000.0:.1f} ms "
        f"({elapsed * 1000.0 / len(report):.2f} ms/password, batch {args.batch})"
    )
    return 0


def cmd_serve(args) -> int:
    """``serve``: the micro-batched strength-audit daemon (docs/serve.md)."""
    _select_kernels(args)
    from repro.serve import ScoringServer, ServeApp, ServeConfigError, run_once

    try:
        app = ServeApp(
            args.spec,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
            default_deadline_ms=args.deadline_ms,
            threaded=not args.once,
        )
    except ServeConfigError as exc:
        raise SystemExit(str(exc))
    if args.once:
        return run_once(app, sys.stdin, sys.stdout)
    if (args.socket is None) == (args.port is None):
        raise SystemExit("pass exactly one of --socket or --port (or use --once)")
    server = ScoringServer(app, socket_path=args.socket, port=args.port)
    # SIGTERM = graceful shutdown: stop accepting, drain in-flight
    # batches, exit 0 -- what a supervisor sends on redeploy
    signal.signal(signal.SIGTERM, lambda signum, frame: app.request_shutdown())
    server.start()
    print(f"serving on {server.address} ({len(args.spec)} spec(s))", flush=True)
    try:
        # wake regularly so the main thread sees signal-set shutdowns
        while not app.wait_for_shutdown(timeout=0.5):
            pass
    except KeyboardInterrupt:
        app.request_shutdown()
    server.stop()
    print("drained and stopped", flush=True)
    return 0


def cmd_experiments(args) -> int:
    from repro.eval import run_all as runner

    argv = ["--markdown", args.markdown] if args.markdown else []
    return runner.main(argv)


# ----------------------------------------------------------------------
def _add_kernels_flag(parser: argparse.ArgumentParser) -> None:
    # a plain string (not argparse choices) so bad values surface the
    # kernel registry's one-line error instead of argparse's usage dump
    parser.add_argument(
        "--kernels",
        default=None,
        help="kernel backend: auto|numpy|numba|reference (default: "
        "REPRO_KERNELS, else auto = numba when installed); every backend "
        "yields the same guesses for a fixed seed",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("-v", "--verbose", action="store_true", help="console logging")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synthesize", help="generate a synthetic RockYou-like corpus")
    p.add_argument("--count", type=int, default=20000)
    p.add_argument("--out", required=True)
    p.add_argument("--alphabet", default="compact")
    p.add_argument("--vocabulary-size", type=int, default=30)
    p.add_argument("--max-suffix-digits", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_synthesize)

    p = sub.add_parser("train", help="train a PassFlow model on a password file")
    p.add_argument("--corpus", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--alphabet", default="compact")
    p.add_argument("--train-size", type=int, default=0)
    p.add_argument("--couplings", type=int, default=8)
    p.add_argument("--hidden", type=int, default=48)
    p.add_argument("--batch-size", type=int, default=256)
    p.add_argument("--epochs", type=int, default=40)
    p.add_argument("--lr", type=float, default=1e-3, help="Adam learning rate")
    p.add_argument(
        "--holdout",
        type=float,
        default=0.0,
        help="fraction of the corpus held out for validation NLL "
        "(enables best-epoch tracking)",
    )
    p.add_argument("--mask", default="char-run-1")
    p.add_argument("--seed", type=int, default=0)
    _add_kernels_flag(p)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("sample", help="generate password guesses")
    p.add_argument("--model", required=True)
    p.add_argument("--count", type=int, default=20)
    p.add_argument(
        "--strategy",
        default="static",
        help="strategy spec (default static; any passflow spec works)",
    )
    p.add_argument("--temperature", type=float, default=0.75)
    p.add_argument("--alpha", type=int, default=1)
    p.add_argument("--sigma", type=float, default=0.12)
    p.add_argument("--gamma", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    _add_kernels_flag(p)
    p.set_defaults(func=cmd_sample)

    p = sub.add_parser("attack", help="run a guessing attack against a password file")
    p.add_argument("--model", help="PassFlow checkpoint (required for passflow specs)")
    p.add_argument("--corpus", required=True)
    p.add_argument(
        "--strategy",
        default="dynamic+gs",
        help="strategy spec: static|dynamic|dynamic+gs shorthands, or any "
        "registry spec (passflow:static?temperature=0.75, markov:3, pcfg, "
        "rules, passgan, cwae); see `repro strategies`",
    )
    p.add_argument("--alphabet", default="compact", help="used when no --model is given")
    p.add_argument("--budgets", default="1000,10000")
    p.add_argument("--temperature", type=float, default=0.75)
    p.add_argument("--alpha", type=int, default=1)
    p.add_argument("--sigma", type=float, default=0.12)
    p.add_argument("--gamma", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the attack across N processes (1 = serial, bit-identical "
        "to seed-era reports; N>1 deterministic for fixed seed and N)",
    )
    p.add_argument(
        "--schedule",
        choices=["static", "elastic"],
        default="static",
        help="shard scheduling: static (fixed even split, the default) or "
        "elastic (work-stealing chunks; dry/straggling shards release "
        "their unconsumed budget back to the fleet at checkpoints)",
    )
    # a plain string (not argparse choices) so impossible requests surface
    # the runtime's one-line actionable error instead of a usage dump
    p.add_argument(
        "--executor",
        default="auto",
        help="shard executor: auto|local|process|worksteal|processpool "
        "(default auto picks per schedule/platform; processpool = "
        "fork-server pool with sticky shard affinity -- multi-core "
        "throughput for GIL-bound strategies, same report bytes as "
        "local for a fixed seed/workers/schedule)",
    )
    p.add_argument(
        "--report",
        help="write the full GuessingReport (rows + samples) as JSON here",
    )
    p.add_argument(
        "--bank",
        help="replay a prebuilt guess-bank artifact instead of sampling a "
        "strategy (bit-identical to the banked run for fixed seed/budgets; "
        "--model/--strategy are ignored)",
    )
    p.add_argument(
        "--policy",
        help="composition-policy query (min_len=8&max_len=10&classes=lud&"
        "deny=password,123456); wraps the spec as policy(<spec>) so only "
        "conformant guesses are emitted, and restricts the attacked test "
        "set to conformant targets",
    )
    p.add_argument(
        "--target-corpus",
        help="second password file for a cross-corpus attack: its test half "
        "becomes the attack targets (cleaned against --corpus's train "
        "half), while models still train on --corpus",
    )
    _add_kernels_flag(p)
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser(
        "bank", help="build, inspect and verify memory-mapped guess banks"
    )
    bank_sub = p.add_subparsers(dest="bank_command", required=True)

    b = bank_sub.add_parser(
        "build", help="materialize a strategy's ranked guess stream to disk"
    )
    b.add_argument(
        "--strategy",
        required=True,
        help="registry spec to bank (markov:3, passflow:static?...); "
        "feedback-driven specs need --force",
    )
    b.add_argument("--budget", type=int, required=True, help="guesses to bank")
    b.add_argument("--out", required=True, help="artifact directory to write")
    b.add_argument("--model", help="PassFlow checkpoint (required for passflow specs)")
    b.add_argument(
        "--corpus",
        help="password file; its train half feeds corpus-trained strategies, "
        "matching the attack command's split",
    )
    b.add_argument("--alphabet", default="compact", help="used when no --model is given")
    b.add_argument("--seed", type=int, default=0)
    b.add_argument(
        "--rng-label",
        default="",
        help="named RNG stream label ('' = the serial attack's default_rng; "
        "the eval harness uses labels like attack-table2)",
    )
    b.add_argument(
        "--force",
        action="store_true",
        help="bank a non-replayable (feedback-driven) strategy's "
        "feedback-free stream anyway",
    )
    _add_kernels_flag(b)
    b.set_defaults(func=cmd_bank_build)

    b = bank_sub.add_parser("info", help="print a bank artifact's manifest summary")
    b.add_argument("path")
    b.set_defaults(func=cmd_bank_info)

    b = bank_sub.add_parser(
        "verify", help="integrity-check a bank artifact (exit 1 on problems)"
    )
    b.add_argument("path")
    b.set_defaults(func=cmd_bank_verify)

    p = sub.add_parser("strategies", help="list the registered strategy families")
    p.add_argument(
        "--bankable",
        action="store_true",
        help="add a column showing which families are deterministic-replayable "
        "(usable with `bank build` without --force)",
    )
    p.set_defaults(func=cmd_strategies)

    p = sub.add_parser(
        "scenarios",
        help="enumerate the policy x mangling x cross-corpus scenario matrix",
    )
    p.add_argument(
        "--specs",
        default="markov:3,pcfg",
        help="comma list of base strategy specs (default: markov:3,pcfg)",
    )
    p.add_argument(
        "--policies",
        default=";min_len=6&classes=ld",
        help="semicolon list of policy queries; an empty entry is the "
        "unconstrained column (default: ';min_len=6&classes=ld')",
    )
    p.add_argument(
        "--corpora",
        default="default,narrow,digits",
        help="comma list of target corpus variants (default: all)",
    )
    p.set_defaults(func=cmd_scenarios)

    p = sub.add_parser("interpolate", help="latent interpolation between two passwords")
    p.add_argument("--model", required=True)
    p.add_argument("start")
    p.add_argument("target")
    p.add_argument("--steps", type=int, default=10)
    p.set_defaults(func=cmd_interpolate)

    p = sub.add_parser("conditional", help="complete a partial password template (* = unknown)")
    p.add_argument("--model", required=True)
    p.add_argument("template")
    p.add_argument("--population", type=int, default=128)
    p.add_argument("--rounds", type=int, default=8)
    p.add_argument("--top-k", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_conditional)

    p = sub.add_parser("strength", help="estimate password strength with the model")
    p.add_argument("--model", required=True)
    p.add_argument("--corpus", help="reference corpus for percentile calibration")
    p.add_argument(
        "--batch",
        type=int,
        default=256,
        help="passwords per flow evaluation, capped at the fixed "
        "evaluation shape (64); results are bitwise identical to "
        "scoring one at a time regardless of the value",
    )
    p.add_argument("passwords", nargs="+")
    _add_kernels_flag(p)
    p.set_defaults(func=cmd_strength)

    p = sub.add_parser(
        "serve", help="run the micro-batched strength-scoring daemon"
    )
    p.add_argument(
        "--spec",
        action="append",
        required=True,
        help="service spec, repeatable: "
        "strength?model=<ckpt.npz>&corpus=<ref.txt>[&name=...] for scoring, "
        "bank:<artifact dir>[?name=...] for rank lookups",
    )
    p.add_argument("--socket", help="Unix-domain socket path to listen on")
    p.add_argument(
        "--port", type=int, help="localhost TCP port (0 picks a free one)"
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="flush the scoring queue at this many passwords",
    )
    p.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="flush when the oldest queued request has waited this long",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=4096,
        help="bounded queue capacity in passwords (beyond it requests are "
        "rejected with a one-line error)",
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline (requests may override; "
        "expired-in-queue requests are rejected, not scored late)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="serve NDJSON from stdin to stdout in-process (no socket, "
        "no threads); exits at EOF or a shutdown request",
    )
    _add_kernels_flag(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("experiments", help="regenerate every paper table/figure")
    p.add_argument("--markdown", help="write consolidated markdown report here")
    p.set_defaults(func=cmd_experiments)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose:
        enable_console_logging()
    # --kernels exports REPRO_KERNELS so forked shard workers inherit the
    # choice, but the export must not outlive the command: harnesses and
    # tests drive main() in-process, and a leaked value would silently
    # repoint every later kernels.select(None) call
    prior = os.environ.get("REPRO_KERNELS")
    try:
        return args.func(args)
    finally:
        if os.environ.get("REPRO_KERNELS") != prior:
            if prior is None:
                os.environ.pop("REPRO_KERNELS", None)
            else:
                os.environ["REPRO_KERNELS"] = prior
            try:
                kernels.select(None)  # re-pin the in-process backend too
            except ValueError:
                pass


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface.

Every workflow in the library is reachable from the shell::

    python -m repro.cli synthesize --count 20000 --out corpus.txt
    python -m repro.cli train --corpus corpus.txt --train-size 5000 \
        --epochs 40 --out model.npz
    python -m repro.cli sample --model model.npz --count 20
    python -m repro.cli attack --model model.npz --corpus corpus.txt \
        --strategy dynamic+gs --budgets 1000,10000
    python -m repro.cli interpolate --model model.npz jimmy91 123456
    python -m repro.cli conditional --model model.npz "love**"
    python -m repro.cli strength --model model.npz --corpus corpus.txt love12 x9$kQ
    python -m repro.cli experiments --markdown results.md
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.core.conditional import ConditionalGuesser
from repro.core.dynamic import DynamicSampler, DynamicSamplingConfig
from repro.core.interpolation import interpolate
from repro.core.model import PassFlow, PassFlowConfig
from repro.core.penalization import StepPenalization
from repro.core.sampling import StaticSampler
from repro.core.smoothing import GaussianSmoother
from repro.core.strength import StrengthEstimator
from repro.data.alphabet import compact_alphabet, default_alphabet
from repro.data.dataset import PasswordDataset
from repro.data.rockyou import load_password_file
from repro.data.synthetic import SyntheticConfig, SyntheticRockYou
from repro.eval.reporting import format_table
from repro.flows.priors import StandardNormalPrior
from repro.utils.logging import enable_console_logging


def _alphabet(name: str):
    if name == "compact":
        return compact_alphabet()
    if name == "default":
        return default_alphabet()
    raise SystemExit(f"unknown alphabet {name!r} (compact|default)")


def _read_corpus(path: str, alphabet) -> List[str]:
    return load_password_file(path, alphabet=alphabet)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_synthesize(args) -> int:
    alphabet = _alphabet(args.alphabet)
    config = SyntheticConfig(
        vocabulary_size=args.vocabulary_size, max_suffix_digits=args.max_suffix_digits
    )
    generator = SyntheticRockYou(np.random.default_rng(args.seed), config, alphabet)
    corpus = generator.generate(args.count)
    out = Path(args.out)
    out.write_text("\n".join(corpus) + "\n")
    print(f"wrote {len(corpus)} passwords to {out}")
    return 0


def cmd_train(args) -> int:
    alphabet = _alphabet(args.alphabet)
    corpus = _read_corpus(args.corpus, alphabet)
    if args.train_size and args.train_size < len(corpus):
        corpus = corpus[: args.train_size]
    config = PassFlowConfig(
        alphabet_chars=alphabet.chars,
        num_couplings=args.couplings,
        hidden=args.hidden,
        batch_size=args.batch_size,
        epochs=args.epochs,
        mask_strategy=args.mask,
        seed=args.seed,
    )
    model = PassFlow(config)
    print(f"training on {len(corpus)} passwords ({args.epochs} epochs)...")
    history = model.fit(PasswordDataset(corpus, [], model.encoder), verbose=True)
    path = model.save(args.out)
    print(f"final NLL {history.nll[-1]:.3f}; checkpoint saved to {path}")
    return 0


def cmd_sample(args) -> int:
    model = PassFlow.load(args.model)
    prior = StandardNormalPrior(model.config.max_length, sigma=args.temperature)
    samples = model.sample_passwords(
        args.count, rng=np.random.default_rng(args.seed), prior=prior
    )
    for sample in samples:
        print(sample)
    return 0


def cmd_attack(args) -> int:
    model = PassFlow.load(args.model)
    corpus = _read_corpus(args.corpus, model.alphabet)
    split = int(len(corpus) * 0.5)
    dataset = PasswordDataset(corpus[:split] or corpus, corpus[split:], model.encoder)
    test_set = dataset.test_set
    budgets = sorted(int(b) for b in args.budgets.split(","))
    rng = np.random.default_rng(args.seed)
    print(f"attacking {len(test_set)} cleaned targets, budgets {budgets}")

    if args.strategy == "static":
        prior = StandardNormalPrior(model.config.max_length, sigma=args.temperature)
        report = StaticSampler(model, prior=prior).attack(test_set, budgets, rng)
    else:
        config = DynamicSamplingConfig(
            alpha=args.alpha, sigma=args.sigma, phi=StepPenalization(args.gamma)
        )
        smoother = GaussianSmoother(model.encoder) if args.strategy == "dynamic+gs" else None
        report = DynamicSampler(model, config, smoother=smoother).attack(
            test_set, budgets, rng, method=f"PassFlow-{args.strategy}"
        )

    rows = [
        [row.guesses, row.unique, row.matched, round(row.match_percent, 2)]
        for row in report.rows
    ]
    print(format_table(["guesses", "unique", "matched", "% of test"], rows))
    return 0


def cmd_interpolate(args) -> int:
    model = PassFlow.load(args.model)
    path = interpolate(model, args.start, args.target, steps=args.steps)
    print(" -> ".join(path))
    return 0


def cmd_conditional(args) -> int:
    model = PassFlow.load(args.model)
    guesser = ConditionalGuesser(model, population=args.population)
    guesses = guesser.guess(
        args.template,
        rounds=args.rounds,
        top_k=args.top_k,
        rng=np.random.default_rng(args.seed),
    )
    for guess in guesses:
        print(guess)
    return 0


def cmd_strength(args) -> int:
    model = PassFlow.load(args.model)
    estimator = StrengthEstimator(model)
    if args.corpus:
        estimator.calibrate(_read_corpus(args.corpus, model.alphabet)[:5000])
    rows = []
    for entry in estimator.report(args.passwords):
        rows.append(list(entry.values()))
    headers = ["password", "log_prob"] + (["percentile", "band"] if estimator.calibrated else [])
    print(format_table(headers, rows))
    return 0


def cmd_experiments(args) -> int:
    from repro.eval import run_all as runner

    argv = ["--markdown", args.markdown] if args.markdown else []
    return runner.main(argv)


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("-v", "--verbose", action="store_true", help="console logging")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synthesize", help="generate a synthetic RockYou-like corpus")
    p.add_argument("--count", type=int, default=20000)
    p.add_argument("--out", required=True)
    p.add_argument("--alphabet", default="compact")
    p.add_argument("--vocabulary-size", type=int, default=30)
    p.add_argument("--max-suffix-digits", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_synthesize)

    p = sub.add_parser("train", help="train a PassFlow model on a password file")
    p.add_argument("--corpus", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--alphabet", default="compact")
    p.add_argument("--train-size", type=int, default=0)
    p.add_argument("--couplings", type=int, default=8)
    p.add_argument("--hidden", type=int, default=48)
    p.add_argument("--batch-size", type=int, default=256)
    p.add_argument("--epochs", type=int, default=40)
    p.add_argument("--mask", default="char-run-1")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("sample", help="generate password guesses")
    p.add_argument("--model", required=True)
    p.add_argument("--count", type=int, default=20)
    p.add_argument("--temperature", type=float, default=0.75)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_sample)

    p = sub.add_parser("attack", help="run a guessing attack against a password file")
    p.add_argument("--model", required=True)
    p.add_argument("--corpus", required=True)
    p.add_argument("--strategy", choices=("static", "dynamic", "dynamic+gs"), default="dynamic+gs")
    p.add_argument("--budgets", default="1000,10000")
    p.add_argument("--temperature", type=float, default=0.75)
    p.add_argument("--alpha", type=int, default=1)
    p.add_argument("--sigma", type=float, default=0.12)
    p.add_argument("--gamma", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser("interpolate", help="latent interpolation between two passwords")
    p.add_argument("--model", required=True)
    p.add_argument("start")
    p.add_argument("target")
    p.add_argument("--steps", type=int, default=10)
    p.set_defaults(func=cmd_interpolate)

    p = sub.add_parser("conditional", help="complete a partial password template (* = unknown)")
    p.add_argument("--model", required=True)
    p.add_argument("template")
    p.add_argument("--population", type=int, default=128)
    p.add_argument("--rounds", type=int, default=8)
    p.add_argument("--top-k", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_conditional)

    p = sub.add_parser("strength", help="estimate password strength with the model")
    p.add_argument("--model", required=True)
    p.add_argument("--corpus", help="reference corpus for percentile calibration")
    p.add_argument("passwords", nargs="+")
    p.set_defaults(func=cmd_strength)

    p = sub.add_parser("experiments", help="regenerate every paper table/figure")
    p.add_argument("--markdown", help="write consolidated markdown report here")
    p.set_defaults(func=cmd_experiments)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose:
        enable_console_logging()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""On-disk guess-bank artifacts: packed key arrays plus a JSON manifest.

A bank is a directory holding one strategy's ranked guess stream,
materialized once and replayed everywhere:

* ``keys.npy`` -- the stream as uint64 interned-id keys in generation
  order (the :meth:`~repro.data.encoding.PasswordEncoder.pack_indices`
  layout, identical to :class:`~repro.core.guesser.KeyedCheckpointDelta`
  payloads).  Loaded with ``mmap_mode="r"`` so replaying shards never
  page in more than the slices they read.
* ``segments.npy`` -- cumulative batch-end offsets (int64), recording the
  order-preserving segments the stream was written in.
* ``manifest.json`` -- the identity key ``(spec, seed, rng_label,
  alphabet, budget)`` plus a codec header (alphabet characters, max
  length, pack geometry) sufficient to rebuild the exact
  :class:`~repro.data.encoding.PasswordEncoder` in a fresh process, and a
  SHA-256 checksum of ``keys.npy``.

Artifacts are byte-deterministic: the same ``(strategy, seed, budget)``
build writes identical files (no timestamps, sorted JSON keys), so banks
can be diffed, cached and content-addressed.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.alphabet import Alphabet
from repro.data.encoding import PasswordEncoder

FORMAT = "repro-guess-bank"
VERSION = 1

KEYS_NAME = "keys.npy"
SEGMENTS_NAME = "segments.npy"
MANIFEST_NAME = "manifest.json"

#: Chunk length (keys) for streaming checksum/round-trip passes, so
#: ``verify`` never materializes the whole array either.
_VERIFY_CHUNK = 1 << 16


class BankError(RuntimeError):
    """Unusable bank artifact: missing, corrupt, or wrong for the request."""


def codec_header(codec: PasswordEncoder) -> Dict[str, object]:
    """The manifest's codec header: everything needed to rebuild ``codec``."""
    return {
        "alphabet": codec.alphabet.chars,
        "max_length": int(codec.max_length),
        "pack_bits": int(codec.pack_bits),
        "vocab_size": int(codec.vocab_size),
    }


def codec_from_header(header: Dict[str, object]) -> PasswordEncoder:
    """Rebuild the exact :class:`PasswordEncoder` a codec header describes.

    The redundant geometry fields (``pack_bits``, ``vocab_size``) are
    cross-checked against the rebuilt encoder so a hand-edited or corrupt
    manifest fails loudly instead of silently reinterpreting keys.
    """
    try:
        alphabet = Alphabet(str(header["alphabet"]))
        codec = PasswordEncoder(alphabet, max_length=int(header["max_length"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise BankError(f"unusable codec header: {exc}") from exc
    if codec.pack_bits is None:
        raise BankError(
            "codec header describes an unpackable geometry "
            f"({codec.vocab_size}-way alphabet x {codec.max_length} symbols)"
        )
    if int(header.get("pack_bits", codec.pack_bits)) != codec.pack_bits or int(
        header.get("vocab_size", codec.vocab_size)
    ) != codec.vocab_size:
        raise BankError(
            "codec header is internally inconsistent (pack geometry does "
            "not match its alphabet/max_length)"
        )
    return codec


def same_codec(a, b) -> bool:
    """Whether two codecs intern passwords to the same uint64 keys."""
    return (
        a.vocab_size == b.vocab_size
        and a.max_length == b.max_length
        and getattr(getattr(a, "alphabet", None), "chars", None)
        == getattr(getattr(b, "alphabet", None), "chars", None)
    )


def _sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def write_bank(
    path: Union[str, Path],
    keys: np.ndarray,
    segment_ends: Sequence[int],
    *,
    codec: PasswordEncoder,
    spec: str,
    method: str,
    seed: int,
    rng_label: str = "",
) -> "GuessBank":
    """Write a bank artifact directory and return it re-opened (mmapped).

    ``keys`` is the full guess stream as uint64 interned ids in generation
    order; ``segment_ends`` the cumulative batch boundaries (last entry ==
    ``len(keys)``).  Existing artifact files at ``path`` are overwritten --
    builds are deterministic, so rewriting is idempotent.
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    if keys.ndim != 1 or keys.size == 0:
        raise BankError("a bank needs a non-empty 1-D uint64 key stream")
    ends = np.asarray(list(segment_ends), dtype=np.int64)
    if ends.size == 0 or int(ends[-1]) != keys.size or (np.diff(ends) <= 0).any() or ends[0] <= 0:
        raise BankError("segment_ends must be increasing and end at len(keys)")
    if codec.pack_bits is None:
        raise BankError("bank codec must support 64-bit packing")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    np.save(path / KEYS_NAME, keys)
    np.save(path / SEGMENTS_NAME, ends)
    manifest = {
        "format": FORMAT,
        "version": VERSION,
        "spec": spec,
        "method": method,
        "seed": int(seed),
        "rng_label": rng_label,
        "total": int(keys.size),
        "unique": int(np.unique(keys).size),
        "segments": int(ends.size),
        "codec": codec_header(codec),
        "sha256": _sha256_of(path / KEYS_NAME),
    }
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return GuessBank.open(path)


class GuessBank:
    """A read-only, memory-mapped view of one bank artifact directory.

    ``keys`` is the uint64 stream opened with ``numpy.load(...,
    mmap_mode="r")``: strided or contiguous slices of it are views into
    the file, so a shard replaying positions ``i, i+W, i+2W, ...`` only
    ever pages in the chunks it actually unpacks.
    """

    def __init__(self, path: Path, manifest: Dict[str, object], keys: np.ndarray) -> None:
        self.path = path
        self.manifest = manifest
        self.keys = keys
        self.codec = codec_from_header(manifest["codec"])
        # lazily built rank index (sorted unique keys + first-occurrence
        # ranks); None until the first lookup pays the one-time sort
        self._rank_index: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: Union[str, Path]) -> "GuessBank":
        """Memory-map the artifact at ``path`` (read-only), validating it."""
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise BankError(f"no bank at {path} (missing {MANIFEST_NAME})")
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError as exc:
            raise BankError(f"unreadable manifest at {manifest_path}: {exc}") from exc
        if manifest.get("format") != FORMAT:
            raise BankError(f"{manifest_path} is not a {FORMAT} manifest")
        if int(manifest.get("version", -1)) != VERSION:
            raise BankError(
                f"bank {path} has format version {manifest.get('version')!r}; "
                f"this build reads version {VERSION}"
            )
        try:
            keys = np.load(path / KEYS_NAME, mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise BankError(f"cannot map {path / KEYS_NAME}: {exc}") from exc
        if keys.dtype != np.uint64 or keys.ndim != 1:
            raise BankError(f"{path / KEYS_NAME} is not a 1-D uint64 array")
        if keys.size != int(manifest.get("total", -1)):
            raise BankError(
                f"bank {path}: manifest total {manifest.get('total')} != "
                f"{keys.size} stored keys"
            )
        return cls(path, manifest, keys)

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Stream length: the budget the bank was materialized at."""
        return int(self.manifest["total"])

    @property
    def unique(self) -> int:
        """Distinct keys in the full stream (from the manifest)."""
        return int(self.manifest["unique"])

    @property
    def spec(self) -> str:
        """Canonical spec of the strategy the stream was sampled from."""
        return str(self.manifest["spec"])

    @property
    def method(self) -> str:
        """Report display name of the banked strategy (e.g. ``Markov-3``)."""
        return str(self.manifest["method"])

    @property
    def seed(self) -> int:
        """The RNG seed the stream was sampled under."""
        return int(self.manifest["seed"])

    @property
    def rng_label(self) -> str:
        """The ``spawn_rng`` label of the build ("" = root ``default_rng``)."""
        return str(self.manifest.get("rng_label", ""))

    def replay_spec(self) -> str:
        """The ``bank:<path>`` spec string that replays this artifact."""
        from repro.strategies.registry import format_spec

        return format_spec("bank", str(self.path))

    # ------------------------------------------------------------------
    # rank lookups (the serving tier's targeted-guessing endpoint)
    # ------------------------------------------------------------------
    def _ensure_rank_index(self) -> Tuple[np.ndarray, np.ndarray]:
        """Build (once) the sorted-key index behind :meth:`rank_of_keys`.

        A stable argsort of the stream keeps positions increasing inside
        each run of equal keys, so the first occurrence of every unique
        key is the one at its group start.  The index is two dense arrays
        -- sorted unique keys and their first-occurrence stream positions
        -- against which lookups are a binary search, never a scan of the
        mmapped stream.
        """
        if self._rank_index is None:
            order = np.argsort(self.keys, kind="stable")
            sorted_keys = np.asarray(self.keys)[order]
            unique_keys, group_starts = np.unique(sorted_keys, return_index=True)
            self._rank_index = (unique_keys, order[group_starts])
        return self._rank_index

    def rank_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """1-based first-occurrence ranks for packed keys; -1 when absent.

        The rank of a guess is its position in the bank's generation-order
        stream (rank 1 = the strategy's first guess); a key the stream
        never produced maps to -1.  Vectorized: one ``searchsorted`` over
        the lazily built rank index per call.
        """
        unique_keys, first_positions = self._ensure_rank_index()
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        slots = np.searchsorted(unique_keys, keys)
        slots = np.minimum(slots, unique_keys.size - 1)
        present = unique_keys[slots] == keys
        ranks = np.full(keys.shape, -1, dtype=np.int64)
        ranks[present] = first_positions[slots[present]] + 1
        return ranks

    def rank_of(self, password: str) -> Optional[int]:
        """1-based rank of ``password`` in the banked stream, else ``None``.

        Answers the targeted-guessing question "was this password within
        the top-N ranked guesses, and at what rank?" -- ``rank_of(p) is
        not None and rank_of(p) <= N``.  Passwords the bank's codec cannot
        represent are by definition never in the stream (``None``).
        """
        if not self.codec.can_encode(password):
            return None
        rank = int(self.rank_of_keys(self.codec.pack_passwords([password]))[0])
        return None if rank < 0 else rank

    # ------------------------------------------------------------------
    def verify(self) -> List[str]:
        """Integrity-check the artifact; returns problems (empty == OK).

        Checks the keys checksum against the manifest, the segment table's
        shape, and that every key is canonical (``pack(unpack(k)) == k``,
        chunked so the pass streams through the mmap) -- a key with
        garbage outside its pack geometry would silently denote a
        different password under a rebuilt codec.
        """
        problems: List[str] = []
        digest = _sha256_of(self.path / KEYS_NAME)
        if digest != self.manifest.get("sha256"):
            problems.append(
                f"keys checksum mismatch: manifest {self.manifest.get('sha256')}, "
                f"file {digest}"
            )
        segments_path = self.path / SEGMENTS_NAME
        if not segments_path.is_file():
            problems.append(f"missing {SEGMENTS_NAME}")
        else:
            ends = np.load(segments_path)
            if (
                ends.ndim != 1
                or ends.size == 0
                or int(ends[-1]) != self.total
                or (np.diff(ends) <= 0).any()
                or int(ends[0]) <= 0
            ):
                problems.append("segment table is not increasing up to total")
            elif int(self.manifest.get("segments", -1)) != ends.size:
                problems.append(
                    f"manifest records {self.manifest.get('segments')} segments, "
                    f"table has {ends.size}"
                )
        unique_seen = 0
        blocks = []
        for start in range(0, self.total, _VERIFY_CHUNK):
            chunk = np.asarray(self.keys[start : start + _VERIFY_CHUNK])
            round_trip = self.codec.pack_indices(self.codec.unpack_keys(chunk))
            if (round_trip != chunk).any():
                problems.append(
                    f"non-canonical key at position "
                    f"{start + int(np.argmax(round_trip != chunk))}"
                )
                break
            blocks.append(np.unique(chunk))
        else:
            if blocks:
                unique_seen = int(np.unique(np.concatenate(blocks)).size)
            if unique_seen != self.unique:
                problems.append(
                    f"manifest records {self.unique} unique keys, stream has "
                    f"{unique_seen}"
                )
        return problems

    def describe_lines(self) -> List[str]:
        """Human-readable manifest summary (the ``bank info`` body)."""
        header = self.manifest["codec"]
        return [
            f"path:       {self.path}",
            f"spec:       {self.spec}",
            f"method:     {self.method}",
            f"seed:       {self.seed}",
            f"rng_label:  {self.rng_label or '(root rng)'}",
            f"total:      {self.total}",
            f"unique:     {self.unique}",
            f"segments:   {self.manifest.get('segments')}",
            f"alphabet:   {len(header['alphabet'])} chars + PAD "
            f"(vocab {header['vocab_size']})",
            f"max_length: {header['max_length']}",
            f"pack_bits:  {header['pack_bits']} "
            f"({header['pack_bits'] * header['max_length']} of 64 used)",
            f"sha256:     {self.manifest['sha256']}",
        ]

"""Memory-mapped guess banks: sample a strategy once, replay it everywhere.

The bank subsystem turns a strategy's ranked guess stream into an on-disk
artifact of packed uint64 keys (:mod:`repro.bank.artifact`), built by
driving the strategy exactly like a serial attack
(:mod:`repro.bank.builder`) and replayed through the ``bank`` registry
family as interned-id batches straight into ``observe_encoded``
(:mod:`repro.bank.replay`) -- no model, no string materialization, and
reports bit-identical to the live-sampled run across worker counts and
schedules.  See ``docs/bank.md`` for the artifact layout and the
determinism contract.
"""

from repro.bank.artifact import (
    BankError,
    GuessBank,
    codec_from_header,
    codec_header,
    same_codec,
    write_bank,
)
from repro.bank.builder import build_bank
from repro.bank.replay import (
    BANK_DIR_ENV,
    BankReplayStrategy,
    bank_path_for,
    packed_test_keys,
    replay_attack,
    resolve_bank,
    restore_stream_samples,
    stream_samples,
)

__all__ = [
    "BANK_DIR_ENV",
    "BankError",
    "BankReplayStrategy",
    "GuessBank",
    "bank_path_for",
    "build_bank",
    "codec_from_header",
    "codec_header",
    "packed_test_keys",
    "replay_attack",
    "resolve_bank",
    "restore_stream_samples",
    "same_codec",
    "stream_samples",
    "write_bank",
]

"""Replay a guess bank as a registry strategy, bit-identical everywhere.

The ``bank`` strategy family streams a mmapped artifact's keys back as
interned-id :class:`~repro.strategies.base.GuessBatch` objects -- no
model, no string materialization -- in two spec forms::

    bank:/path/to/markov.bank          # replay a named artifact
    bank?spec=markov:3&seed=7&dir=...  # look one up by identity key
                                       # (dir= falls back to $REPRO_GUESS_BANK)

Sharding: :meth:`BankReplayStrategy.bind_shard` (called by both the
static and elastic runtimes) assigns shard ``i`` of ``W`` the strided
substream of positions ``i, i+W, i+2W, ...``.  Because
:func:`~repro.runtime.planner.split_budget` hands shard ``i`` exactly
``ceil((b - i) / W)`` guesses at every global checkpoint ``b``, the union
of the shards' consumed positions at each checkpoint is exactly the
stream prefix ``[0, b)`` -- so the merged rows equal the serial rows for
any worker count, under either schedule.  Sample lists are reconstructed
from the stream prefix (:func:`restore_stream_samples`) since shard-order
concatenation cannot reproduce serial first-occurrence order.
"""

from __future__ import annotations

import hashlib
import os
import re
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.bank.artifact import BankError, GuessBank
from repro.strategies.base import DEFAULT_BATCH, GuessBatch, GuessingStrategy
from repro.strategies.registry import (
    BuildResources,
    ParamReader,
    SpecError,
    StrategySpec,
    parse_spec,
    register,
)

#: Environment variable naming the default bank directory for
#: ``bank?spec=...`` lookups (and the eval harness's ``bank_dir``).
BANK_DIR_ENV = "REPRO_GUESS_BANK"


class BankReplayStrategy(GuessingStrategy):
    """Stream a bank's keys as encoded batches (position-deterministic).

    The cursor lives on the instance, so fresh ``iter_guesses`` generators
    (as every elastic chunk creates) resume exactly where the previous one
    stopped; serial and sharded replays of the same artifact visit each
    position exactly once.  ``name`` is the banked strategy's display name
    so replay reports are indistinguishable from the live-sampled ones.
    """

    #: Replay is trivially a pure function of the artifact: a bank of a
    #: bank is the identity (modulo budget truncation).
    replayable = True

    def __init__(
        self,
        bank: GuessBank,
        batch_size: int = DEFAULT_BATCH,
        spec: Optional[str] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        super().__init__(spec=spec or bank.replay_spec())
        self.bank = bank
        self.codec = bank.codec
        self.batch_size = batch_size
        self.name = bank.method
        self._offset = 0
        self._stride = 1
        self._consumed = 0

    def bind_shard(self, index: int, workers: int) -> None:
        """Select the strided substream ``index, index+workers, ...``.

        Must happen before any guesses are drawn -- the substream choice
        defines which positions this instance owns.
        """
        if not 0 <= index < workers:
            raise ValueError(f"shard index {index} outside fleet of {workers}")
        if self._consumed:
            raise RuntimeError("cannot re-shard a bank replay mid-stream")
        self._offset = int(index)
        self._stride = int(workers)

    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        """Yield the owned substream as encoded batches (``rng`` unused)."""
        keys = self.bank.keys
        total = self.bank.total
        while True:
            count = self.context.next_count(self.batch_size)
            if count < 1:
                return
            start = self._offset + self._consumed * self._stride
            if start >= total:
                return  # substream exhausted: the artifact ran out
            available = (total - 1 - start) // self._stride + 1
            count = min(count, available)
            stop = start + (count - 1) * self._stride + 1
            # a strided mmap slice is a view; only the selected elements
            # materialize when unpack_keys copies them into the batch
            chunk = np.asarray(keys[start:stop:self._stride], dtype=np.uint64)
            self._consumed += count
            yield GuessBatch(
                None,
                index_matrix=self.codec.unpack_keys(chunk),
                codec=self.codec,
            )


# ----------------------------------------------------------------------
# artifact resolution (identity key -> path)
# ----------------------------------------------------------------------
def bank_path_for(
    directory: Union[str, Path],
    spec: str,
    seed: int,
    rng_label: str = "",
    alphabet_chars: str = "",
) -> Path:
    """The deterministic artifact path for an identity key in a bank dir.

    Builders and lookups share this function, so a bank built for
    ``(spec, seed, rng_label, alphabet)`` is found again without scanning.
    The stem keeps a readable spec prefix; the digest disambiguates.
    """
    canonical = parse_spec(spec).canonical()
    digest = hashlib.sha1(
        f"{canonical}|{seed}|{rng_label}|{alphabet_chars}".encode()
    ).hexdigest()[:12]
    stem = re.sub(r"[^A-Za-z0-9._+-]+", "-", canonical).strip("-")[:48] or "bank"
    return Path(directory) / f"{stem}-s{seed}-{digest}.bank"


def resolve_bank(
    directory: Union[str, Path],
    spec: str,
    seed: int,
    rng_label: str = "",
    alphabet_chars: str = "",
) -> Optional[GuessBank]:
    """Find a bank in ``directory`` matching an identity key, or ``None``.

    Tries the deterministic :func:`bank_path_for` location first, then
    scans ``*.bank`` manifests (foreign naming schemes), matching on
    canonical spec, seed and rng label -- and on alphabet when the caller
    pins one.  Ties break to the largest stream, then lexicographic path.
    """
    directory = Path(directory)
    canonical = parse_spec(spec).canonical()
    direct = bank_path_for(directory, canonical, seed, rng_label, alphabet_chars)
    if (direct / "manifest.json").is_file():
        return GuessBank.open(direct)
    candidates: List[Tuple[int, str, GuessBank]] = []
    if directory.is_dir():
        for path in sorted(directory.glob("*.bank")):
            try:
                bank = GuessBank.open(path)
            except BankError:
                continue
            if bank.spec != canonical or bank.seed != int(seed):
                continue
            if bank.rng_label != rng_label:
                continue
            if alphabet_chars and bank.codec.alphabet.chars != alphabet_chars:
                continue
            candidates.append((-bank.total, str(path), bank))
    if not candidates:
        return None
    return sorted(candidates)[0][2]


# ----------------------------------------------------------------------
# registry family
# ----------------------------------------------------------------------
@register(
    "bank",
    "replay a prebuilt guess bank: bank:<path>, or bank?spec=...&seed=...",
    bankable="yes (replay is position-deterministic)",
)
def _build_bank_replay(spec: StrategySpec, resources: BuildResources) -> GuessingStrategy:
    reader = ParamReader(spec)
    batch = reader.take("batch", resources.batch_size or DEFAULT_BATCH, cast=int)
    if spec.variant:
        path: Optional[Path] = Path(spec.variant)
        reader.finish()
        try:
            bank = GuessBank.open(path)
        except BankError as exc:
            raise SpecError(str(exc)) from exc
    else:
        inner = reader.take("spec", cast=str)
        if not inner:
            raise SpecError(
                "bank specs need a variant path (bank:<path>) or an "
                "identity key (bank?spec=...&seed=...)"
            )
        seed = reader.take("seed", 0, cast=int)
        label = reader.take("label", "", cast=str)
        directory = reader.take("dir", cast=str) or os.environ.get(BANK_DIR_ENV)
        reader.finish()
        if not directory:
            raise SpecError(
                f"bank?spec=... lookups need dir=<path> or ${BANK_DIR_ENV}"
            )
        chars = getattr(resources.alphabet, "chars", "") or ""
        bank = resolve_bank(directory, inner, seed, label, chars)
        if bank is None:
            raise SpecError(
                f"no bank for spec={inner!r} seed={seed} label={label!r} "
                f"under {directory}"
            )
    requested_chars = getattr(resources.alphabet, "chars", None)
    if requested_chars is not None and requested_chars != bank.codec.alphabet.chars:
        raise SpecError(
            f"bank {bank.path} was packed under alphabet "
            f"{bank.codec.alphabet.chars!r}, not the requested one"
        )
    return BankReplayStrategy(bank, batch_size=batch, spec=bank.replay_spec())


# ----------------------------------------------------------------------
# exact serial-order samples from the stream prefix
# ----------------------------------------------------------------------
def _in_sorted(sorted_array: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean membership of ``values`` in an ascending unique array."""
    if not sorted_array.size or not values.size:
        return np.zeros(values.shape, dtype=bool)
    positions = np.searchsorted(sorted_array, values)
    positions[positions == sorted_array.size] = sorted_array.size - 1
    return sorted_array[positions] == values


def packed_test_keys(codec, test_set: Set[str]) -> np.ndarray:
    """The sorted packed test set, mirroring ``observe_encoded`` exactly.

    Targets the codec cannot represent are dropped (they can never be
    produced by an encoded stream), the same filtering contract the
    accounting applies via :meth:`PasswordEncoder.can_encode`.
    """
    if not test_set:
        return np.empty(0, dtype=np.uint64)
    try:
        packed = codec.pack_passwords(test_set)
    except (KeyError, ValueError):
        packed = codec.pack_passwords([p for p in test_set if codec.can_encode(p)])
    return np.sort(packed)


def stream_samples(
    bank: GuessBank,
    test_set: Set[str],
    budget: int,
    sample_cap: int = 16,
    chunk: int = 1 << 16,
) -> Tuple[List[str], List[str]]:
    """``(matched_samples, non_matched_samples)`` of a serial replay.

    The serial accounting's sample lists are, in key space, the first
    ``sample_cap`` distinct test keys (matched) and distinct non-zero
    non-test keys (non-matched), each in order of first occurrence in the
    stream prefix ``[0, budget)`` -- independent of batching.  This walks
    the mmapped stream in chunks, so parallel replays can restore the
    exact serial lists without re-running a serial attack.
    """
    codec = bank.codec
    packed_test = packed_test_keys(codec, test_set)
    budget = min(int(budget), bank.total)
    seen = np.empty(0, dtype=np.uint64)
    matched_keys: List[int] = []
    non_keys: List[int] = []
    for start in range(0, budget, chunk):
        block = np.asarray(bank.keys[start : min(start + chunk, budget)])
        uniq, first_positions = np.unique(block, return_index=True)
        fresh_in_block = first_positions[~_in_sorted(seen, uniq)]
        fresh_keys = block[np.sort(fresh_in_block)]
        is_test = _in_sorted(packed_test, fresh_keys)
        if len(matched_keys) < sample_cap:
            matched_keys.extend(
                int(k) for k in fresh_keys[is_test][: sample_cap - len(matched_keys)]
            )
        if len(non_keys) < sample_cap:
            wanted = ~is_test & (fresh_keys != 0)
            non_keys.extend(
                int(k) for k in fresh_keys[wanted][: sample_cap - len(non_keys)]
            )
        if len(matched_keys) >= sample_cap and len(non_keys) >= sample_cap:
            break
        seen = np.union1d(seen, uniq)
    matched = codec.strings_from_keys(np.asarray(matched_keys, dtype=np.uint64))
    non_matched = codec.strings_from_keys(np.asarray(non_keys, dtype=np.uint64))
    return matched, non_matched


def restore_stream_samples(
    report,
    bank: GuessBank,
    test_set: Set[str],
    budget: int,
    sample_cap: int = 16,
):
    """Overwrite a merged report's samples with the serial stream order.

    Shard-order sample concatenation depends on the fleet shape; rows do
    not (strided coverage makes them exact).  Restoring the samples from
    the stream prefix makes the whole report bit-identical to the serial
    run.  Mutates and returns ``report``.
    """
    matched, non_matched = stream_samples(bank, test_set, budget, sample_cap)
    report.matched_samples = matched
    report.non_matched_samples = non_matched
    return report


# ----------------------------------------------------------------------
# one-call replay (CLI / eval harness entry point)
# ----------------------------------------------------------------------
def replay_attack(
    bank: GuessBank,
    test_set: Set[str],
    budgets: Sequence[int],
    *,
    workers: int = 1,
    schedule: str = "static",
    seed: int = 0,
    sample_cap: int = 16,
    method: Optional[str] = None,
    batch_size: Optional[int] = None,
    executor=None,
    chunk_size: Optional[int] = None,
    progress=None,
):
    """Replay a bank against a test set: the banked run's exact report.

    Serial (``workers=1``, static) runs the replay strategy through the
    ordinary :class:`~repro.strategies.engine.AttackEngine`; fleets go
    through the :class:`~repro.runtime.ParallelAttackEngine` with every
    shard mmapping the same artifact, then have their sample lists
    restored to serial order.  Either way the report is bit-identical to
    the live-sampled serial run the bank was built from, provided
    ``budgets[-1] <= bank.total`` (enforced here).
    """
    budgets = list(budgets)
    if not budgets:
        raise ValueError("budgets must be non-empty")
    if budgets[-1] > bank.total:
        raise BankError(
            f"bank {bank.path} holds {bank.total} guesses; cannot replay "
            f"a budget of {budgets[-1]}"
        )
    method = method or bank.method
    if workers <= 1 and schedule == "static" and executor in (None, "auto"):
        # an explicitly named executor routes through the parallel engine
        # even single-sharded, so its reports compare like-for-like
        from repro.strategies.engine import AttackEngine

        engine = AttackEngine(test_set, budgets, sample_cap=sample_cap)
        strategy = BankReplayStrategy(bank, batch_size=batch_size or DEFAULT_BATCH)
        return engine.run(
            strategy, np.random.default_rng(seed), method=method, progress=progress
        )
    # imported lazily: the runtime imports the strategies package, so a
    # module-level import here would cycle during registry bootstrap
    from repro.runtime import ParallelAttackEngine, StrategySource

    engine = ParallelAttackEngine(
        test_set,
        budgets,
        workers=workers,
        schedule=schedule,
        sample_cap=sample_cap,
        executor=executor,
        chunk_size=chunk_size,
    )
    source = StrategySource(spec=bank.replay_spec(), batch_size=batch_size)
    report = engine.run(source, seed=seed, method=method, progress=progress)
    return restore_stream_samples(report, bank, test_set, budgets[-1], sample_cap)

"""Materialize a strategy's ranked guess stream into a bank artifact.

The builder drives any :class:`~repro.strategies.base.GuessingStrategy`
exactly the way a serial attack would -- same
``min(batch_size, remaining)`` batch sizes via an
:class:`~repro.strategies.base.AttackContext`, same RNG stream -- but
packs each batch to uint64 keys instead of accounting it.  Replaying the
resulting bank through the same budgets therefore reproduces the live
attack's :class:`~repro.core.guesser.GuessingReport` bit for bit.

Only *replayable* strategies qualify by default: samplers whose stream is
a pure function of ``(spec, seed, budget)``.  Feedback-driven strategies
(Dynamic Sampling, smoothed variants) can be banked with ``force=True``
for throughput studies, but their replay reproduces the feedback-free
build-time stream, not a live attack.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.bank.artifact import BankError, GuessBank, same_codec, write_bank
from repro.strategies.base import AttackContext, GuessingStrategy
from repro.utils.rng import spawn_rng


def _close_iterator(iterator) -> None:
    close = getattr(iterator, "close", None)
    if close is not None:
        close()


def _spec_of(strategy: GuessingStrategy) -> str:
    try:
        return strategy.describe()
    except NotImplementedError:
        return f"<unspecified:{strategy.name}>"


def build_bank(
    strategy: GuessingStrategy,
    budget: int,
    out: Union[str, Path],
    *,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
    rng_label: str = "",
    encoder=None,
    force: bool = False,
    progress=None,
) -> GuessBank:
    """Sample ``budget`` guesses from ``strategy`` into a bank at ``out``.

    The RNG mirrors the attack entry points: ``rng_label=""`` draws from
    ``numpy.random.default_rng(seed)`` (the serial CLI attack),
    a non-empty label draws from ``spawn_rng(seed, rng_label)`` (the eval
    harness's named streams); pass ``rng`` directly to override both.
    Encoded batches are packed through their own codec; string batches
    need an explicit ``encoder`` and raise :class:`BankError` when a guess
    is not representable (over-length / out-of-alphabet), since a lossy
    bank could not replay the stream exactly.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    if not getattr(strategy, "replayable", False) and not force:
        raise BankError(
            f"strategy {_spec_of(strategy)!r} is not deterministic-replayable "
            "(it reads attack feedback); pass force=True to bank its "
            "feedback-free stream anyway"
        )
    if encoder is not None and encoder.pack_bits is None:
        raise BankError("encoder alphabet/max_length does not support packing")
    if rng is None:
        rng = spawn_rng(seed, rng_label) if rng_label else np.random.default_rng(seed)
    codec = encoder
    context = AttackContext(limit=budget)
    strategy.bind(context)
    chunks = []
    segment_ends = []
    produced = 0
    generator = strategy.iter_guesses(rng)
    try:
        for batch in generator:
            if batch.passwords is None:
                if codec is None:
                    codec = batch.codec
                elif not same_codec(codec, batch.codec):
                    raise BankError(
                        "strategy switched codecs mid-stream; a bank has "
                        "exactly one key space"
                    )
                keys = batch.codec.pack_indices(batch.index_matrix)
            else:
                if codec is None:
                    raise BankError(
                        "string-batch strategies need an explicit encoder= "
                        "to define the bank's key space"
                    )
                try:
                    keys = codec.pack_passwords(batch.materialize())
                except (KeyError, ValueError) as exc:
                    raise BankError(
                        f"guess not representable by the bank codec: {exc}"
                    ) from exc
            if produced + len(keys) > budget:
                keys = keys[: budget - produced]
            if not len(keys):
                continue
            chunks.append(np.asarray(keys, dtype=np.uint64))
            produced += len(keys)
            segment_ends.append(produced)
            context.advance(len(keys))
            if progress is not None:
                progress.update(len(keys))
            if produced >= budget:
                break
    finally:
        _close_iterator(generator)
        strategy.bind(None)
    if produced < budget:
        raise BankError(
            f"strategy ran dry after {produced} of {budget} guesses; "
            "banks only make sense for streams that cover their budget"
        )
    if progress is not None:
        progress.close(extra="banked")
    return write_bank(
        out,
        np.concatenate(chunks),
        segment_ends,
        codec=codec,
        spec=_spec_of(strategy),
        method=strategy.name,
        seed=seed,
        rng_label=rng_label,
    )

"""CWAE encoder: password features -> latent code."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn import Linear, Module


class Encoder(Module):
    """Deterministic MLP encoder (WAE uses point encodings, not posteriors)."""

    def __init__(
        self,
        data_dim: int,
        latent_dim: int,
        hidden: int = 128,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.fc1 = Linear(data_dim, hidden, rng=rng)
        self.fc2 = Linear(hidden, hidden, rng=rng)
        self.head = Linear(hidden, latent_dim, rng=rng)
        self.latent_dim = latent_dim

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.fc1(x).relu()
        hidden = self.fc2(hidden).relu()
        return self.head(hidden)

"""CWAE training (reconstruction + MMD) and the guessing interface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.baselines.cwae.decoder import Decoder
from repro.baselines.cwae.encoder import Encoder
from repro.data.alphabet import Alphabet, default_alphabet
from repro.data.dataset import PasswordDataset
from repro.data.encoding import PasswordEncoder
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.utils.rng import RngStream


def _pairwise_sq_dists(a: Tensor, b: Tensor) -> Tensor:
    """(N, M) matrix of squared euclidean distances between rows."""
    a_sq = (a * a).sum(axis=1).reshape(-1, 1)
    b_sq = (b * b).sum(axis=1).reshape(1, -1)
    return a_sq + b_sq - (a @ b.T) * 2.0


def mmd_penalty(codes: Tensor, prior_samples: Tensor, scale: float) -> Tensor:
    """IMQ-kernel MMD between encoded codes and prior samples (WAE-MMD).

    Uses the inverse multiquadratic kernel k(x,y) = C / (C + ||x-y||^2)
    with C = 2 * d * scale^2, the WAE paper's choice; diagonal terms are
    excluded from the within-set averages (unbiased-style estimate).
    """
    n = codes.shape[0]
    if n < 2:
        raise ValueError("MMD needs at least two samples")
    d = codes.shape[1]
    c = 2.0 * d * scale**2

    k_zz = c / (c + _pairwise_sq_dists(codes, codes))
    k_pp = c / (c + _pairwise_sq_dists(prior_samples, prior_samples))
    k_zp = c / (c + _pairwise_sq_dists(codes, prior_samples))

    off = 1.0 - np.eye(n)
    denom = n * (n - 1)
    term_zz = (k_zz * Tensor(off)).sum() * (1.0 / denom)
    term_pp = (k_pp * Tensor(off)).sum() * (1.0 / denom)
    term_zp = k_zp.mean() * 2.0
    return term_zz + term_pp - term_zp


@dataclass
class CWAEConfig:
    """Architecture + training knobs of the CWAE baseline."""

    max_length: int = 10
    alphabet_chars: Optional[str] = None
    latent_dim: int = 64
    hidden: int = 128
    epsilon: float = 2.0  # context noising intensity (chars dropped ~ eps/|x|)
    mmd_weight: float = 5.0
    epochs: int = 30
    batch_size: int = 128
    learning_rate: float = 1e-3
    seed: int = 0

    @classmethod
    def small(cls, seed: int = 0) -> "CWAEConfig":
        """CPU-scale configuration."""
        return cls(latent_dim=32, hidden=64, epochs=20, seed=seed)


@dataclass
class CWAEHistory:
    """Per-epoch training records."""

    reconstruction: List[float] = field(default_factory=list)
    mmd: List[float] = field(default_factory=list)


class CWAE:
    """Context Wasserstein Autoencoder password guesser."""

    def __init__(self, config: Optional[CWAEConfig] = None) -> None:
        self.config = config or CWAEConfig()
        chars = self.config.alphabet_chars
        self.alphabet = Alphabet(chars) if chars else default_alphabet()
        self.encoder_codec = PasswordEncoder(self.alphabet, max_length=self.config.max_length)
        self.rng_streams = RngStream(self.config.seed)
        init_rng = self.rng_streams.get("weights")
        self.encoder = Encoder(
            self.config.max_length, self.config.latent_dim, hidden=self.config.hidden, rng=init_rng
        )
        self.decoder = Decoder(
            self.config.latent_dim, self.config.max_length, hidden=self.config.hidden, rng=init_rng
        )
        self.history = CWAEHistory()

    # ------------------------------------------------------------------
    def _context_noise(self, features: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Drop characters with probability eps/|x| (replace by PAD center).

        This is the context-encoder trick of Sec. VI-C: the encoder sees an
        incomplete password and must embed enough context for the decoder
        to restore the missing characters.
        """
        pad_center = 0.5 * self.encoder_codec.bin_width
        noisy = np.array(features, copy=True)
        lengths = np.maximum((features > self.encoder_codec.bin_width).sum(axis=1), 1)
        drop_prob = np.minimum(self.config.epsilon / lengths, 0.9)
        drop = rng.random(features.shape) < drop_prob[:, None]
        noisy[drop] = pad_center
        return noisy

    def fit(
        self,
        data: Union[PasswordDataset, Sequence[str]],
        epochs: Optional[int] = None,
        verbose: bool = False,
    ) -> CWAEHistory:
        """Train with reconstruction + MMD loss."""
        if isinstance(data, PasswordDataset):
            features = data.train_features
        else:
            features = self.encoder_codec.encode_batch(list(data))
        epochs = epochs if epochs is not None else self.config.epochs
        batch_size = self.config.batch_size
        if len(features) < 2:
            raise ValueError("need at least two training passwords")
        rng = self.rng_streams.get("train")
        params = list(self.encoder.parameters()) + list(self.decoder.parameters())
        optimizer = Adam(params, lr=self.config.learning_rate)
        for _ in range(epochs):
            order = rng.permutation(len(features))
            recon_losses, mmd_losses = [], []
            for start in range(0, len(features), batch_size):
                batch = features[order[start : start + batch_size]]
                if len(batch) < 2:
                    continue
                noisy = self._context_noise(batch, rng)
                optimizer.zero_grad()
                codes = self.encoder(Tensor(noisy))
                recon = self.decoder(codes)
                recon_loss = mse_loss(recon, Tensor(batch))
                prior = Tensor(rng.normal(size=(len(batch), self.config.latent_dim)))
                mmd = mmd_penalty(codes, prior, scale=1.0)
                loss = recon_loss + mmd * self.config.mmd_weight
                loss.backward()
                optimizer.step()
                recon_losses.append(recon_loss.item())
                mmd_losses.append(mmd.item())
            self.history.reconstruction.append(float(np.mean(recon_losses)))
            self.history.mmd.append(float(np.mean(mmd_losses)))
        return self.history

    # ------------------------------------------------------------------
    def sample_features(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Decode prior samples into data-space features."""
        z = rng.normal(size=(count, self.config.latent_dim))
        with no_grad():
            decoded = self.decoder(Tensor(z))
        return decoded.data

    def sample_passwords(self, count: int, rng: Optional[np.random.Generator] = None) -> List[str]:
        """Generate ``count`` password guesses."""
        rng = rng if rng is not None else self.rng_streams.get("sample")
        return self.encoder_codec.decode_batch(self.sample_features(count, rng))

    def reconstruct(self, passwords: Sequence[str]) -> List[str]:
        """Round-trip passwords through the autoencoder (diagnostics)."""
        features = self.encoder_codec.encode_batch(passwords)
        with no_grad():
            decoded = self.decoder(self.encoder(Tensor(features)))
        return self.encoder_codec.decode_batch(decoded.data)

    # ------------------------------------------------------------------
    def save(self, path):
        """Persist encoder + decoder weights and config."""
        from dataclasses import asdict

        from repro.utils.serialization import save_checkpoint

        state = {f"encoder.{k}": v for k, v in self.encoder.state_dict().items()}
        state.update({f"decoder.{k}": v for k, v in self.decoder.state_dict().items()})
        return save_checkpoint(path, state, {"config": asdict(self.config)})

    @classmethod
    def load(cls, path) -> "CWAE":
        """Restore a model saved by :meth:`save`."""
        from repro.utils.serialization import load_checkpoint

        state, metadata = load_checkpoint(path)
        model = cls(CWAEConfig(**metadata["config"]))
        model.encoder.load_state_dict(
            {k[len("encoder."):]: v for k, v in state.items() if k.startswith("encoder.")}
        )
        model.decoder.load_state_dict(
            {k[len("decoder."):]: v for k, v in state.items() if k.startswith("decoder.")}
        )
        return model

"""CWAE decoder: latent code -> password features in (0, 1)."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn import Linear, Module


class Decoder(Module):
    """MLP decoder with sigmoid output into the encoding cube."""

    def __init__(
        self,
        latent_dim: int,
        data_dim: int,
        hidden: int = 128,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.fc1 = Linear(latent_dim, hidden, rng=rng)
        self.fc2 = Linear(hidden, hidden, rng=rng)
        self.head = Linear(hidden, data_dim, rng=rng)
        self.data_dim = data_dim

    def forward(self, z: Tensor) -> Tensor:
        hidden = self.fc1(z).relu()
        hidden = self.fc2(hidden).relu()
        return self.head(hidden).sigmoid()

"""Context Wasserstein Autoencoder baseline (Sec. VI-C).

Pasquini et al.'s deep latent variable model: a deterministic
encoder/decoder trained as a *context* autoencoder (the encoder sees a
noisy version of the password with characters dropped with probability
epsilon/|x|; the decoder reconstructs the original) with an MMD penalty
matching the aggregate posterior to the N(0, I) prior (WAE-MMD).

Unlike PassFlow, the latent dimensionality is free (the paper uses 128 and
attributes CWAE's higher unique-sample counts to it, Table III discussion).
"""

from repro.baselines.cwae.encoder import Encoder
from repro.baselines.cwae.decoder import Decoder
from repro.baselines.cwae.wae import CWAE, CWAEConfig, mmd_penalty

__all__ = ["Encoder", "Decoder", "CWAE", "CWAEConfig", "mmd_penalty"]

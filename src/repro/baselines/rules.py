"""HashCat/JTR-style rule-based guesser.

The traditional-tool family the paper's introduction contrasts against:
take a wordlist (here: the most frequent stems of the training corpus) and
expand it through mangling rules.  Serves as the non-learned reference point
in the baseline shootout example.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence

import numpy as np

from repro.data.mangling import RuleEngine


def letter_stem(password: str) -> str:
    """Longest leading alphabetic run (the 'word' part of word+digits)."""
    stem = []
    for ch in password:
        if ch.isalpha():
            stem.append(ch.lower())
        else:
            break
    return "".join(stem)


class RuleBasedGuesser:
    """Wordlist + mangling rules guess generator."""

    def __init__(self, wordlist_size: int = 200, max_length: int = 10) -> None:
        if wordlist_size < 1:
            raise ValueError("wordlist_size must be >= 1")
        self.wordlist_size = wordlist_size
        self.max_length = max_length
        self.wordlist: List[str] = []
        self._fitted = False

    def fit(self, passwords: Sequence[str]) -> "RuleBasedGuesser":
        """Derive the wordlist from the most common stems of the corpus."""
        stems = Counter()
        for password in passwords:
            stem = letter_stem(password)
            if len(stem) >= 3:
                stems[stem] += 1
            stems[password[: self.max_length]] += 1
        self.wordlist = [w for w, _ in stems.most_common(self.wordlist_size)]
        if not self.wordlist:
            raise ValueError("corpus produced no usable wordlist")
        self._fitted = True
        return self

    def sample_passwords(self, count: int, rng: np.random.Generator) -> List[str]:
        """Generate ``count`` guesses by randomized rule application."""
        if not self._fitted:
            raise RuntimeError("fit() the guesser first")
        engine = RuleEngine(rng)
        guesses: List[str] = []
        words = self.wordlist
        while len(guesses) < count:
            word = words[int(rng.integers(0, len(words)))]
            guess = engine.stochastic_variant(word)[: self.max_length]
            if guess:
                guesses.append(guess)
        return guesses[:count]

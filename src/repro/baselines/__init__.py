"""Baselines the paper compares against (Sec. V-A, VI).

* :mod:`repro.baselines.gan` -- PassGAN-style Wasserstein GAN (Sec. VI-A/B),
* :mod:`repro.baselines.cwae` -- Context Wasserstein Autoencoder
  (Sec. VI-C),
* :mod:`repro.baselines.markov` -- n-gram Markov model (JTR Markov mode,
  ref [2]),
* :mod:`repro.baselines.pcfg` -- Weir-style probabilistic context-free
  grammar [43],
* :mod:`repro.baselines.rules` -- HashCat/JTR-style wordlist mangling.

Every baseline exposes ``fit(passwords)`` and
``sample_passwords(count, rng)`` so the guessing harness treats them
uniformly with PassFlow.
"""

from repro.baselines.markov import MarkovModel
from repro.baselines.pcfg import PCFGModel
from repro.baselines.rules import RuleBasedGuesser
from repro.baselines.gan import PassGAN, PassGANConfig
from repro.baselines.cwae import CWAE, CWAEConfig

__all__ = [
    "MarkovModel",
    "PCFGModel",
    "RuleBasedGuesser",
    "PassGAN",
    "PassGANConfig",
    "CWAE",
    "CWAEConfig",
]

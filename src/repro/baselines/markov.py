"""Character-level Markov model baseline.

The classic password-guessing baseline (John the Ripper's Markov mode,
ref [2] of the paper; also the reference point of Melicher et al. [30]):
an order-``k`` character model with add-``delta`` smoothing and explicit
start/end symbols, supporting both sampling and exact sequence probability.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

START = "\x02"
END = "\x03"


class MarkovModel:
    """Order-k char n-gram model over passwords."""

    def __init__(self, order: int = 3, smoothing: float = 0.01, max_length: int = 10) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.order = order
        self.smoothing = float(smoothing)
        self.max_length = max_length
        self._counts: Dict[str, Counter] = defaultdict(Counter)
        self._alphabet: List[str] = []
        self._fitted = False
        # sampling caches: context -> (symbols, cumulative probabilities)
        self._dist_cache: Dict[str, Tuple[List[str], np.ndarray]] = {}

    # ------------------------------------------------------------------
    def fit(self, passwords: Sequence[str]) -> "MarkovModel":
        """Count order-k transitions over the corpus."""
        if not passwords:
            raise ValueError("cannot fit on an empty corpus")
        symbols = set()
        for password in passwords:
            padded = START * self.order + password[: self.max_length] + END
            symbols.update(password[: self.max_length])
            for i in range(self.order, len(padded)):
                context = padded[i - self.order : i]
                self._counts[context][padded[i]] += 1
        self._alphabet = sorted(symbols) + [END]
        self._fitted = True
        self._dist_cache.clear()
        return self

    def _distribution(self, context: str) -> Tuple[List[str], np.ndarray]:
        """Smoothed next-symbol distribution for a context (cached)."""
        cached = self._dist_cache.get(context)
        if cached is not None:
            return cached
        counts = self._counts.get(context, Counter())
        weights = np.array(
            [counts.get(s, 0) + self.smoothing for s in self._alphabet], dtype=np.float64
        )
        probs = weights / weights.sum()
        entry = (self._alphabet, probs)
        self._dist_cache[context] = entry
        return entry

    # ------------------------------------------------------------------
    def sample_passwords(self, count: int, rng: np.random.Generator) -> List[str]:
        """Draw ``count`` passwords by ancestral sampling."""
        if not self._fitted:
            raise RuntimeError("fit() the model first")
        out: List[str] = []
        for _ in range(count):
            context = START * self.order
            chars: List[str] = []
            while len(chars) < self.max_length:
                symbols, probs = self._distribution(context)
                symbol = symbols[int(rng.choice(len(symbols), p=probs))]
                if symbol == END:
                    break
                chars.append(symbol)
                context = context[1:] + symbol
            out.append("".join(chars))
        return out

    def log_prob(self, password: str) -> float:
        """Exact log-probability of ``password`` under the model."""
        if not self._fitted:
            raise RuntimeError("fit() the model first")
        padded = START * self.order + password[: self.max_length] + END
        total = 0.0
        for i in range(self.order, len(padded)):
            context = padded[i - self.order : i]
            symbols, probs = self._distribution(context)
            try:
                idx = symbols.index(padded[i])
            except ValueError:
                return float("-inf")
            total += float(np.log(probs[idx]))
        return total


    # ------------------------------------------------------------------
    # approximate highest-probability enumeration
    # ------------------------------------------------------------------
    def top_guesses(self, count: int, beam_width: int = 512) -> List[str]:
        """Approximately the ``count`` most probable passwords (beam search).

        Expands prefix hypotheses breadth-first keeping the ``beam_width``
        most probable at each length; completed passwords (END emitted)
        accumulate and the best ``count`` are returned.  This is the
        enumeration mode a cracking session would use, complementing
        ``sample_passwords``.
        """
        if not self._fitted:
            raise RuntimeError("fit() the model first")
        if count < 0:
            raise ValueError("count must be non-negative")
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")

        beam = [(0.0, "", START * self.order)]
        completed: List[tuple] = []
        for _ in range(self.max_length + 1):
            expansions: List[tuple] = []
            for log_p, prefix, context in beam:
                symbols, probs = self._distribution(context)
                for symbol, prob in zip(symbols, probs):
                    if prob <= 0:
                        continue
                    score = log_p + float(np.log(prob))
                    if symbol == END:
                        completed.append((score, prefix))
                    elif len(prefix) < self.max_length:
                        expansions.append((score, prefix + symbol, context[1:] + symbol))
            expansions.sort(key=lambda e: -e[0])
            beam = expansions[:beam_width]
            if not beam:
                break
        completed.sort(key=lambda e: -e[0])
        unique: List[str] = []
        seen = set()
        for _, password in completed:
            if password and password not in seen:
                seen.add(password)
                unique.append(password)
            if len(unique) >= count:
                break
        return unique

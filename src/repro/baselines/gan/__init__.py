"""PassGAN-style Wasserstein GAN baseline (Sec. VI-A/B).

Substitution note (DESIGN.md): the original PassGAN uses WGAN-GP; gradient
penalty needs double backward, which a first-order engine cannot provide, so
we use the original WGAN Lipschitz mechanism (weight clipping).  The
baseline remains an adversarially-trained implicit generative model with no
explicit density -- the property the paper contrasts flows against.
"""

from repro.baselines.gan.generator import Generator
from repro.baselines.gan.discriminator import Critic
from repro.baselines.gan.wgan import WGANTrainer, WGANTrainingConfig
from repro.baselines.gan.passgan import PassGAN, PassGANConfig

__all__ = [
    "Generator",
    "Critic",
    "WGANTrainer",
    "WGANTrainingConfig",
    "PassGAN",
    "PassGANConfig",
]

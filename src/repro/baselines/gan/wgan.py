"""WGAN training loop (critic/generator alternation with weight clipping)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.baselines.gan.discriminator import Critic
from repro.baselines.gan.generator import Generator
from repro.nn.optim import Adam
from repro.utils.logging import get_logger

logger = get_logger("baselines.gan")


@dataclass
class WGANTrainingConfig:
    """WGAN hyper-parameters (Arjovsky et al. defaults adapted to Adam)."""

    critic_steps: int = 5
    clip: float = 0.01
    learning_rate: float = 1e-4
    betas: tuple = (0.5, 0.9)
    batch_size: int = 128

    def __post_init__(self) -> None:
        if self.critic_steps < 1:
            raise ValueError("critic_steps must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


@dataclass
class WGANHistory:
    """Per-iteration Wasserstein estimates."""

    critic_loss: List[float] = field(default_factory=list)
    generator_loss: List[float] = field(default_factory=list)


class WGANTrainer:
    """Alternating optimization of critic and generator."""

    def __init__(
        self,
        generator: Generator,
        critic: Critic,
        config: WGANTrainingConfig | None = None,
    ) -> None:
        self.generator = generator
        self.critic = critic
        self.config = config or WGANTrainingConfig()
        self.gen_optimizer = Adam(
            generator.parameters(), lr=self.config.learning_rate, betas=self.config.betas
        )
        self.critic_optimizer = Adam(
            critic.parameters(), lr=self.config.learning_rate, betas=self.config.betas
        )
        self.history = WGANHistory()

    def _real_batch(self, features: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        idx = rng.integers(0, len(features), size=self.config.batch_size)
        return features[idx]

    def _critic_step(self, real: np.ndarray, rng: np.random.Generator) -> float:
        noise = self.generator.sample_noise(self.config.batch_size, rng)
        with no_grad():  # generator is fixed during the critic step
            fake = self.generator(Tensor(noise))
        self.critic_optimizer.zero_grad()
        score_real = self.critic(Tensor(real)).mean()
        score_fake = self.critic(fake).mean()
        # critic maximizes real - fake  <=>  minimizes fake - real
        loss = score_fake - score_real
        loss.backward()
        self.critic_optimizer.step()
        self.critic.clip_weights(self.config.clip)
        return loss.item()

    def _generator_step(self, rng: np.random.Generator) -> float:
        noise = self.generator.sample_noise(self.config.batch_size, rng)
        self.gen_optimizer.zero_grad()
        fake = self.generator(Tensor(noise))
        loss = -self.critic(fake).mean()
        loss.backward()
        self.gen_optimizer.step()
        return loss.item()

    def train(
        self,
        features: np.ndarray,
        iterations: int,
        rng: np.random.Generator,
        verbose: bool = False,
    ) -> WGANHistory:
        """Run ``iterations`` generator updates (each with critic_steps)."""
        if len(features) < self.config.batch_size:
            raise ValueError("training set smaller than one batch")
        self.generator.train()
        self.critic.train()
        for iteration in range(iterations):
            critic_losses = [
                self._critic_step(self._real_batch(features, rng), rng)
                for _ in range(self.config.critic_steps)
            ]
            gen_loss = self._generator_step(rng)
            self.history.critic_loss.append(float(np.mean(critic_losses)))
            self.history.generator_loss.append(gen_loss)
            if verbose and (iteration + 1) % 50 == 0:
                logger.info(
                    "wgan iter %d critic=%.4f gen=%.4f",
                    iteration + 1,
                    self.history.critic_loss[-1],
                    gen_loss,
                )
        self.generator.eval()
        self.critic.eval()
        return self.history

"""WGAN critic: data-space features -> Wasserstein score."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn import LeakyReLU, Linear, Module


class Critic(Module):
    """MLP critic returning an unbounded scalar per sample."""

    def __init__(
        self,
        data_dim: int,
        hidden: int = 128,
        depth: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError("depth must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        self.depth = depth
        self.activation = LeakyReLU(0.2)
        widths = [data_dim] + [hidden] * depth
        for i in range(depth):
            self.add_module(f"fc{i}", Linear(widths[i], widths[i + 1], rng=rng))
        self.head = Linear(hidden, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = x
        for i in range(self.depth):
            hidden = self.activation(self._modules[f"fc{i}"](hidden))
        return self.head(hidden)

    def clip_weights(self, clip: float) -> None:
        """WGAN weight clipping (the Lipschitz constraint)."""
        if clip <= 0:
            raise ValueError("clip must be positive")
        for param in self.parameters():
            np.clip(param.data, -clip, clip, out=param.data)

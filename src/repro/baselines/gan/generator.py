"""GAN generator: noise -> data-space password features.

Residual-block MLP with batch normalization, following the PassGAN /
Pasquini et al. recipe (residual generator, batchnorm for depth) at MLP
scale.  Output is squashed to (0, 1) to live in the encoding cube.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn import BatchNorm1d, Linear, Module, ResidualBlock


class Generator(Module):
    """Maps latent noise (B, noise_dim) to features (B, data_dim).

    Two output heads, matching the two password representations:

    * sigmoid (default) -- features in (0,1), the numeric bin encoding;
    * per-position softmax (``softmax_positions``/``softmax_vocab`` set) --
      ``data_dim = positions * vocab`` logits reshaped to (B, L, V) and
      normalized per position, the PassGAN one-hot representation.
    """

    def __init__(
        self,
        noise_dim: int,
        data_dim: int,
        hidden: int = 128,
        num_blocks: int = 2,
        rng: np.random.Generator | None = None,
        softmax_positions: int | None = None,
        softmax_vocab: int | None = None,
    ) -> None:
        super().__init__()
        if noise_dim < 1 or data_dim < 1:
            raise ValueError("dimensions must be positive")
        if (softmax_positions is None) != (softmax_vocab is None):
            raise ValueError("softmax_positions and softmax_vocab go together")
        if softmax_positions is not None and softmax_positions * softmax_vocab != data_dim:
            raise ValueError("data_dim must equal positions * vocab for softmax head")
        rng = rng if rng is not None else np.random.default_rng()
        self.noise_dim = noise_dim
        self.data_dim = data_dim
        self.softmax_positions = softmax_positions
        self.softmax_vocab = softmax_vocab
        self.input = Linear(noise_dim, hidden, rng=rng)
        self.num_blocks = num_blocks
        for i in range(num_blocks):
            self.add_module(f"block{i}", ResidualBlock(hidden, rng=rng))
            self.add_module(f"bn{i}", BatchNorm1d(hidden))
        self.output = Linear(hidden, data_dim, rng=rng)

    def forward(self, noise: Tensor) -> Tensor:
        hidden = self.input(noise).relu()
        for i in range(self.num_blocks):
            hidden = self._modules[f"block{i}"](hidden)
            hidden = self._modules[f"bn{i}"](hidden)
        logits = self.output(hidden)
        if self.softmax_positions is None:
            return logits.sigmoid()
        from repro.autograd import logsumexp

        batch = logits.shape[0]
        shaped = logits.reshape(batch, self.softmax_positions, self.softmax_vocab)
        log_norm = logsumexp(shaped, axis=-1, keepdims=True)
        probs = (shaped - log_norm).exp()
        return probs.reshape(batch, self.data_dim)

    def sample_noise(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Standard-normal noise batch."""
        return rng.normal(0.0, 1.0, size=(count, self.noise_dim))

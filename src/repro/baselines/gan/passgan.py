"""PassGAN wrapper: corpus in, password guesses out."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.baselines.gan.discriminator import Critic
from repro.baselines.gan.generator import Generator
from repro.baselines.gan.wgan import WGANTrainer, WGANTrainingConfig
from repro.data.alphabet import Alphabet, default_alphabet
from repro.data.dataset import PasswordDataset
from repro.data.encoding import PasswordEncoder
from repro.utils.rng import RngStream


@dataclass
class PassGANConfig:
    """Architecture + training knobs of the GAN baseline.

    ``encoding`` selects the data representation:

    * ``"numeric"`` -- the compact bin encoding PassFlow uses (default;
      cheapest, shares the codec with the rest of the repo),
    * ``"onehot"`` -- the per-position character distributions the real
      PassGAN / Pasquini GAN operate on (Sec. VI-A/B), with the
      stochastic-smoothing trick applied to the real samples.
    """

    max_length: int = 10
    alphabet_chars: Optional[str] = None
    noise_dim: int = 32
    hidden: int = 128
    num_blocks: int = 2
    critic_depth: int = 3
    iterations: int = 500
    batch_size: int = 128
    learning_rate: float = 1e-4
    encoding: str = "numeric"
    smoothing_gamma: float = 0.01  # one-hot stochastic smoothing strength
    seed: int = 0

    def __post_init__(self) -> None:
        if self.encoding not in ("numeric", "onehot"):
            raise ValueError("encoding must be 'numeric' or 'onehot'")

    @classmethod
    def small(cls, seed: int = 0) -> "PassGANConfig":
        """CPU-scale configuration."""
        return cls(hidden=64, iterations=300, seed=seed)


class PassGAN:
    """GAN-based password guesser with the common fit/sample interface."""

    def __init__(self, config: Optional[PassGANConfig] = None) -> None:
        self.config = config or PassGANConfig()
        chars = self.config.alphabet_chars
        self.alphabet = Alphabet(chars) if chars else default_alphabet()
        self.rng_streams = RngStream(self.config.seed)
        init_rng = self.rng_streams.get("weights")
        if self.config.encoding == "onehot":
            from repro.data.onehot import OneHotEncoder

            self.encoder = OneHotEncoder(self.alphabet, max_length=self.config.max_length)
            data_dim = self.encoder.flat_dim
            softmax_positions = self.config.max_length
            softmax_vocab = self.encoder.vocab_size
        else:
            self.encoder = PasswordEncoder(self.alphabet, max_length=self.config.max_length)
            data_dim = self.config.max_length
            softmax_positions = None
            softmax_vocab = None
        self.generator = Generator(
            self.config.noise_dim,
            data_dim,
            hidden=self.config.hidden,
            num_blocks=self.config.num_blocks,
            rng=init_rng,
            softmax_positions=softmax_positions,
            softmax_vocab=softmax_vocab,
        )
        self.critic = Critic(
            data_dim,
            hidden=self.config.hidden,
            depth=self.config.critic_depth,
            rng=init_rng,
        )
        self.trainer = WGANTrainer(
            self.generator,
            self.critic,
            WGANTrainingConfig(
                batch_size=self.config.batch_size,
                learning_rate=self.config.learning_rate,
            ),
        )

    def fit(
        self,
        data: Union[PasswordDataset, Sequence[str]],
        iterations: Optional[int] = None,
        verbose: bool = False,
    ):
        """Adversarially train on encoded (and noised) password features.

        Numeric encoding gets within-bin dequantization noise; one-hot gets
        the Pasquini stochastic smoothing (Sec. VI-B).
        """
        train_rng = self.rng_streams.get("train")
        passwords = data.train if isinstance(data, PasswordDataset) else list(data)
        features = self.encoder.encode_batch(passwords)
        if self.config.encoding == "onehot":
            features = self.encoder.smooth(
                features, train_rng, gamma=self.config.smoothing_gamma
            )
        else:
            features = self.encoder.dequantize(features, train_rng)
        iterations = iterations if iterations is not None else self.config.iterations
        return self.trainer.train(features, iterations, train_rng, verbose=verbose)

    def sample_features(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Generate raw data-space features."""
        noise = self.generator.sample_noise(count, rng)
        with no_grad():
            fake = self.generator(Tensor(noise))
        return fake.data

    def sample_passwords(self, count: int, rng: Optional[np.random.Generator] = None) -> List[str]:
        """Generate ``count`` password guesses."""
        rng = rng if rng is not None else self.rng_streams.get("sample")
        return self.encoder.decode_batch(self.sample_features(count, rng))

    # ------------------------------------------------------------------
    def save(self, path):
        """Persist generator + critic weights and config."""
        from dataclasses import asdict

        from repro.utils.serialization import save_checkpoint

        state = {f"generator.{k}": v for k, v in self.generator.state_dict().items()}
        state.update({f"critic.{k}": v for k, v in self.critic.state_dict().items()})
        return save_checkpoint(path, state, {"config": asdict(self.config)})

    @classmethod
    def load(cls, path) -> "PassGAN":
        """Restore a model saved by :meth:`save`."""
        from repro.utils.serialization import load_checkpoint

        state, metadata = load_checkpoint(path)
        model = cls(PassGANConfig(**metadata["config"]))
        model.generator.load_state_dict(
            {k[len("generator."):]: v for k, v in state.items() if k.startswith("generator.")}
        )
        model.critic.load_state_dict(
            {k[len("critic."):]: v for k, v in state.items() if k.startswith("critic.")}
        )
        model.generator.eval()
        model.critic.eval()
        return model

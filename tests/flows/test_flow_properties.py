"""Hypothesis property tests on flow invariants.

These are the invariants the paper's math rests on: bijectivity (Eq. 2),
additive log-determinants (Eq. 6), and mass conservation under the change
of variables (Eq. 3) -- checked over randomized architectures and inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, no_grad
from repro.flows import AffineCoupling, Flow, LogitTransform, StandardNormalPrior
from repro.flows.masks import alternating_masks, char_run_mask
from repro.flows.permutation import Permutation


def build_random_flow(dim, couplings, run_length, seed):
    rng = np.random.default_rng(seed)
    bijectors = []
    for mask in alternating_masks(f"char-run-{run_length}", dim, couplings):
        coupling = AffineCoupling(mask, hidden=8, num_blocks=1, rng=rng)
        coupling.scale_net.output.weight.data[:] = rng.normal(size=(8, dim)) * 0.3
        coupling.translate_net.output.weight.data[:] = rng.normal(size=(8, dim)) * 0.3
        bijectors.append(coupling)
    return Flow(bijectors, prior=StandardNormalPrior(dim))


flow_params = st.tuples(
    st.integers(min_value=4, max_value=8),   # dim (>= 2 * max run length)
    st.integers(min_value=1, max_value=4),   # couplings
    st.integers(min_value=1, max_value=2),   # mask run length
    st.integers(min_value=0, max_value=1000),  # seed
)


@given(flow_params)
@settings(max_examples=20, deadline=None)
def test_flow_is_bijective(params):
    dim, couplings, run, seed = params
    flow = build_random_flow(dim, couplings, run, seed)
    x = np.random.default_rng(seed + 1).normal(size=(4, dim))
    assert np.allclose(flow.decode(flow.encode(x)), x, atol=1e-8)


@given(flow_params)
@settings(max_examples=20, deadline=None)
def test_log_det_is_additive(params):
    dim, couplings, run, seed = params
    flow = build_random_flow(dim, couplings, run, seed)
    x = np.random.default_rng(seed + 2).normal(size=(3, dim))
    with no_grad():
        _, total = flow(Tensor(x))
        partial = np.zeros(3)
        z = Tensor(x)
        for bijector in flow.bijectors:
            z, log_det = bijector(z)
            partial = partial + log_det.data
    assert np.allclose(total.data, partial, atol=1e-10)


@given(flow_params)
@settings(max_examples=15, deadline=None)
def test_inverse_jacobian_cancels(params):
    # log|det J_f(x)| + log|det J_{f^-1}(f(x))| == 0 for any bijection
    dim, couplings, run, seed = params
    flow = build_random_flow(dim, couplings, run, seed)
    x = np.random.default_rng(seed + 3).normal(size=(2, dim))
    with no_grad():
        z, forward_log_det = flow(Tensor(x))
        # numeric logdet of the inverse via re-encoding the decoded point
        x_back = flow.decode(z.data)
        _, log_det_again = flow(Tensor(x_back))
    assert np.allclose(forward_log_det.data, log_det_again.data, atol=1e-8)


@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=25, deadline=None)
def test_permutation_composition_invertible(dim, seed):
    rng = np.random.default_rng(seed)
    flow = Flow(
        [Permutation.random(dim, rng), Permutation.random(dim, rng)],
        prior=StandardNormalPrior(dim),
    )
    x = rng.normal(size=(3, dim))
    assert np.allclose(flow.decode(flow.encode(x)), x)


@given(st.floats(min_value=0.0, max_value=0.4), st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_logit_bijective_over_unit_cube(alpha, seed):
    logit = LogitTransform(alpha=alpha)
    x = np.random.default_rng(seed).uniform(0.01, 0.99, size=(5, 4))
    with no_grad():
        y, _ = logit(Tensor(x))
        back = logit.inverse(y)
    assert np.allclose(back.data, x, atol=1e-9)


@given(flow_params)
@settings(max_examples=10, deadline=None)
def test_density_normalization_direction(params):
    # encode-then-prior density must equal flow.log_prob exactly
    dim, couplings, run, seed = params
    flow = build_random_flow(dim, couplings, run, seed)
    x = np.random.default_rng(seed + 5).normal(size=(4, dim))
    with no_grad():
        z, log_det = flow(Tensor(x))
    manual = flow.prior.log_prob(z.data) + log_det.data
    assert np.allclose(manual, flow.log_prob(x), atol=1e-10)

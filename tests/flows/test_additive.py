"""Additive (NICE) coupling layer."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.autograd.grad_check import check_gradients
from repro.flows.additive import AdditiveCoupling
from repro.flows.masks import char_run_mask


@pytest.fixture
def coupling():
    layer = AdditiveCoupling(char_run_mask(6, 1), hidden=12, num_blocks=1,
                             rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    layer.translate_net.output.weight.data[:] = rng.normal(size=(12, 6)) * 0.3
    return layer


class TestConstruction:
    def test_mask_validation(self):
        with pytest.raises(ValueError):
            AdditiveCoupling(np.ones(4))
        with pytest.raises(ValueError):
            AdditiveCoupling(np.array([0.5, 1.0]))
        with pytest.raises(ValueError):
            AdditiveCoupling(np.zeros((2, 2)))


class TestBijection:
    def test_roundtrip(self, coupling):
        x = np.random.randn(5, 6)
        with no_grad():
            z, _ = coupling(Tensor(x))
            assert np.allclose(coupling.inverse(z).data, x, atol=1e-12)

    def test_volume_preserving(self, coupling):
        _, log_det = coupling(Tensor(np.random.randn(4, 6)))
        assert np.allclose(log_det.data, 0.0)

    def test_masked_coordinates_unchanged(self, coupling):
        x = np.random.randn(3, 6)
        z, _ = coupling(Tensor(x))
        mask = coupling.mask.astype(bool)
        assert np.allclose(z.data[:, mask], x[:, mask])

    def test_gradcheck(self, coupling):
        def f(t):
            z, _ = coupling(t)
            return z.sum()

        check_gradients(f, [np.random.randn(2, 6)], atol=1e-4)


class TestInPassFlow:
    def test_additive_model_builds_and_trains(self, alphabet, corpus):
        from repro.core.model import PassFlow, PassFlowConfig

        config = PassFlowConfig.tiny(seed=31)
        config.alphabet_chars = alphabet.chars
        config.coupling_type = "additive"
        model = PassFlow(config)
        history = model.fit(corpus[:300], epochs=2)
        assert len(history.nll) == 2
        passwords = ["love12"]
        assert model.decode_latents(model.encode_passwords(passwords)) == passwords

    def test_invalid_coupling_type(self, alphabet):
        from repro.core.model import PassFlow, PassFlowConfig

        config = PassFlowConfig.tiny()
        config.coupling_type = "wavelet"
        with pytest.raises(ValueError):
            PassFlow(config)

"""Latent priors: standard normal and the Eq. 14 mixture."""

import numpy as np
import pytest
from scipy import stats

from repro.autograd import Tensor
from repro.flows.priors import GaussianMixturePrior, StandardNormalPrior


class TestStandardNormal:
    def test_log_prob_matches_scipy(self):
        prior = StandardNormalPrior(4)
        z = np.random.randn(10, 4)
        expected = stats.multivariate_normal(np.zeros(4), np.eye(4)).logpdf(z)
        assert np.allclose(prior.log_prob(z), expected)

    def test_log_prob_with_sigma(self):
        prior = StandardNormalPrior(3, sigma=0.5)
        z = np.random.randn(5, 3)
        expected = stats.multivariate_normal(np.zeros(3), 0.25 * np.eye(3)).logpdf(z)
        assert np.allclose(prior.log_prob(z), expected)

    def test_tensor_and_numpy_agree(self):
        prior = StandardNormalPrior(4, sigma=0.8)
        z = np.random.randn(6, 4)
        assert np.allclose(prior.log_prob_tensor(Tensor(z)).data, prior.log_prob(z))

    def test_sample_moments(self):
        prior = StandardNormalPrior(2, sigma=2.0)
        samples = prior.sample(20000, np.random.default_rng(0))
        assert abs(samples.mean()) < 0.05
        assert abs(samples.std() - 2.0) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            StandardNormalPrior(0)
        with pytest.raises(ValueError):
            StandardNormalPrior(3, sigma=0.0)


class TestGaussianMixture:
    def _scipy_log_prob(self, z, means, sigmas, weights):
        weights = np.asarray(weights, dtype=float)
        weights = weights / weights.sum()
        parts = [
            np.log(w) + stats.multivariate_normal(m, s**2 * np.eye(len(m))).logpdf(z)
            for m, s, w in zip(means, sigmas, weights)
            if w > 0
        ]
        return np.logaddexp.reduce(np.stack(parts, axis=0), axis=0)

    def test_log_prob_matches_scipy(self):
        means = np.array([[0.0, 0.0], [3.0, 3.0]])
        prior = GaussianMixturePrior(means, sigmas=[1.0, 0.5], weights=[1.0, 2.0])
        z = np.random.randn(8, 2)
        expected = self._scipy_log_prob(z, means, [1.0, 0.5], [1.0, 2.0])
        assert np.allclose(prior.log_prob(z), expected)

    def test_tensor_and_numpy_agree(self):
        means = np.random.randn(3, 4)
        prior = GaussianMixturePrior(means, sigmas=0.3)
        z = np.random.randn(5, 4)
        assert np.allclose(prior.log_prob_tensor(Tensor(z)).data, prior.log_prob(z))

    def test_zero_weight_component_ignored(self):
        means = np.array([[0.0], [100.0]])
        prior = GaussianMixturePrior(means, sigmas=1.0, weights=[1.0, 0.0])
        samples = prior.sample(500, np.random.default_rng(0))
        assert np.all(np.abs(samples) < 10)

    def test_samples_cluster_around_means(self):
        means = np.array([[-5.0, -5.0], [5.0, 5.0]])
        prior = GaussianMixturePrior(means, sigmas=0.1)
        samples = prior.sample(400, np.random.default_rng(1))
        near_a = np.linalg.norm(samples - means[0], axis=1) < 1.0
        near_b = np.linalg.norm(samples - means[1], axis=1) < 1.0
        assert np.all(near_a | near_b)
        assert near_a.sum() > 100 and near_b.sum() > 100

    def test_scalar_sigma_broadcasts(self):
        prior = GaussianMixturePrior(np.zeros((3, 2)), sigmas=0.5)
        assert prior.sigmas.shape == (3,)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianMixturePrior(np.zeros((2, 2)), sigmas=0.0)
        with pytest.raises(ValueError):
            GaussianMixturePrior(np.zeros((2, 2)), sigmas=1.0, weights=[1.0])
        with pytest.raises(ValueError):
            GaussianMixturePrior(np.zeros((2, 2)), sigmas=1.0, weights=[-1.0, 1.0])
        with pytest.raises(ValueError):
            GaussianMixturePrior(np.zeros((2, 2)), sigmas=1.0, weights=[0.0, 0.0])

"""Affine coupling layer: invertibility, Jacobian, masking semantics."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.autograd.grad_check import check_gradients
from repro.flows.coupling import AffineCoupling
from repro.flows.masks import char_run_mask, horizontal_mask


@pytest.fixture
def coupling():
    return AffineCoupling(
        char_run_mask(6, 1), hidden=16, num_blocks=1, rng=np.random.default_rng(0)
    )


def randomize(coupling, seed=1):
    """Give the zero-initialized output heads non-trivial weights."""
    rng = np.random.default_rng(seed)
    coupling.scale_net.output.weight.data[:] = rng.normal(size=coupling.scale_net.output.weight.shape) * 0.3
    coupling.translate_net.output.weight.data[:] = rng.normal(size=coupling.translate_net.output.weight.shape) * 0.3
    return coupling


class TestConstruction:
    def test_rejects_non_binary_mask(self):
        with pytest.raises(ValueError):
            AffineCoupling(np.array([0.5, 1.0]))

    def test_rejects_all_ones_mask(self):
        with pytest.raises(ValueError):
            AffineCoupling(np.ones(4))

    def test_rejects_2d_mask(self):
        with pytest.raises(ValueError):
            AffineCoupling(np.zeros((2, 2)))

    def test_rejects_bad_clamp(self):
        with pytest.raises(ValueError):
            AffineCoupling(char_run_mask(4, 1), scale_clamp=0.0)


class TestIdentityAtInit:
    def test_forward_is_identity(self, coupling):
        x = np.random.randn(3, 6)
        z, log_det = coupling(Tensor(x))
        assert np.allclose(z.data, x)
        assert np.allclose(log_det.data, 0.0)


class TestInvertibility:
    def test_roundtrip(self, coupling):
        randomize(coupling)
        x = np.random.randn(5, 6)
        with no_grad():
            z, _ = coupling(Tensor(x))
            back = coupling.inverse(z)
        assert np.allclose(back.data, x, atol=1e-10)

    def test_roundtrip_horizontal_mask(self):
        coupling = randomize(
            AffineCoupling(horizontal_mask(8), hidden=12, num_blocks=1, rng=np.random.default_rng(2))
        )
        x = np.random.randn(4, 8)
        with no_grad():
            z, _ = coupling(Tensor(x))
            assert np.allclose(coupling.inverse(z).data, x, atol=1e-10)

    def test_masked_coordinates_unchanged(self, coupling):
        randomize(coupling)
        x = np.random.randn(3, 6)
        z, _ = coupling(Tensor(x))
        mask = coupling.mask.astype(bool)
        assert np.allclose(z.data[:, mask], x[:, mask])


class TestJacobian:
    def test_log_det_matches_numeric_jacobian(self, coupling):
        randomize(coupling)
        x = np.random.randn(1, 6)

        def flat_forward(v):
            with no_grad():
                z, _ = coupling(Tensor(v.reshape(1, 6)))
            return z.data.ravel()

        eps = 1e-6
        jac = np.zeros((6, 6))
        for j in range(6):
            dx = np.zeros(6)
            dx[j] = eps
            jac[:, j] = (flat_forward(x.ravel() + dx) - flat_forward(x.ravel() - dx)) / (2 * eps)
        _, log_det = coupling(Tensor(x))
        sign, numeric_log_det = np.linalg.slogdet(jac)
        assert sign > 0
        assert abs(log_det.data[0] - numeric_log_det) < 1e-5

    def test_scale_bounded_by_clamp(self, coupling):
        randomize(coupling, seed=9)
        x = np.random.randn(10, 6) * 10
        masked = Tensor(x * coupling.mask)
        scale, _ = coupling._scale_translate(masked)
        assert np.max(np.abs(scale.data)) <= coupling.scale_clamp + 1e-12


class TestGradients:
    def test_forward_gradcheck(self):
        coupling = randomize(
            AffineCoupling(char_run_mask(4, 1), hidden=8, num_blocks=1, rng=np.random.default_rng(3))
        )

        def f(t):
            z, log_det = coupling(t)
            return z.sum() + log_det.sum()

        check_gradients(f, [np.random.randn(2, 4)], atol=1e-4)

    def test_parameter_gradients_flow(self, coupling):
        randomize(coupling)
        z, log_det = coupling(Tensor(np.random.randn(4, 6)))
        (z.sum() + log_det.sum()).backward()
        grads = [p.grad for p in coupling.parameters()]
        assert any(g is not None and np.any(g != 0) for g in grads)

"""Masking strategies (Sec. III-A.1, V-C)."""

import numpy as np
import pytest

from repro.flows.masks import alternating_masks, char_run_mask, horizontal_mask, make_mask


class TestHorizontal:
    def test_splits_in_half(self):
        assert np.allclose(horizontal_mask(6), [0, 0, 0, 1, 1, 1])

    def test_odd_dim(self):
        mask = horizontal_mask(5)
        assert mask.sum() == 3  # ceil half ones

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            horizontal_mask(1)


class TestCharRun:
    def test_run_one_alternates(self):
        assert np.allclose(char_run_mask(6, 1), [0, 1, 0, 1, 0, 1])

    def test_run_two_pairs(self):
        assert np.allclose(char_run_mask(8, 2), [0, 0, 1, 1, 0, 0, 1, 1])

    def test_run_longer_than_dim(self):
        assert np.allclose(char_run_mask(4, 10), [0, 0, 0, 0])

    def test_invalid_run_raises(self):
        with pytest.raises(ValueError):
            char_run_mask(4, 0)


class TestMakeMask:
    def test_by_name(self):
        assert np.allclose(make_mask("horizontal", 4), horizontal_mask(4))
        assert np.allclose(make_mask("char-run-2", 8), char_run_mask(8, 2))

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_mask("diagonal", 4)

    def test_bad_run_spec_raises(self):
        with pytest.raises(ValueError):
            make_mask("char-run-x", 4)


class TestAlternating:
    def test_alternates_b_and_complement(self):
        masks = alternating_masks("char-run-1", 6, 4)
        assert np.allclose(masks[0], 1.0 - masks[1])
        assert np.allclose(masks[0], masks[2])

    def test_every_coordinate_transformed_somewhere(self):
        # with alternation no coordinate is passthrough in every layer
        masks = alternating_masks("horizontal", 10, 2)
        passthrough_everywhere = np.logical_and.reduce([m == 1.0 for m in masks])
        assert not passthrough_everywhere.any()

    def test_count_validation(self):
        with pytest.raises(ValueError):
            alternating_masks("horizontal", 4, 0)

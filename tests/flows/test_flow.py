"""Composed flow: exact likelihood, invertibility, sampling, training."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.flows import AffineCoupling, Flow, LogitTransform, StandardNormalPrior
from repro.flows.masks import alternating_masks
from repro.flows.priors import GaussianMixturePrior
from repro.nn.optim import Adam


def build_flow(dim=4, couplings=3, hidden=12, seed=0, randomize=True):
    rng = np.random.default_rng(seed)
    bijectors = []
    for mask in alternating_masks("char-run-1", dim, couplings):
        coupling = AffineCoupling(mask, hidden=hidden, num_blocks=1, rng=rng)
        if randomize:
            coupling.scale_net.output.weight.data[:] = rng.normal(size=(hidden, dim)) * 0.2
            coupling.translate_net.output.weight.data[:] = rng.normal(size=(hidden, dim)) * 0.2
        bijectors.append(coupling)
    return Flow(bijectors, prior=StandardNormalPrior(dim))


class TestComposition:
    def test_needs_bijectors(self):
        with pytest.raises(ValueError):
            Flow([])

    def test_dim_inferred(self):
        assert build_flow(dim=6).dim == 6

    def test_encode_decode_roundtrip(self):
        flow = build_flow()
        x = np.random.randn(8, 4)
        assert np.allclose(flow.decode(flow.encode(x)), x, atol=1e-8)

    def test_check_invertibility_passes(self):
        flow = build_flow()
        assert flow.check_invertibility(np.random.randn(5, 4)) < 1e-8

    def test_check_invertibility_raises_on_broken_flow(self):
        flow = build_flow()
        original_inverse = flow.bijectors[0].inverse_array
        flow.bijectors[0].inverse_array = lambda z: original_inverse(z) + 1.0
        with pytest.raises(AssertionError):
            flow.check_invertibility(np.random.randn(2, 4))

    def test_forward_accumulates_log_det(self):
        flow = build_flow(couplings=2)
        x = Tensor(np.random.randn(3, 4))
        _, total = flow(x)
        partial_sum = None
        z = x
        for bijector in flow.bijectors:
            z, log_det = bijector(z)
            partial_sum = log_det if partial_sum is None else partial_sum + log_det
        assert np.allclose(total.data, partial_sum.data)


class TestLikelihood:
    def test_log_prob_change_of_variable(self):
        # for an identity-initialized flow, log p(x) == prior log prob
        flow = build_flow(randomize=False)
        x = np.random.randn(6, 4)
        assert np.allclose(flow.log_prob(x), flow.prior.log_prob(x))

    def test_log_prob_tensor_matches_numpy(self):
        flow = build_flow()
        x = np.random.randn(5, 4)
        tensor_version = flow.log_prob_tensor(Tensor(x)).data
        assert np.allclose(tensor_version, flow.log_prob(x), atol=1e-10)

    def test_nll_is_mean_negative_log_prob(self):
        flow = build_flow()
        x = np.random.randn(7, 4)
        assert abs(flow.nll(Tensor(x)).item() + flow.log_prob(x).mean()) < 1e-10

    def test_density_integrates_under_transformation(self):
        # mass conservation sanity: average density ratio after an affine
        # stretch matches the Jacobian correction
        flow = build_flow()
        x = np.random.randn(4, 4)
        z, log_det = flow(Tensor(x))
        manual = flow.prior.log_prob(z.data) + log_det.data
        assert np.allclose(manual, flow.log_prob(x), atol=1e-10)


class TestSampling:
    def test_sample_shape(self):
        flow = build_flow()
        samples = flow.sample(32, np.random.default_rng(0))
        assert samples.shape == (32, 4)

    def test_sample_with_alternative_prior(self):
        flow = build_flow(randomize=False)  # identity flow
        mixture = GaussianMixturePrior(np.full((1, 4), 9.0), sigmas=0.01)
        samples = flow.sample(16, np.random.default_rng(0), prior=mixture)
        assert np.allclose(samples, 9.0, atol=0.1)

    def test_sample_count_validation(self):
        with pytest.raises(ValueError):
            build_flow().sample(0, np.random.default_rng(0))


class TestTraining:
    def test_nll_decreases_on_shifted_gaussian(self):
        flow = build_flow(dim=3, couplings=2, hidden=10, seed=4)
        rng = np.random.default_rng(0)
        data = rng.normal(loc=2.0, scale=0.5, size=(256, 3))
        optimizer = Adam(flow.parameters(), lr=5e-3)
        first = flow.nll(Tensor(data)).item()
        for _ in range(60):
            optimizer.zero_grad()
            loss = flow.nll(Tensor(data))
            loss.backward()
            optimizer.step()
        last = flow.nll(Tensor(data)).item()
        assert last < first - 0.5

    def test_trained_flow_still_invertible(self):
        flow = build_flow(dim=3, couplings=2, hidden=10, seed=5)
        rng = np.random.default_rng(1)
        data = rng.normal(size=(128, 3))
        optimizer = Adam(flow.parameters(), lr=1e-2)
        for _ in range(20):
            optimizer.zero_grad()
            flow.nll(Tensor(data)).backward()
            optimizer.step()
        assert flow.check_invertibility(data[:16], atol=1e-6) < 1e-6


class TestWithLogit:
    def test_logit_flow_roundtrip_on_unit_cube(self):
        rng = np.random.default_rng(0)
        bijectors = [LogitTransform(0.05)]
        for mask in alternating_masks("char-run-1", 4, 2):
            bijectors.append(AffineCoupling(mask, hidden=8, num_blocks=1, rng=rng))
        flow = Flow(bijectors, prior=StandardNormalPrior(4))
        x = np.random.rand(10, 4) * 0.9 + 0.05
        assert np.allclose(flow.decode(flow.encode(x)), x, atol=1e-8)

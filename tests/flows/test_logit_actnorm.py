"""Logit and ActNorm bijectors."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.autograd.grad_check import check_gradients
from repro.flows.actnorm import ActNorm
from repro.flows.logit import LogitTransform


class TestLogit:
    def test_invalid_alpha_raises(self):
        with pytest.raises(ValueError):
            LogitTransform(alpha=0.5)

    def test_roundtrip(self):
        logit = LogitTransform(alpha=0.05)
        x = np.random.rand(4, 6)
        with no_grad():
            y, _ = logit(Tensor(x))
            back = logit.inverse(y)
        assert np.allclose(back.data, x, atol=1e-12)

    def test_maps_unit_cube_to_reals(self):
        logit = LogitTransform(alpha=0.05)
        y, _ = logit(Tensor(np.array([[0.001, 0.999]])))
        assert y.data[0, 0] < -2 and y.data[0, 1] > 2

    def test_log_det_matches_numeric(self):
        logit = LogitTransform(alpha=0.05)
        x = np.random.rand(1, 3)
        eps = 1e-7
        jac_diag = []
        for j in range(3):
            dx = np.zeros(3)
            dx[j] = eps
            with no_grad():
                plus, _ = logit(Tensor((x.ravel() + dx).reshape(1, 3)))
                minus, _ = logit(Tensor((x.ravel() - dx).reshape(1, 3)))
            jac_diag.append((plus.data.ravel()[j] - minus.data.ravel()[j]) / (2 * eps))
        _, log_det = logit(Tensor(x))
        assert abs(log_det.data[0] - np.sum(np.log(jac_diag))) < 1e-5

    def test_gradcheck(self):
        logit = LogitTransform(alpha=0.05)

        def f(t):
            y, log_det = logit(t)
            return y.sum() + log_det.sum()

        check_gradients(f, [np.random.rand(3, 4) * 0.8 + 0.1], atol=1e-4)


class TestActNorm:
    def test_data_dependent_init_standardizes(self):
        actnorm = ActNorm(4)
        x = np.random.randn(256, 4) * 3 + 5
        z, _ = actnorm(Tensor(x))
        assert np.allclose(z.data.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(z.data.std(axis=0), 1.0, atol=1e-3)

    def test_init_happens_once(self):
        actnorm = ActNorm(2)
        first = np.random.randn(64, 2) * 2 + 1
        actnorm(Tensor(first))
        bias_after_first = actnorm.bias.data.copy()
        actnorm(Tensor(np.random.randn(64, 2) * 9 - 4))
        assert np.allclose(actnorm.bias.data, bias_after_first)

    def test_no_init_in_eval_mode(self):
        actnorm = ActNorm(2)
        actnorm.eval()
        actnorm(Tensor(np.random.randn(8, 2) + 100))
        assert np.allclose(actnorm.bias.data, 0.0)

    def test_roundtrip(self):
        actnorm = ActNorm(3)
        x = np.random.randn(16, 3) * 2 + 1
        with no_grad():
            actnorm.initialize_from(x)
            z, _ = actnorm(Tensor(x))
            assert np.allclose(actnorm.inverse(z).data, x, atol=1e-10)

    def test_log_det_value(self):
        actnorm = ActNorm(3)
        actnorm.eval()  # suppress data-dependent re-initialization
        actnorm.log_scale.data[:] = np.array([0.1, -0.2, 0.3])
        _, log_det = actnorm(Tensor(np.random.randn(5, 3)))
        assert np.allclose(log_det.data, 0.2)

    def test_invalid_dim_raises(self):
        with pytest.raises(ValueError):
            ActNorm(0)

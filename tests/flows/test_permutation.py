"""Permutation bijector."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.flows.permutation import Permutation


class TestConstruction:
    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Permutation(np.array([0, 0, 1]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Permutation(np.zeros((2, 2), dtype=int))

    def test_random_factory(self):
        perm = Permutation.random(6, np.random.default_rng(0))
        assert perm.dim == 6

    def test_reverse_factory(self):
        perm = Permutation.reverse(4)
        x = Tensor(np.arange(8.0).reshape(2, 4))
        z, _ = perm(x)
        assert np.allclose(z.data[0], [3, 2, 1, 0])


class TestBijection:
    def test_roundtrip(self):
        perm = Permutation.random(8, np.random.default_rng(1))
        x = np.random.randn(5, 8)
        z, _ = perm(Tensor(x))
        back = perm.inverse(z)
        assert np.allclose(back.data, x)

    def test_volume_preserving(self):
        perm = Permutation.random(5, np.random.default_rng(2))
        _, log_det = perm(Tensor(np.random.randn(3, 5)))
        assert np.allclose(log_det.data, 0.0)

    def test_in_flow_composition(self):
        from repro.flows import AffineCoupling, Flow, StandardNormalPrior
        from repro.flows.masks import char_run_mask

        rng = np.random.default_rng(3)
        flow = Flow(
            [
                AffineCoupling(char_run_mask(6, 1), hidden=8, num_blocks=1, rng=rng),
                Permutation.random(6, rng),
                AffineCoupling(char_run_mask(6, 1), hidden=8, num_blocks=1, rng=rng),
            ],
            prior=StandardNormalPrior(6),
        )
        x = np.random.randn(4, 6)
        assert np.allclose(flow.decode(flow.encode(x)), x, atol=1e-9)

    def test_gradient_passthrough(self):
        perm = Permutation.random(4, np.random.default_rng(4))
        x = Tensor(np.random.randn(2, 4), requires_grad=True)
        z, _ = perm(x)
        (z * 2.0).sum().backward()
        assert np.allclose(x.grad, 2.0)

"""Docstring-completeness lint for the accounting core and the runtime.

The delta-transport contract lives in prose: what a delta contains, which
mode emits which payload, what a merge preserves.  This lint keeps that
prose from rotting by requiring every public module, class, method and
function in :mod:`repro.core.guesser` and :mod:`repro.runtime` to carry a
real docstring (pydocstyle-style presence checks, implemented over ``ast``
so nothing needs importing).
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: The modules whose public surface documents the sharded-accounting
#: contract; every def/class here is API other layers build on.
LINTED_FILES = sorted(
    [SRC / "core" / "guesser.py", *(SRC / "runtime").glob("*.py")]
)

#: Shortest acceptable docstring: one-word docstrings ("Helper.") say
#: nothing about args, units, or invariants.
MIN_LENGTH = 20


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_docstrings(tree: ast.Module, path: Path):
    """Yield ``"path:line name"`` for each undocumented public node."""
    if not ast.get_docstring(tree):
        yield f"{path.name}:1 module docstring"

    def visit(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                qualified = f"{prefix}{child.name}"
                if _is_public(child.name):
                    docstring = ast.get_docstring(child)
                    if not docstring or len(docstring) < MIN_LENGTH:
                        yield f"{path.name}:{child.lineno} {qualified}"
                # nested defs inside private defs are private too
                if _is_public(child.name) and isinstance(child, ast.ClassDef):
                    yield from visit(child, f"{qualified}.")

    yield from visit(tree, "")


@pytest.mark.parametrize("path", LINTED_FILES, ids=lambda p: p.name)
def test_public_api_is_documented(path):
    tree = ast.parse(path.read_text())
    missing = list(_missing_docstrings(tree, path))
    assert not missing, (
        "public API without a (>=%d char) docstring:\n  " % MIN_LENGTH
        + "\n  ".join(missing)
    )


def test_lint_covers_the_contract_files():
    """The delta-transport surface is exactly what this lint watches."""
    names = {path.name for path in LINTED_FILES}
    assert {"guesser.py", "executor.py", "parallel.py", "planner.py", "__init__.py"} <= names

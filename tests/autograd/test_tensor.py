"""Unit tests for the Tensor type and its gradient rules."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, is_grad_enabled, set_grad_enabled
from repro.autograd.grad_check import check_gradients
from repro.autograd.tensor import unbroadcast


class TestConstruction:
    def test_wraps_list(self):
        t = Tensor([1.0, 2.0])
        assert t.shape == (2,)
        assert t.data.dtype == np.float64

    def test_wraps_tensor(self):
        inner = Tensor([1.0])
        outer = Tensor(inner)
        assert outer.data is inner.data

    def test_item_and_len(self):
        assert Tensor(3.5).item() == 3.5
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_detach_breaks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert b._parents == ()

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))


class TestArithmetic:
    def test_add_values(self):
        assert np.allclose((Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])).data, [4.0, 6.0])

    def test_radd_with_scalar(self):
        assert np.allclose((2.0 + Tensor([1.0])).data, [3.0])

    def test_sub_and_rsub(self):
        assert np.allclose((Tensor([5.0]) - 2.0).data, [3.0])
        assert np.allclose((10.0 - Tensor([4.0])).data, [6.0])

    def test_mul_div(self):
        assert np.allclose((Tensor([2.0]) * Tensor([3.0])).data, [6.0])
        assert np.allclose((Tensor([6.0]) / 2.0).data, [3.0])
        assert np.allclose((12.0 / Tensor([4.0])).data, [3.0])

    def test_pow_scalar_only(self):
        assert np.allclose((Tensor([2.0]) ** 3).data, [8.0])
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_values(self):
        a = Tensor(np.eye(2) * 2)
        b = Tensor([[1.0], [3.0]])
        assert np.allclose((a @ b).data, [[2.0], [6.0]])

    def test_comparisons_return_arrays(self):
        mask = Tensor([1.0, 3.0]) > 2.0
        assert mask.dtype == bool
        assert list(mask) == [False, True]


class TestGradients:
    def test_add_grad(self):
        check_gradients(lambda a, b: a + b, [np.random.rand(3), np.random.rand(3)])

    def test_mul_grad(self):
        check_gradients(lambda a, b: a * b, [np.random.rand(4), np.random.rand(4)])

    def test_div_grad(self):
        check_gradients(
            lambda a, b: a / b, [np.random.rand(3), np.random.rand(3) + 1.0]
        )

    def test_pow_grad(self):
        check_gradients(lambda a: a**3, [np.random.rand(5) + 0.5])

    def test_matmul_grad(self):
        check_gradients(
            lambda a, b: a @ b, [np.random.rand(3, 4), np.random.rand(4, 2)]
        )

    def test_broadcast_add_grad(self):
        check_gradients(lambda a, b: a + b, [np.random.rand(3, 4), np.random.rand(4)])

    def test_broadcast_mul_scalar_shape(self):
        check_gradients(lambda a, b: a * b, [np.random.rand(2, 3), np.random.rand(1, 3)])

    def test_reused_node_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        out = a * a + a  # dout/da = 2a + 1 = 5
        out.backward()
        assert np.allclose(a.grad, [5.0])

    def test_diamond_graph(self):
        a = Tensor([1.5], requires_grad=True)
        left = a * 2.0
        right = a * 3.0
        (left + right).backward()
        assert np.allclose(a.grad, [5.0])

    def test_backward_default_ones(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3.0).backward()
        assert np.allclose(a.grad, [3.0, 3.0])

    def test_backward_shape_mismatch_raises(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2.0).backward(np.ones(3))

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).backward()
        a.zero_grad()
        assert a.grad is None


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        assert out._backward is None

    def test_no_grad_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_set_grad_enabled_returns_previous(self):
        previous = set_grad_enabled(False)
        assert previous is True
        set_grad_enabled(True)


class TestUnbroadcast:
    def test_identity_when_same_shape(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_prepended_axes(self):
        g = np.ones((5, 2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)
        assert np.all(unbroadcast(g, (2, 3)) == 5.0)

    def test_sums_stretched_axes(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        assert np.all(out == 3.0)

    def test_scalar_target(self):
        g = np.ones((4, 4))
        assert unbroadcast(g, ()) == 16.0

"""Hypothesis property tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor
from repro.autograd.grad_check import numeric_gradient
from repro.autograd.tensor import unbroadcast

finite_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=4),
    elements=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
)


@given(finite_arrays)
@settings(max_examples=30, deadline=None)
def test_add_is_commutative(x):
    a, b = Tensor(x), Tensor(x[::-1].copy() if x.ndim == 1 else x.T.copy().T)
    assert np.allclose((a + b).data, (b + a).data)


@given(finite_arrays)
@settings(max_examples=30, deadline=None)
def test_exp_log_roundtrip(x):
    t = Tensor(np.abs(x) + 0.5)
    assert np.allclose(t.log().exp().data, t.data, rtol=1e-10)


@given(finite_arrays)
@settings(max_examples=25, deadline=None)
def test_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    assert np.allclose(t.grad, np.ones_like(x))


@given(finite_arrays, st.floats(min_value=-2.0, max_value=2.0))
@settings(max_examples=25, deadline=None)
def test_scalar_mul_gradient(x, scalar):
    t = Tensor(x, requires_grad=True)
    (t * scalar).sum().backward()
    assert np.allclose(t.grad, np.full_like(x, scalar))


@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
        elements=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    )
)
@settings(max_examples=20, deadline=None)
def test_tanh_gradient_matches_numeric(x):
    t = Tensor(x, requires_grad=True)
    t.tanh().sum().backward()
    numeric = numeric_gradient(lambda a: a.tanh(), [x])
    assert np.allclose(t.grad, numeric, atol=1e-4)


@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 3), st.integers(1, 3)),
        elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
    )
)
@settings(max_examples=30, deadline=None)
def test_unbroadcast_inverts_broadcast(x):
    # broadcasting x to a bigger shape then unbroadcasting a ones-gradient
    # must produce the number of repetitions per cell
    big = np.broadcast_to(x, (5,) + x.shape)
    grad = unbroadcast(np.ones_like(big), x.shape)
    assert grad.shape == x.shape
    assert np.allclose(grad, 5.0)


@given(finite_arrays)
@settings(max_examples=25, deadline=None)
def test_no_grad_values_match_grad_values(x):
    from repro.autograd import no_grad

    t = Tensor(x, requires_grad=True)
    with_graph = (t.tanh() * 2.0 + 1.0).data
    with no_grad():
        without_graph = (t.tanh() * 2.0 + 1.0).data
    assert np.allclose(with_graph, without_graph)

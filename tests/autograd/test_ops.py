"""Gradient checks and semantics for every elementwise/reduction/shape op."""

import numpy as np
import pytest
from scipy.special import logsumexp as scipy_logsumexp

from repro.autograd import Tensor, concatenate, logsumexp, maximum, stack, where
from repro.autograd.grad_check import check_gradients


class TestElementwise:
    def test_exp(self):
        check_gradients(lambda a: a.exp(), [np.random.randn(4)])

    def test_log(self):
        check_gradients(lambda a: a.log(), [np.random.rand(4) + 0.5])

    def test_sqrt(self):
        check_gradients(lambda a: a.sqrt(), [np.random.rand(4) + 0.5])

    def test_tanh(self):
        check_gradients(lambda a: a.tanh(), [np.random.randn(4)])

    def test_sigmoid(self):
        check_gradients(lambda a: a.sigmoid(), [np.random.randn(4)])

    def test_sigmoid_extreme_values_stable(self):
        out = Tensor([-1000.0, 1000.0]).sigmoid()
        assert np.all(np.isfinite(out.data))
        assert out.data[0] < 1e-10 and out.data[1] > 1 - 1e-10

    def test_relu(self):
        check_gradients(lambda a: a.relu(), [np.array([-1.0, 0.5, 2.0, -0.3])])

    def test_softplus(self):
        check_gradients(lambda a: a.softplus(), [np.random.randn(5)])

    def test_softplus_large_input_stable(self):
        out = Tensor([800.0]).softplus()
        assert np.isfinite(out.data[0]) and abs(out.data[0] - 800.0) < 1e-6

    def test_abs(self):
        check_gradients(lambda a: a.abs(), [np.array([-2.0, 3.0, -0.5])])

    def test_clip_values_and_grad_mask(self):
        a = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        out = a.clip(0.0, 1.0)
        assert np.allclose(out.data, [0.0, 0.5, 1.0])
        out.sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        check_gradients(lambda a: a.sum(), [np.random.randn(3, 4)])

    def test_sum_axis(self):
        check_gradients(lambda a: a.sum(axis=1), [np.random.randn(3, 4)])

    def test_sum_keepdims(self):
        check_gradients(lambda a: a.sum(axis=0, keepdims=True), [np.random.randn(3, 4)])

    def test_mean_axis(self):
        check_gradients(lambda a: a.mean(axis=0), [np.random.randn(3, 4)])

    def test_mean_matches_numpy(self):
        x = np.random.randn(5, 2)
        assert np.allclose(Tensor(x).mean(axis=1).data, x.mean(axis=1))

    def test_var_matches_numpy(self):
        x = np.random.randn(6, 3)
        assert np.allclose(Tensor(x).var(axis=0).data, x.var(axis=0))

    def test_var_grad(self):
        check_gradients(lambda a: a.var(axis=0), [np.random.randn(4, 3)])

    def test_max_values(self):
        x = np.random.randn(3, 5)
        assert np.allclose(Tensor(x).max(axis=1).data, x.max(axis=1))

    def test_max_grad_unique(self):
        check_gradients(lambda a: a.max(axis=1), [np.random.randn(3, 5)])

    def test_max_grad_splits_ties(self):
        a = Tensor([[1.0, 1.0, 0.0]], requires_grad=True)
        a.max(axis=1).backward()
        assert np.allclose(a.grad, [[0.5, 0.5, 0.0]])


class TestShapeOps:
    def test_reshape(self):
        check_gradients(lambda a: a.reshape(6), [np.random.randn(2, 3)])

    def test_reshape_minus_one(self):
        t = Tensor(np.arange(6.0)).reshape(-1, 2)
        assert t.shape == (3, 2)

    def test_transpose_default(self):
        check_gradients(lambda a: a.T, [np.random.randn(2, 3)])

    def test_transpose_axes(self):
        check_gradients(lambda a: a.transpose(1, 0, 2), [np.random.randn(2, 3, 4)])

    def test_getitem_slice(self):
        check_gradients(lambda a: a[1:3], [np.random.randn(5)])

    def test_getitem_fancy(self):
        check_gradients(lambda a: a[np.array([0, 0, 2])], [np.random.randn(4)])


class TestMultiInputOps:
    def test_concatenate_values(self):
        out = concatenate([Tensor([1.0]), Tensor([2.0, 3.0])])
        assert np.allclose(out.data, [1.0, 2.0, 3.0])

    def test_concatenate_grad(self):
        check_gradients(
            lambda a, b: concatenate([a, b], axis=1),
            [np.random.randn(2, 3), np.random.randn(2, 2)],
        )

    def test_stack_grad(self):
        check_gradients(
            lambda a, b: stack([a, b], axis=0),
            [np.random.randn(3), np.random.randn(3)],
        )

    def test_where_values(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([9.0, 9.0]))
        assert np.allclose(out.data, [1.0, 9.0])

    def test_where_grad(self):
        cond = np.array([True, False, True])
        check_gradients(
            lambda a, b: where(cond, a, b),
            [np.random.randn(3), np.random.randn(3)],
        )

    def test_maximum_values_and_grad(self):
        check_gradients(
            lambda a, b: maximum(a, b),
            [np.array([1.0, 5.0, 2.0]), np.array([3.0, 1.0, 2.5])],
        )


class TestLogSumExp:
    def test_matches_scipy_all(self):
        x = np.random.randn(4, 5)
        assert np.allclose(logsumexp(Tensor(x)).data, scipy_logsumexp(x))

    def test_matches_scipy_axis(self):
        x = np.random.randn(4, 5)
        assert np.allclose(logsumexp(Tensor(x), axis=1).data, scipy_logsumexp(x, axis=1))

    def test_keepdims(self):
        x = np.random.randn(4, 5)
        out = logsumexp(Tensor(x), axis=0, keepdims=True)
        assert out.shape == (1, 5)

    def test_grad(self):
        check_gradients(lambda a: logsumexp(a, axis=1), [np.random.randn(3, 4)])

    def test_grad_all_axes(self):
        check_gradients(lambda a: logsumexp(a), [np.random.randn(3, 4)])

    def test_large_values_stable(self):
        x = np.array([[1000.0, 1000.0]])
        out = logsumexp(Tensor(x), axis=1)
        assert np.allclose(out.data, 1000.0 + np.log(2.0))

    def test_neg_inf_component(self):
        x = np.array([[0.0, -np.inf]])
        out = logsumexp(Tensor(x), axis=1)
        assert np.allclose(out.data, 0.0)

"""Streaming AttackEngine: determinism vs the legacy eager attacks,
resumable state, early stop, and the deprecation shims."""

import warnings

import numpy as np
import pytest

from repro.core.dynamic import DynamicSampler, DynamicSamplingConfig
from repro.core.guesser import GuessingAttack
from repro.core.penalization import StepPenalization
from repro.core.sampling import StaticSampler
from repro.core.smoothing import GaussianSmoother
from repro.strategies import AttackEngine, build, take
from repro.strategies.base import AttackContext, GuessBatch, GuessingStrategy
from repro.strategies.passflow import DynamicStrategy, StaticStrategy

BUDGETS = [200, 600]


def rows_of(report):
    return [(r.guesses, r.unique, r.matched, r.match_percent) for r in report.rows]


def legacy(call):
    """Run a deprecated .attack() while asserting the warning fires."""
    with pytest.warns(DeprecationWarning):
        return call()


class TestEagerEquivalence:
    """The engine must reproduce the seed samplers' numbers exactly."""

    def test_static_matches_legacy(self, trained_model, trained_dataset):
        test_set = trained_dataset.test_set
        old = legacy(
            lambda: StaticSampler(trained_model, batch_size=128).attack(
                test_set, BUDGETS, np.random.default_rng(0)
            )
        )
        new = AttackEngine(test_set, BUDGETS).run(
            build("passflow:static?batch=128", model=trained_model),
            np.random.default_rng(0),
        )
        assert rows_of(new) == rows_of(old)

    def test_dynamic_matches_legacy(self, trained_model, trained_dataset):
        test_set = trained_dataset.test_set
        config = DynamicSamplingConfig(
            alpha=1, sigma=0.12, phi=StepPenalization(2), batch_size=128
        )
        old = legacy(
            lambda: DynamicSampler(trained_model, config).attack(
                test_set, BUDGETS, np.random.default_rng(1)
            )
        )
        new = AttackEngine(test_set, BUDGETS).run(
            build(
                "passflow:dynamic?alpha=1&batch=128&gamma=2&sigma=0.12",
                model=trained_model,
            ),
            np.random.default_rng(1),
        )
        assert rows_of(new) == rows_of(old)

    def test_dynamic_gs_matches_legacy(self, trained_model, trained_dataset):
        test_set = trained_dataset.test_set
        config = DynamicSamplingConfig(
            alpha=1, sigma=0.12, phi=StepPenalization(2), batch_size=128
        )
        old = legacy(
            lambda: DynamicSampler(
                trained_model, config, smoother=GaussianSmoother(trained_model.encoder)
            ).attack(test_set, BUDGETS, np.random.default_rng(2))
        )
        new = AttackEngine(test_set, BUDGETS).run(
            build(
                "passflow:dynamic+gs?alpha=1&batch=128&gamma=2&sigma=0.12",
                model=trained_model,
            ),
            np.random.default_rng(2),
        )
        assert rows_of(new) == rows_of(old)

    def test_sampled_model_matches_guessing_attack(self, corpus, trained_dataset):
        from repro.baselines import MarkovModel

        model = MarkovModel(order=3).fit(corpus[:500])
        test_set = trained_dataset.test_set
        old = GuessingAttack(test_set, BUDGETS, batch_size=256).run(
            model, np.random.default_rng(3), "Markov-3"
        )
        new = AttackEngine(test_set, BUDGETS).run(
            build("markov:3?batch=256", model=model), np.random.default_rng(3)
        )
        assert rows_of(new) == rows_of(old)
        assert new.method == old.method == "Markov-3"

    def test_report_method_defaults_to_strategy_name(self, trained_model, trained_dataset):
        report = AttackEngine(trained_dataset.test_set, [100]).run(
            build("passflow:static", model=trained_model), np.random.default_rng(0)
        )
        assert report.method == "PassFlow-Static"


class TestShims:
    def test_shim_warns_and_preserves_latent_memory(self, trained_model, trained_dataset):
        config = DynamicSamplingConfig(alpha=1, sigma=0.12, batch_size=256)
        sampler = DynamicSampler(trained_model, config)
        report = legacy(
            lambda: sampler.attack(
                trained_dataset.test_set, [600], np.random.default_rng(3)
            )
        )
        assert len(sampler.matched_latents) == report.final().matched
        assert len(sampler.usage_counts) == len(sampler.matched_latents)

    def test_shim_state_assignment_round_trips(self, trained_model):
        sampler = DynamicSampler(trained_model)
        sampler.matched_latents = [np.zeros(10), np.ones(10)]
        sampler.usage_counts = [0, 0]
        assert sampler._mixture_prior() is None  # alpha=5 default: below threshold
        sampler.usage_counts[0] = 7
        assert sampler.usage_counts == [7, 0]


class TestStreamingAndResume:
    def test_stream_yields_checkpoints_in_order(self, trained_model, trained_dataset):
        engine = AttackEngine(trained_dataset.test_set, BUDGETS)
        state = engine.begin()
        rows = list(
            engine.stream(
                build("passflow:static?batch=128", model=trained_model),
                np.random.default_rng(0),
                state,
            )
        )
        assert [r.guesses for r in rows] == BUDGETS
        assert state.done and not state.interrupted
        assert rows == state.accounting.rows

    def test_max_batches_interrupts_and_resumes(self, trained_model, trained_dataset):
        engine = AttackEngine(trained_dataset.test_set, BUDGETS)
        strategy = build("passflow:dynamic?alpha=1&batch=128&sigma=0.12", model=trained_model)
        state = engine.begin()
        rng = np.random.default_rng(4)
        engine.run(strategy, rng, state=state, max_batches=2)
        assert state.interrupted and not state.done
        assert state.total_guesses == 256
        report = engine.run(strategy, rng, state=state, method="PassFlow-Dynamic")
        assert state.done and not state.interrupted
        assert [r.guesses for r in report.rows] == BUDGETS

    def test_stop_when_predicate(self, trained_model, trained_dataset):
        engine = AttackEngine(trained_dataset.test_set, BUDGETS)
        state = engine.begin()
        engine.run(
            build("passflow:static?batch=64", model=trained_model),
            np.random.default_rng(0),
            state=state,
            stop_when=lambda s: s.total_guesses >= 128,
        )
        assert state.interrupted
        assert state.total_guesses == 128

    def test_finished_state_streams_nothing(self, trained_model, trained_dataset):
        engine = AttackEngine(trained_dataset.test_set, [100])
        state = engine.begin()
        strategy = build("passflow:static?batch=64", model=trained_model)
        engine.run(strategy, np.random.default_rng(0), state=state)
        assert state.done
        assert list(engine.stream(strategy, np.random.default_rng(0), state)) == []

    def test_invalid_budgets_fail_at_construction(self, trained_dataset):
        with pytest.raises(ValueError):
            AttackEngine(trained_dataset.test_set, [500, 100])


class TestTake:
    def test_take_matches_direct_sampling(self, trained_model):
        # a static strategy with batch >= count draws the same RNG sequence
        # as model.sample_passwords
        got = take(
            build("passflow:static", model=trained_model),
            17,
            np.random.default_rng(9),
        )
        expected = trained_model.sample_passwords(17, rng=np.random.default_rng(9))
        assert got == expected

    def test_take_exact_count_across_batches(self, trained_model):
        strategy = build("passflow:static?batch=8", model=trained_model)
        assert len(take(strategy, 21, np.random.default_rng(0))) == 21

    def test_take_zero_and_negative(self, trained_model):
        strategy = build("passflow:static", model=trained_model)
        assert take(strategy, 0, np.random.default_rng(0)) == []
        with pytest.raises(ValueError):
            take(strategy, -1, np.random.default_rng(0))

    def test_take_unbinds_strategy(self, trained_model):
        strategy = build("passflow:static?batch=8", model=trained_model)
        take(strategy, 5, np.random.default_rng(0))
        assert strategy.context.remaining is None  # standalone again


class TestPlainIteratorStrategies:
    """Protocol tolerance: iter_guesses may return any iterator, not only
    a generator (generators have close(); plain iterators don't)."""

    class ListStrategy(GuessingStrategy):
        name = "List"

        def __init__(self, batches):
            super().__init__(spec="list")
            self._batches = batches

        def iter_guesses(self, rng):
            return iter([GuessBatch(list(b)) for b in self._batches])

    def test_engine_accepts_plain_iterator(self):
        strategy = self.ListStrategy([["a", "b"], ["c", "d"]])
        report = AttackEngine({"c"}, [4]).run(strategy, np.random.default_rng(0))
        assert report.final().matched == 1

    def test_take_accepts_plain_iterator(self):
        strategy = self.ListStrategy([["a", "b"], ["c", "d"]])
        assert take(strategy, 3, np.random.default_rng(0)) == ["a", "b", "c"]


class TestContext:
    def test_next_count_unbounded(self):
        assert AttackContext().next_count(64) == 64

    def test_next_count_limited(self):
        context = AttackContext(limit=100)
        assert context.next_count(64) == 64
        context.note(["x"] * 90)
        assert context.next_count(64) == 10
        assert "x" in context.seen

    def test_exclusive_modes(self):
        from repro.core.guesser import GuessAccounting

        with pytest.raises(ValueError):
            AttackContext(accounting=GuessAccounting({"a"}, [10]), limit=5)

    def test_guess_batch_len_and_iter(self):
        batch = GuessBatch(["a", "b"])
        assert len(batch) == 2 and list(batch) == ["a", "b"]


class TestEncodedBatches:
    """Smoother-free passflow strategies stream interned ids, not strings."""

    def test_static_yields_encoded_batches(self, trained_model):
        strategy = build("passflow:static?batch=32", model=trained_model)
        batch = next(strategy.iter_guesses(np.random.default_rng(0)))
        assert batch.passwords is None
        assert batch.index_matrix is not None and batch.codec is trained_model.encoder
        assert len(batch) == 32
        assert batch.materialize() == trained_model.encoder.strings_from_indices(
            batch.index_matrix
        )

    def test_smoothed_strategies_yield_strings(self, trained_model):
        strategy = build("passflow:static?gs=true&batch=32", model=trained_model)
        batch = next(strategy.iter_guesses(np.random.default_rng(0)))
        assert batch.passwords is not None

    def test_encoded_report_identical_to_string_path(self, trained_model, trained_dataset):
        class Materialized(GuessingStrategy):
            """Same guess stream, forced through the string path."""

            name = "materialized"

            def __init__(self, inner):
                super().__init__(spec="materialized")
                self.inner = inner

            def bind(self, context):
                super().bind(context)
                self.inner.bind(context)

            def iter_guesses(self, rng):
                for batch in self.inner.iter_guesses(rng):
                    yield GuessBatch(
                        batch.materialize(),
                        latents=batch.latents,
                        features=batch.features,
                    )

        test_set = trained_dataset.test_set
        encoded = AttackEngine(test_set, BUDGETS).run(
            build("passflow:static?batch=128", model=trained_model),
            np.random.default_rng(3),
        )
        stringy = AttackEngine(test_set, BUDGETS).run(
            Materialized(build("passflow:static?batch=128", model=trained_model)),
            np.random.default_rng(3),
        )
        assert rows_of(encoded) == rows_of(stringy)
        assert encoded.matched_samples == stringy.matched_samples
        assert encoded.non_matched_samples == stringy.non_matched_samples

    def test_batch_requires_strings_or_indices(self):
        with pytest.raises(ValueError):
            GuessBatch(None)

    def test_mixed_encoded_then_string_batches(self, trained_model):
        """A string fallback round after encoded batches must still count."""
        encoder = trained_model.encoder

        class Mixed(GuessingStrategy):
            name = "mixed"

            def __init__(self):
                super().__init__(spec="mixed")

            def iter_guesses(self, rng):
                rows = np.stack([encoder.to_indices("aa"), encoder.to_indices("bb")])
                yield GuessBatch(None, index_matrix=rows, codec=encoder)
                yield GuessBatch(["cc", "aa"])  # string round, one repeat

        report = AttackEngine({"cc"}, [4]).run(Mixed(), np.random.default_rng(0))
        assert report.final().matched == 1
        assert report.final().unique == 3  # aa, bb, cc


class TestProgressReporting:
    def test_stream_reports_rate_and_matches(self, trained_model, trained_dataset):
        from repro.utils.progress import ProgressReporter

        messages = []
        reporter = ProgressReporter(
            total=BUDGETS[-1], interval=0.0, sink=messages.append, label="attack"
        )
        AttackEngine(trained_dataset.test_set, BUDGETS).run(
            build("passflow:static?batch=128", model=trained_model),
            np.random.default_rng(0),
            progress=reporter,
        )
        assert messages, "reporter should have emitted at least one update"
        assert any("matched" in message for message in messages)
        assert any("/s)" in message for message in messages)
        # the final close reports the full guess count
        assert f"{BUDGETS[-1]}" in messages[-1]

    def test_parallel_engine_reports_shard_merges(self, corpus, trained_dataset):
        from repro.runtime import LocalExecutor, ParallelAttackEngine, StrategySource
        from repro.utils.progress import ProgressReporter

        messages = []
        reporter = ProgressReporter(interval=0.0, sink=messages.append, label="attack")
        ParallelAttackEngine(
            trained_dataset.test_set, [200], workers=2, executor=LocalExecutor()
        ).run(
            StrategySource("markov:3?batch=64", corpus=corpus[:500]),
            seed=5,
            progress=reporter,
        )
        assert any("shard" in message for message in messages)
        assert any("matched" in message for message in messages)


class TestConditionalStreaming:
    def test_conditional_guesses_satisfy_template(self, trained_model):
        strategy = build(
            "passflow:conditional?population=32&template=love**", model=trained_model
        )
        guesses = take(strategy, 40, np.random.default_rng(6))
        assert len(guesses) == 40
        assert all(g.startswith("love") and len(g) == 6 for g in guesses)

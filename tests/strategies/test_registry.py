"""Spec parsing and the strategy registry (build/describe round-trips)."""

import numpy as np
import pytest

from repro.strategies import (
    SpecError,
    StrategySpec,
    available_strategies,
    build,
    format_spec,
    parse_spec,
)
from repro.strategies.baselines import SampledModelStrategy
from repro.strategies.passflow import (
    ConditionalStrategy,
    DynamicStrategy,
    StaticStrategy,
)


class TestParseSpec:
    def test_bare_family(self):
        spec = parse_spec("pcfg")
        assert spec.family == "pcfg"
        assert spec.variant is None
        assert spec.params == ()

    def test_variant(self):
        spec = parse_spec("markov:3")
        assert (spec.family, spec.variant) == ("markov", "3")

    def test_params_typed(self):
        spec = parse_spec("passflow:dynamic+gs?alpha=1&sigma=0.12&gs=true&phi=step")
        params = spec.param_dict
        assert params["alpha"] == 1 and isinstance(params["alpha"], int)
        assert params["sigma"] == 0.12 and isinstance(params["sigma"], float)
        assert params["gs"] == "true"  # booleans coerce at build time
        assert params["phi"] == "step"

    def test_structural_chars_escape_in_values(self):
        # '&' and '=' are in the default alphabet, so templates may contain
        # them; format/parse must round-trip via percent-escapes
        spec = format_spec("passflow", "conditional", {"template": "a&b=c%d*"})
        assert parse_spec(spec).param_dict["template"] == "a&b=c%d*"
        assert parse_spec(spec).canonical() == spec

    @pytest.mark.parametrize("text", ["007", "1_000", "1e4", "+1", "0.10"])
    def test_lossy_numeric_text_stays_string(self, text):
        # values whose numeric coercion would not round-trip must survive
        # verbatim (e.g. conditional templates made of digits)
        params = parse_spec(f"passflow:conditional?template={text}").param_dict
        assert params["template"] == text
        assert isinstance(params["template"], str)

    def test_canonical_sorts_params(self):
        spec = parse_spec("passflow:dynamic?sigma=0.12&alpha=1")
        assert spec.canonical() == "passflow:dynamic?alpha=1&sigma=0.12"

    def test_parse_equality_is_order_insensitive(self):
        assert parse_spec("markov:3?batch=64&smoothing=0.5") == parse_spec(
            "markov:3?smoothing=0.5&batch=64"
        )

    @pytest.mark.parametrize("bad", ["", "   ", "?alpha=1", "passflow?alpha", "markov?a=1&a=2"])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(SpecError):
            parse_spec(bad)

    def test_format_spec_round_trips(self):
        spec = format_spec("passflow", "dynamic", {"alpha": 1, "sigma": 0.12})
        assert spec == "passflow:dynamic?alpha=1&sigma=0.12"
        assert parse_spec(spec).canonical() == spec


class TestRegistry:
    def test_all_families_registered(self):
        families = available_strategies()
        assert {"passflow", "passgan", "cwae", "markov", "pcfg", "rules"} <= set(families)
        assert all(families.values())  # every family has a summary

    def test_unknown_family_raises(self):
        with pytest.raises(SpecError, match="unknown strategy family"):
            build("quantum", corpus=["a"])

    def test_unknown_param_raises(self, trained_model):
        with pytest.raises(SpecError, match="unknown parameter"):
            build("passflow:static?temprature=0.7", model=trained_model)

    def test_unknown_variant_raises(self, trained_model):
        with pytest.raises(SpecError, match="variant"):
            build("passflow:quantum", model=trained_model)

    def test_passflow_without_model_raises(self):
        with pytest.raises(SpecError, match="model"):
            build("passflow:static")

    def test_baseline_without_model_or_corpus_raises(self):
        with pytest.raises(SpecError, match="corpus"):
            build("markov:3")

    def test_bad_phi_raises(self, trained_model):
        with pytest.raises(SpecError, match="phi"):
            build("passflow:dynamic?phi=quadratic", model=trained_model)


ALL_NINE = (
    # (spec, expected report-method name)
    ("passflow:static?temperature=0.75", "PassFlow-Static"),
    ("passflow:dynamic?alpha=1&sigma=0.12", "PassFlow-Dynamic"),
    ("passflow:dynamic+gs?alpha=1&sigma=0.12", "PassFlow-Dynamic+GS"),
    ("passflow:conditional?template=love**", "PassFlow-Conditional"),
    ("passgan?hidden=8&iterations=2", "PassGAN"),
    ("cwae?epochs=1&hidden=8&latent=4", "CWAE"),
    ("markov:3", "Markov-3"),
    ("pcfg", "PCFG"),
    ("rules?wordlist=50", "Rules"),
)


class TestBuildAllStrategies:
    @pytest.fixture(scope="class")
    def strategies(self, trained_model, corpus):
        # neural baselines get a tiny corpus + tiny configs so the
        # train-on-demand path stays fast
        return {
            spec: build(
                spec,
                model=trained_model,
                corpus=corpus[:300],
                alphabet=trained_model.alphabet,
            )
            for spec, _ in ALL_NINE
        }

    @pytest.mark.parametrize("spec,name", ALL_NINE)
    def test_spec_resolves_with_expected_name(self, strategies, spec, name):
        assert strategies[spec].name == name

    @pytest.mark.parametrize("spec,name", ALL_NINE)
    def test_describe_round_trips(self, strategies, spec, name):
        described = strategies[spec].describe()
        assert described == spec
        assert parse_spec(described) == parse_spec(spec)

    @pytest.mark.parametrize("spec,name", ALL_NINE)
    def test_all_strategies_stream_guesses(self, strategies, spec, name, rng):
        batch = next(strategies[spec].iter_guesses(rng))
        assert len(batch) >= 1
        assert all(isinstance(p, str) for p in batch)

    def test_rebuild_from_describe(self, strategies, trained_model, corpus):
        for spec, _ in ALL_NINE:
            rebuilt = build(
                strategies[spec].describe(),
                model=trained_model,
                corpus=corpus[:300],
                alphabet=trained_model.alphabet,
            )
            assert rebuilt.describe() == strategies[spec].describe()


class TestResourceDispatch:
    def test_prefitted_baseline_reused(self, corpus, rng):
        from repro.baselines import MarkovModel

        fitted = MarkovModel(order=2).fit(corpus[:200])
        strategy = build("markov:2", model=fitted)
        assert strategy.model is fitted
        assert strategy.describe() == "markov:2"

    def test_prefitted_baseline_drops_ignored_training_params(self, corpus):
        from repro.baselines import MarkovModel

        fitted = MarkovModel(order=3).fit(corpus[:200])
        # smoothing=0.9 was never applied (the model is pre-fitted), so the
        # canonical spec must not attest to it; batch is a runtime param
        strategy = build("markov:3?batch=64&smoothing=0.9", model=fitted)
        assert strategy.describe() == "markov:3?batch=64"

    def test_order_mismatch_raises(self, corpus):
        from repro.baselines import MarkovModel

        fitted = MarkovModel(order=2).fit(corpus[:200])
        with pytest.raises(SpecError, match="order"):
            build("markov:4", model=fitted)

    def test_non_integer_markov_variant_is_spec_error(self, corpus):
        with pytest.raises(SpecError, match="integer order"):
            build("markov:x", corpus=corpus[:200])

    def test_wrong_model_type_falls_back_to_corpus(self, trained_model, corpus):
        # a PassFlow model is not a MarkovModel; the factory must fit anew
        strategy = build("markov:3", model=trained_model, corpus=corpus[:200])
        assert isinstance(strategy, SampledModelStrategy)
        assert strategy.model is not trained_model

    def test_direct_construction_has_canonical_spec(self, trained_model):
        static = StaticStrategy(trained_model, temperature=0.5)
        assert static.describe() == "passflow:static?temperature=0.5"
        dynamic = DynamicStrategy(trained_model)
        assert parse_spec(dynamic.describe()).family == "passflow"
        conditional = ConditionalStrategy(trained_model, "love**")
        assert conditional.describe() == "passflow:conditional?template=love**"

    def test_numeric_template_round_trips_through_build(self, trained_model):
        strategy = build("passflow:conditional?template=123456*", model=trained_model)
        assert strategy.template == "123456*"
        assert strategy.describe() == "passflow:conditional?template=123456*"

    def test_static_describe_preserves_prior_and_gs_scale(self, trained_model):
        from repro.core.smoothing import GaussianSmoother
        from repro.flows.priors import StandardNormalPrior

        strategy = StaticStrategy(
            trained_model,
            prior=StandardNormalPrior(trained_model.config.max_length, sigma=0.5),
            smoother=GaussianSmoother(trained_model.encoder, sigma_scale=3.0),
        )
        spec = strategy.describe()
        rebuilt = build(spec, model=trained_model)
        assert rebuilt.prior.sigma == 0.5
        assert rebuilt.smoother is not None
        assert rebuilt.smoother.sigma == pytest.approx(strategy.smoother.sigma)

    def test_dynamic_describe_preserves_phi(self, trained_model):
        from repro.core.dynamic import DynamicSamplingConfig
        from repro.core.penalization import NoPenalization

        config = DynamicSamplingConfig(phi=NoPenalization())
        strategy = DynamicStrategy(trained_model, config)
        rebuilt = build(strategy.describe(), model=trained_model)
        assert isinstance(rebuilt.config.phi, NoPenalization)
        assert rebuilt.describe() == strategy.describe()

    def test_conditional_requires_template(self, trained_model):
        with pytest.raises(SpecError, match="template"):
            build("passflow:conditional", model=trained_model)

    def test_conditional_validates_template(self, trained_model):
        with pytest.raises(ValueError):
            ConditionalStrategy(trained_model, "x" * 99)

"""ProcessPoolExecutor: fork-server lifecycle, parity, and fault absorption.

The pool's contract has three legs, each exercised here:

* **Parity** -- for a fixed ``(seed, workers, schedule)`` its merged
  reports match :class:`~repro.runtime.LocalExecutor` (and, elastically,
  :class:`~repro.runtime.WorkStealingExecutor`) bit for bit, because
  chunk contents are fixed by named RNG streams and shard state is
  process-sticky.
* **Fault absorption** -- the conftest fault families (``drying``,
  ``crashing`` in both flavors, ``straggler``) drive the same
  budget-re-absorption semantics the in-process hosts implement: a dry
  or crashed shard releases its unconsumed budget to the live fleet, a
  worker corpse retires its shards without hanging the run, and the
  report's ``shard_errors`` names exactly the casualties.
* **Cleanup** -- no child processes survive a run, clean or failing.

``multiprocessing.active_children()`` is the orphan oracle: it reaps and
lists every live child of this process, so an empty list after a run
means the fork server really tore its fleet down.
"""

import multiprocessing

import pytest

from repro.runtime import (
    LocalExecutor,
    ParallelAttackEngine,
    ProcessPoolExecutor,
    StrategySource,
    WorkStealingExecutor,
    resolve_executor,
)
from repro.strategies.registry import build

TEST_SET = {f"g{n:07d}" for n in range(0, 8000, 7)}


def _pool():
    try:
        return ProcessPoolExecutor()
    except RuntimeError:
        pytest.skip("no fork start method on this platform")


def _no_orphans():
    for child in multiprocessing.active_children():
        child.join(timeout=5.0)
    assert multiprocessing.active_children() == []


class ShardedSource:
    """Index-aware heterogeneous fleet: shard ``i`` builds ``specs[i]``.

    Unlike a pop-in-build-order factory this stays correct when shards
    are built in different processes (every pool worker inherits the
    source and builds only its own shards), exercising the
    ``for_shard`` build seam.
    """

    def __init__(self, specs):
        self.specs = list(specs)

    def for_shard(self, index):
        return build(self.specs[index])


def _engine(budgets, workers, schedule, executor):
    return ParallelAttackEngine(
        set(TEST_SET), budgets, workers=workers, schedule=schedule, executor=executor
    )


def _rows(report):
    return [(r.guesses, r.unique, r.matched, r.match_percent) for r in report.rows]


class TestReportParity:
    @pytest.mark.parametrize("schedule", ["static", "elastic"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pool_matches_local_bit_for_bit(self, schedule, workers):
        source = StrategySource("sequence?batch=16")
        base = _engine([1200, 3600], workers, schedule, LocalExecutor()).run(
            source, seed=11
        )
        pool = _engine([1200, 3600], workers, schedule, _pool()).run(source, seed=11)
        assert _rows(base) == _rows(pool)
        assert base.matched_samples == pool.matched_samples
        assert base.non_matched_samples == pool.non_matched_samples
        _no_orphans()

    def test_pool_matches_worksteal_elastically(self):
        source = StrategySource("sequence?batch=16")
        threads = WorkStealingExecutor(4)
        try:
            base = _engine([1200, 3600], 4, "elastic", threads).run(source, seed=11)
        finally:
            threads.shutdown()
        pool = _engine([1200, 3600], 4, "elastic", _pool()).run(source, seed=11)
        assert _rows(base) == _rows(pool)
        _no_orphans()

    def test_fewer_processes_than_shards_same_report(self):
        """Affinity folding (4 shards on 2 workers) changes nothing."""
        source = StrategySource("sequence?batch=16")
        base = _engine([1200], 4, "elastic", LocalExecutor()).run(source, seed=11)
        pool = _engine([1200], 4, "elastic", ProcessPoolExecutor(processes=2)).run(
            source, seed=11
        )
        assert _rows(base) == _rows(pool)
        _no_orphans()


class TestFaultAbsorption:
    def test_dry_shard_budget_reabsorbed_matches_local(self):
        source = StrategySource("drying?limit=100")
        base = _engine([400, 900], 4, "elastic", LocalExecutor()).run(source, seed=3)
        pool = _engine([400, 900], 4, "elastic", _pool()).run(source, seed=3)
        assert _rows(base) == _rows(pool)
        _no_orphans()

    def test_mid_chain_crash_budget_reabsorbed(self):
        """A raising shard retires; survivors still reach the full budget,
        and the report names the casualty -- identically to LocalExecutor."""
        source = ShardedSource(
            ["crashing?at=50&batch=16", "sequence?batch=16", "sequence?batch=16"]
        )
        base = _engine([600], 3, "elastic", LocalExecutor()).run(source, seed=7)
        pool = _engine([600], 3, "elastic", _pool()).run(source, seed=7)
        assert _rows(base) == _rows(pool)
        assert base.rows[-1].guesses == 600
        assert len(pool.shard_errors) == 1
        assert pool.shard_errors[0].startswith("shard 0:")
        assert "hit its mark" in pool.shard_errors[0]
        _no_orphans()

    def test_one_corpse_one_survivor(self):
        """mode=exit kills a worker process outright; its shard's budget is
        re-absorbed by the survivors and the report says the worker died."""
        source = ShardedSource(
            [
                "crashing?at=50&mode=exit&batch=16",
                "sequence?batch=16",
                "sequence?batch=16",
            ]
        )
        report = _engine([600], 3, "elastic", _pool()).run(source, seed=7)
        assert report.rows[-1].guesses == 600
        assert len(report.shard_errors) == 1
        assert "died" in report.shard_errors[0]
        _no_orphans()

    def test_all_shards_crashing_raises(self):
        with pytest.raises(RuntimeError, match="hit its mark"):
            _engine([600], 2, "elastic", _pool()).run(
                StrategySource("crashing?at=50&batch=16"), seed=7
            )
        _no_orphans()

    def test_static_crash_reraises_original_type(self):
        with pytest.raises(RuntimeError, match="hit its mark"):
            _engine([400], 2, "static", _pool()).run(
                StrategySource("crashing?at=30&batch=16"), seed=3
            )
        _no_orphans()

    def test_static_dead_worker_raises_instead_of_hanging(self):
        with pytest.raises(RuntimeError, match="died without reporting"):
            _engine([400], 2, "static", _pool()).run(
                StrategySource("crashing?at=30&mode=exit&batch=16"), seed=3
            )
        _no_orphans()

    @pytest.mark.slow
    def test_straggler_fleet_completes(self):
        source = ShardedSource(
            ["straggler?delay=0.002&batch=16"] + ["sequence?batch=16"] * 2
        )
        report = _engine([360], 3, "elastic", _pool()).run(source, seed=7)
        assert report.rows[-1].guesses == 360
        assert report.shard_errors == []
        _no_orphans()


class TestResolveExecutor:
    def test_known_names_resolve(self):
        assert isinstance(resolve_executor("local", 2), LocalExecutor)
        assert isinstance(
            resolve_executor("worksteal", 2, "elastic"), WorkStealingExecutor
        )
        assert isinstance(resolve_executor("processpool", 2), ProcessPoolExecutor)

    def test_auto_defers_to_schedule_default(self):
        assert isinstance(resolve_executor("auto", 1), LocalExecutor)
        assert isinstance(
            resolve_executor(None, 4, "elastic"), WorkStealingExecutor
        )

    def test_worksteal_static_is_actionable(self):
        with pytest.raises(ValueError, match="only runs elastic"):
            resolve_executor("worksteal", 2, "static")

    def test_process_elastic_is_actionable(self):
        with pytest.raises(ValueError, match="cannot run elastic"):
            resolve_executor("process", 2, "elastic")

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="processpool"):
            resolve_executor("threads", 2)

    def test_engine_accepts_executor_names(self):
        engine = _engine([100], 2, "elastic", "processpool")
        assert isinstance(engine.executor, ProcessPoolExecutor)

    def test_fork_unavailable_is_actionable(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with pytest.raises(ValueError, match="use --executor local"):
            resolve_executor("process", 2, "static")
        with pytest.raises(ValueError, match="local or worksteal"):
            resolve_executor("processpool", 2, "elastic")

"""Elastic scheduling: determinism, replan invariants, fault absorption.

The load-bearing contracts, in test form:

* **elastic ≡ static for well-behaved strategies** -- a strategy whose
  guess stream depends only on instance position (the ``sequence``
  fixture) produces bit-identical reports under both schedules, for any
  seed/workers/budgets (hypothesis-checked);
* **replan marks always sum exactly to each budget** -- dead shards
  frozen, live shards absorbing, no guess ever lost or double-planned;
* **steal-order permutations merge to identical BudgetRows** -- chunk
  contents are fixed by the plan, so any interleaving of chunk execution
  (including the work-stealing thread pool's) merges to the same report;
* **dry/straggler/crashed shards release their budget** -- the fleet
  still reaches every budget mark, with per-shard accounting totals
  showing who absorbed what.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    LocalExecutor,
    ParallelAttackEngine,
    ProcessExecutor,
    ShardPlanner,
    ShardProgress,
    ShardTask,
    StrategySource,
    WorkStealingExecutor,
    chunk_quotas,
    run_elastic,
)

TEST_SET = {f"g{n:07d}" for n in range(0, 1200, 7)}
BUDGETS = [60, 240, 900]


def rows_of(report):
    return [(r.guesses, r.unique, r.matched, r.match_percent) for r in report.rows]


def elastic_engine(budgets, workers, executor=None, chunk_size=None):
    return ParallelAttackEngine(
        set(TEST_SET),
        budgets,
        workers=workers,
        executor=executor if executor is not None else LocalExecutor(),
        schedule="elastic",
        chunk_size=chunk_size,
    )


budgets_st = (
    st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=3, unique=True)
    .map(sorted)
)


class TestElasticEqualsStatic:
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        workers=st.integers(min_value=1, max_value=4),
        budgets=budgets_st,
    )
    @settings(max_examples=30, deadline=None)
    def test_wellbehaved_reports_identical(self, seed, workers, budgets):
        """Position-deterministic streams: schedules agree bit for bit."""
        source = StrategySource("sequence?batch=16")
        static = ParallelAttackEngine(
            set(TEST_SET), budgets, workers=workers, executor=LocalExecutor()
        ).run(source, seed=seed)
        elastic = elastic_engine(budgets, workers).run(source, seed=seed)
        assert rows_of(elastic) == rows_of(static)
        assert elastic.matched_samples == static.matched_samples
        assert elastic.non_matched_samples == static.non_matched_samples

    @given(chunk_size=st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_chunk_size_does_not_change_wellbehaved_reports(self, chunk_size):
        """Chunk boundaries only reseed streams; enumerators don't care."""
        source = StrategySource("sequence?batch=16")
        baseline = elastic_engine(BUDGETS, 3).run(source, seed=5)
        chunked = elastic_engine(BUDGETS, 3, chunk_size=chunk_size).run(source, seed=5)
        assert rows_of(chunked) == rows_of(baseline)


class TestReplanInvariants:
    @given(
        consumed=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=6),
        live_seed=st.integers(min_value=0, max_value=10**6),
        extra=st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=4, unique=True),
    )
    @settings(max_examples=60, deadline=None)
    def test_replan_marks_sum_exactly_to_each_budget(self, consumed, live_seed, extra):
        workers = len(consumed)
        rng = np.random.default_rng(live_seed)
        live = rng.random(workers) < 0.7
        if not live.any():
            live[int(rng.integers(workers))] = True
        base = sum(consumed)
        budgets = sorted(base + e for e in extra)
        planner = ShardPlanner(budgets, workers)
        plans = planner.replan(
            [
                ShardProgress(i, consumed[i], bool(live[i]))
                for i in range(workers)
            ],
            budgets,
        )
        for j, budget in enumerate(budgets):
            assert sum(plan.marks[j] for plan in plans) == budget
        for i, plan in enumerate(plans):
            assert plan.marks == sorted(plan.marks)
            if not live[i]:
                assert plan.marks == [consumed[i]] * len(budgets)
            else:
                assert all(mark >= consumed[i] for mark in plan.marks)

    def test_replan_of_untouched_fleet_matches_plan(self):
        planner = ShardPlanner([7, 100, 1234], 5)
        fresh = [ShardProgress(i, 0, True) for i in range(5)]
        assert planner.replan(fresh) == planner.plan()

    def test_replan_rejects_all_dead(self):
        planner = ShardPlanner([100], 2)
        with pytest.raises(ValueError, match="no live shards"):
            planner.replan([ShardProgress(0, 10, False), ShardProgress(1, 5, False)])

    def test_replan_rejects_overconsumed_budget(self):
        planner = ShardPlanner([100], 2)
        with pytest.raises(ValueError, match="no longer covers"):
            planner.replan(
                [ShardProgress(0, 80, True), ShardProgress(1, 40, True)], [100]
            )

    def test_replan_rejects_incomplete_roster(self):
        planner = ShardPlanner([100], 3)
        with pytest.raises(ValueError, match="exactly once"):
            planner.replan([ShardProgress(0, 0, True), ShardProgress(2, 0, True)])

    @given(
        quota=st.integers(min_value=0, max_value=5000),
        chunk=st.one_of(st.none(), st.integers(min_value=1, max_value=500)),
    )
    @settings(max_examples=60, deadline=None)
    def test_chunk_quotas_cover_exactly(self, quota, chunk):
        sizes = chunk_quotas(quota, chunk)
        assert sum(sizes) == quota
        assert all(size >= 1 for size in sizes)


class _PermutedExecutor(LocalExecutor):
    """Runs chunk chains in a seeded random interleaving (order within a
    chain preserved) -- a deterministic stand-in for arbitrary steal
    orders, including ones the thread pool would never hit."""

    def __init__(self, seed):
        self._rng = np.random.default_rng(seed)

    def run_chains(self, chains):
        errors = [None] * len(chains)
        active = [(index, iter(chain)) for index, chain in enumerate(chains)]
        while active:
            pick = int(self._rng.integers(len(active)))
            index, chain_iter = active[pick]
            thunk = next(chain_iter, None)
            if thunk is None:
                active.pop(pick)
                continue
            try:
                thunk()
            except Exception as exc:
                errors[index] = exc
                active.pop(pick)
        return errors


class TestStealOrderIndependence:
    @given(order_seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_permuted_chunk_order_merges_identically(self, order_seed, corpus):
        """Any chunk interleaving yields the reference report."""
        source = StrategySource("markov:3?batch=64", corpus=corpus[:1500])
        baseline = elastic_engine(BUDGETS, 3).run(source, seed=9)
        permuted = elastic_engine(
            BUDGETS, 3, executor=_PermutedExecutor(order_seed)
        ).run(source, seed=9)
        assert rows_of(permuted) == rows_of(baseline)
        assert permuted.matched_samples == baseline.matched_samples

    def test_work_stealing_matches_local_reference(self, corpus):
        """The thread pool is just another steal order."""
        source = StrategySource("markov:3?batch=64", corpus=corpus[:1500])
        local = elastic_engine(BUDGETS, 3).run(source, seed=7)
        pool = WorkStealingExecutor(3)
        try:
            stolen = elastic_engine(BUDGETS, 3, executor=pool).run(source, seed=7)
            again = elastic_engine(BUDGETS, 3, executor=pool).run(source, seed=7)
        finally:
            pool.shutdown()
        assert rows_of(stolen) == rows_of(local)
        assert rows_of(again) == rows_of(local)
        assert stolen.matched_samples == local.matched_samples
        assert stolen.non_matched_samples == local.non_matched_samples

    def test_process_executor_rejected_for_elastic(self):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        with pytest.raises(ValueError, match="cannot run elastic"):
            ParallelAttackEngine(
                set(TEST_SET),
                BUDGETS,
                workers=2,
                executor=ProcessExecutor(),
                schedule="elastic",
            )

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            ParallelAttackEngine(set(TEST_SET), BUDGETS, workers=2, schedule="eager")


def _heterogeneous_source(specs):
    """A factory handing out one spec per shard, in shard build order."""
    from repro.strategies.registry import build

    remaining = list(specs)

    def factory():
        return build(remaining.pop(0))

    return factory


class TestBudgetReabsorption:
    def test_dry_shard_budget_absorbed_by_live_fleet(self):
        """One shard dries at 40; the other two absorb its 260 guesses."""
        task = ShardTask(
            source=_heterogeneous_source(
                ["drying?limit=40", "sequence?batch=16", "sequence?batch=16"]
            ),
            test_set=set(TEST_SET),
            seed=7,
        )
        planner = ShardPlanner([300], 3)
        outcomes, completed = run_elastic(task, planner, LocalExecutor())
        assert completed == 1
        totals = {o.index: o.total for o in outcomes}
        assert totals[0] == 40  # dry shard froze at its limit
        assert sum(totals.values()) == 300  # nothing lost, nothing doubled
        assert totals[1] > 100 and totals[2] > 100  # both absorbed extra

    def test_all_dry_closes_out_with_accounted_guesses(self):
        """Fleet-wide dry-out: the report says what actually ran."""
        report = elastic_engine([60, 2000], 3).run(
            StrategySource("drying?limit=100"), seed=3
        )
        assert [row.guesses for row in report.rows] == [60, 300]

    def test_dry_exactly_on_final_mark_needs_no_close_out(self):
        report = elastic_engine([300], 3).run(
            StrategySource("drying?limit=100"), seed=3
        )
        assert [row.guesses for row in report.rows] == [300]

    def test_crashed_shard_budget_requeued(self):
        """A raising strategy retires its shard; the budget survives, and
        the report names the crashed shard."""
        report = elastic_engine([600], 3).run(
            _heterogeneous_source(
                ["crashing?at=50&batch=16", "sequence?batch=16", "sequence?batch=16"]
            ),
            seed=7,
        )
        assert report.rows[-1].guesses == 600
        assert len(report.shard_errors) == 1
        assert report.shard_errors[0].startswith("shard 0:")
        assert "hit its mark" in report.shard_errors[0]
        assert "shard_errors" in report.as_dict()

    def test_clean_runs_report_no_shard_errors(self):
        report = elastic_engine([300], 3).run(
            StrategySource("sequence?batch=16"), seed=7
        )
        assert report.shard_errors == []
        assert "shard_errors" not in report.as_dict()

    def test_all_shards_crashing_raises(self):
        with pytest.raises(RuntimeError, match="hit its mark"):
            elastic_engine([600], 2).run(
                StrategySource("crashing?at=50&batch=16"), seed=7
            )

    def test_elastic_determinism_with_faults(self):
        """Dry + replan decisions reproduce bit for bit across executors."""
        specs = ["drying?limit=40", "sequence?batch=16", "drying?limit=90"]
        first = elastic_engine([100, 400], 3).run(
            _heterogeneous_source(specs), seed=11
        )
        pool = WorkStealingExecutor(3)
        try:
            second = elastic_engine([100, 400], 3, executor=pool).run(
                _heterogeneous_source(specs), seed=11
            )
        finally:
            pool.shutdown()
        assert rows_of(first) == rows_of(second)
        assert first.matched_samples == second.matched_samples


class TestStragglerAbsorption:
    def test_straggler_fleet_completes_quickly(self):
        """A mildly slow shard neither hangs nor skews the accounting."""
        specs = ["straggler?delay=0.002&batch=16"] + ["sequence?batch=16"] * 2
        task = ShardTask(
            source=_heterogeneous_source(specs), test_set=set(TEST_SET), seed=7
        )
        planner = ShardPlanner([360], 3)
        pool = WorkStealingExecutor(3)
        try:
            outcomes, completed = run_elastic(task, planner, pool)
        finally:
            pool.shutdown()
        assert completed == 1
        assert sum(o.total for o in outcomes) == 360

    @pytest.mark.slow
    def test_straggler_stress_budget_reabsorbed(self):
        """One shard 10x slower *and* finite: the fleet re-absorbs its
        unconsumed budget, asserted via per-shard accounting totals."""
        specs = ["straggler?delay=0.02&limit=200&batch=16"] + [
            "sequence?batch=16"
        ] * 3
        task = ShardTask(
            source=_heterogeneous_source(specs), test_set=set(TEST_SET), seed=7
        )
        planner = ShardPlanner([4000], 4)
        pool = WorkStealingExecutor(4)
        try:
            outcomes, completed = run_elastic(task, planner, pool)
        finally:
            pool.shutdown()
        assert completed == 1
        totals = {o.index: o.total for o in outcomes}
        assert totals[0] == 200  # the straggler dried at its limit
        assert sum(totals.values()) == 4000  # full budget accounted
        # the 800 guesses the straggler released were re-absorbed by the
        # live fleet on top of their initial 1000-guess marks
        assert all(totals[i] > 1000 for i in (1, 2, 3))


class TestScheduleMatrixSmoke:
    def test_env_selected_schedule_is_deterministic(self, corpus):
        """CI matrix entry: workers/schedule from the environment."""
        workers = int(os.environ.get("REPRO_ATTACK_WORKERS", "2"))
        schedule = os.environ.get("REPRO_ATTACK_SCHEDULE", "elastic")
        source = StrategySource("markov:3?batch=128", corpus=corpus[:1500])
        test_set = set(corpus[1500:])

        def run():
            return ParallelAttackEngine(
                test_set, [200, 800], workers=workers, schedule=schedule
            ).run(source, seed=7)

        first, second = run(), run()
        assert [row.guesses for row in first.rows] == [200, 800]
        assert rows_of(first) == rows_of(second)
        assert first.matched_samples == second.matched_samples

"""Fault-injection strategy fixtures for the runtime test suite.

Three registry-buildable strategy families simulate the failure modes the
elastic scheduler exists to absorb.  They register themselves at import
time (this conftest loads once per session) so spec strings like
``"drying?limit=40"`` cross the :class:`~repro.runtime.ProcessExecutor`
fork boundary exactly like real strategies -- forked workers rebuild them
through the inherited registry.

* ``sequence`` -- the well-behaved baseline: a deterministic enumerator
  whose next guess depends only on instance position, never on the RNG.
  Because elastic chunking preserves instance state across chunks, its
  elastic and static reports are bit-identical (the property the
  hypothesis suite leans on).
* ``straggler`` -- ``sequence`` plus a configurable per-batch delay
  (``delay`` seconds), optionally finite (``limit``): the slow shard of a
  fleet.
* ``drying`` -- ``sequence`` that exhausts after ``limit`` guesses per
  instance: the finite-stream shard whose budget must be re-absorbed.
* ``crashing`` -- ``sequence`` that fails once ``at`` guesses were
  produced: ``mode=raise`` raises RuntimeError (the recoverable elastic
  case), ``mode=exit`` kills the worker process outright with
  ``os._exit`` (the ProcessExecutor dead-worker case -- no exception
  payload ever reaches the parent).
"""

from __future__ import annotations

import os
import time
from typing import Iterator, Optional

import numpy as np

from repro.strategies.base import GuessBatch, GuessingStrategy
from repro.strategies.registry import ParamReader, register


class SequenceStrategy(GuessingStrategy):
    """Deterministic enumerator: guess ``n`` is ``f"{prefix}{n:07d}"``.

    Position lives on the instance, so a fresh ``iter_guesses`` generator
    (as every elastic chunk creates) resumes exactly where the previous
    one stopped -- the "well-behaved" contract under which elastic and
    static schedules must produce identical reports.
    """

    name = "Sequence"

    def __init__(
        self,
        batch: int = 32,
        prefix: str = "g",
        limit: Optional[int] = None,
        spec: str = "sequence",
    ) -> None:
        super().__init__(spec=spec)
        self._batch = int(batch)
        self._prefix = prefix
        self._limit = limit
        self._position = 0

    def _next_count(self) -> int:
        count = self.context.next_count(self._batch)
        if self._limit is not None:
            count = min(count, self._limit - self._position)
        return count

    def _emit(self, count: int) -> GuessBatch:
        start = self._position
        self._position += count
        return GuessBatch(
            [f"{self._prefix}{n:07d}" for n in range(start, start + count)]
        )

    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        while True:
            count = self._next_count()
            if count < 1:
                return
            yield self._emit(count)


class StragglerStrategy(SequenceStrategy):
    """A ``sequence`` that sleeps ``delay`` seconds before every batch."""

    name = "Straggler"

    def __init__(self, delay: float = 0.01, **kwargs) -> None:
        super().__init__(**kwargs)
        self._delay = float(delay)

    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        while True:
            count = self._next_count()
            if count < 1:
                return
            time.sleep(self._delay)
            yield self._emit(count)


class CrashingStrategy(SequenceStrategy):
    """A ``sequence`` that fails once ``at`` guesses have been produced.

    ``mode="raise"`` raises RuntimeError from inside the guess stream;
    ``mode="exit"`` terminates the whole worker process via ``os._exit``,
    simulating an OOM-killed / segfaulted shard that never reports back.
    """

    name = "Crashing"

    def __init__(self, at: int = 100, mode: str = "raise", **kwargs) -> None:
        super().__init__(**kwargs)
        if mode not in ("raise", "exit"):
            raise ValueError(f"mode must be 'raise' or 'exit', got {mode!r}")
        self._at = int(at)
        self._mode = mode

    def iter_guesses(self, rng: np.random.Generator) -> Iterator[GuessBatch]:
        for batch in super().iter_guesses(rng):
            if self._position > self._at:
                if self._mode == "exit":
                    os._exit(3)
                raise RuntimeError(
                    f"crashing strategy hit its mark at {self._position} guesses"
                )
            yield batch


def _common_params(reader: ParamReader) -> dict:
    return {
        "batch": reader.take("batch", 32, int),
        "prefix": reader.take("prefix", "g", str),
        "limit": reader.take("limit", None, int),
    }


@register("sequence", "test-only: deterministic position-based enumerator")
def _build_sequence(spec, resources) -> SequenceStrategy:
    """Build a ``sequence[?batch=&prefix=&limit=]`` spec."""
    reader = ParamReader(spec)
    params = _common_params(reader)
    reader.finish()
    return SequenceStrategy(spec=reader.canonical(), **params)


@register("straggler", "test-only: enumerator with a per-batch delay")
def _build_straggler(spec, resources) -> StragglerStrategy:
    """Build a ``straggler[?delay=&batch=&prefix=&limit=]`` spec."""
    reader = ParamReader(spec)
    delay = reader.take("delay", 0.01, float)
    params = _common_params(reader)
    reader.finish()
    return StragglerStrategy(delay=delay, spec=reader.canonical(), **params)


@register("drying", "test-only: enumerator that exhausts after `limit` guesses")
def _build_drying(spec, resources) -> SequenceStrategy:
    """Build a ``drying?limit=K[&batch=&prefix=]`` spec (limit required)."""
    reader = ParamReader(spec)
    params = _common_params(reader)
    reader.finish()
    if params["limit"] is None:
        raise ValueError("drying strategy requires a limit parameter")
    strategy = SequenceStrategy(spec=reader.canonical(), **params)
    strategy.name = "Drying"
    return strategy


@register("crashing", "test-only: enumerator that fails at a chosen guess count")
def _build_crashing(spec, resources) -> CrashingStrategy:
    """Build a ``crashing[?at=&mode=&batch=&prefix=&limit=]`` spec."""
    reader = ParamReader(spec)
    at = reader.take("at", 100, int)
    mode = reader.take("mode", "raise", str)
    params = _common_params(reader)
    reader.finish()
    return CrashingStrategy(at=at, mode=mode, spec=reader.canonical(), **params)

"""ShardPlanner: budget splits, marks, and local budget schedules."""

import pytest

from repro.runtime.planner import ShardPlan, ShardPlanner, split_budget


class TestSplitBudget:
    def test_even(self):
        assert [split_budget(9, 3, i) for i in range(3)] == [3, 3, 3]

    def test_remainder_goes_to_low_indices(self):
        assert [split_budget(10, 4, i) for i in range(4)] == [3, 3, 2, 2]

    def test_more_workers_than_budget(self):
        shares = [split_budget(2, 5, i) for i in range(5)]
        assert shares == [1, 1, 0, 0, 0]


class TestPlanner:
    def test_marks_sum_to_budgets(self):
        budgets = [7, 100, 1234]
        for workers in (1, 2, 3, 8, 50, 2000):
            plans = ShardPlanner(budgets, workers).plan()
            assert len(plans) == workers
            for j, budget in enumerate(budgets):
                assert sum(plan.marks[j] for plan in plans) == budget

    def test_marks_non_decreasing(self):
        for plan in ShardPlanner([5, 50, 500], 7).plan():
            assert plan.marks == sorted(plan.marks)

    def test_local_budgets_deduped_and_positive(self):
        plan = ShardPlan(index=3, marks=[0, 1, 1, 4])
        assert plan.local_budgets == [1, 4]

    def test_rng_labels_are_per_shard(self):
        plans = ShardPlanner([10], 3).plan()
        labels = {plan.rng_label() for plan in plans}
        assert labels == {"shard-0", "shard-1", "shard-2"}
        assert plans[1].rng_label("attack-x/") == "attack-x/shard-1"

    def test_rng_streams_differ(self):
        plans = ShardPlanner([10], 2).plan()
        a = plans[0].rng(seed=7).integers(0, 10**9)
        b = plans[1].rng(seed=7).integers(0, 10**9)
        assert a != b

    @pytest.mark.parametrize(
        "budgets,workers",
        [([], 1), ([10, 5], 2), ([5, 5], 2), ([0, 10], 2), ([10], 0)],
    )
    def test_validation(self, budgets, workers):
        with pytest.raises(ValueError):
            ShardPlanner(budgets, workers)

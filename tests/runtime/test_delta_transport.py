"""Key-space delta transport: decode-equivalence, merge laws, fallbacks.

The sharded runtime now ships checkpoint deltas as packed uint64 key
arrays (:class:`~repro.core.guesser.KeyedCheckpointDelta`) whenever a
shard accounts in interned-id mode.  Three contracts keep the Table
II/III reports exact:

* a keyed delta *decodes* to exactly the string-mode delta the same
  stream would have produced (hypothesis-checked on random streams),
* merging keyed deltas is order-independent (union semantics), and
* a run mixing keyed and string-mode shards merges bit-identically to an
  all-string run (the merger decodes keys through the shard codec).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.guesser import (
    CheckpointDelta,
    GuessAccounting,
    KeyedCheckpointDelta,
)
from repro.data.alphabet import compact_alphabet
from repro.data.encoding import PasswordEncoder
from repro.runtime import (
    LocalExecutor,
    ParallelAttackEngine,
    ShardPlanner,
    ShardTask,
    execute_shard,
)
from repro.strategies.base import GuessBatch, GuessingStrategy


@pytest.fixture(scope="module")
def codec():
    return PasswordEncoder(compact_alphabet())


# a small password universe the hypothesis streams draw from; every entry
# is encodable so the encoded and string paths see identical streams
UNIVERSE = ["a", "b", "ab", "ba", "abc", "love12", "pw1", "pw2", "x", ""]

stream_st = st.lists(st.sampled_from(UNIVERSE), min_size=0, max_size=120)
budgets_st = (
    st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=4, unique=True)
    .map(sorted)
)


class TestDecodeEquivalence:
    @given(stream=stream_st, budgets=budgets_st)
    @settings(max_examples=60, deadline=None)
    def test_keyed_deltas_decode_to_string_deltas(self, stream, budgets):
        """Same stream, both modes: deltas are equal after decoding."""
        codec = PasswordEncoder(compact_alphabet())
        test_set = {"ab", "love12", "pw2"}
        keyed = GuessAccounting(set(test_set), budgets, track_deltas=True)
        stringy = GuessAccounting(set(test_set), budgets, track_deltas=True)
        for start in range(0, len(stream), 7):
            chunk = stream[start : start + 7]
            keyed.observe_encoded(codec.indices_from_strings(chunk), codec)
            stringy.observe(chunk)
        assert len(keyed.deltas) == len(stringy.deltas)
        for kd, sd in zip(keyed.deltas, stringy.deltas):
            assert isinstance(kd, KeyedCheckpointDelta)
            assert isinstance(sd, CheckpointDelta)
            decoded = kd.decode(codec)
            assert sorted(decoded.new_unique) == sorted(sd.new_unique)
            assert sorted(decoded.new_matched) == sorted(sd.new_matched)
        assert [r.as_dict() for r in keyed.rows] == [r.as_dict() for r in stringy.rows]

    def test_key_roundtrip_is_exact(self, codec):
        passwords = ["", "a", "love12", "x9kq", "aaaaaaaaaa"]
        keys = codec.pack_passwords(passwords)
        assert codec.strings_from_keys(keys) == passwords
        assert codec.strings_from_keys(np.empty(0, dtype=np.uint64)) == []

    def test_delta_payload_is_uint64(self, codec):
        acc = GuessAccounting({"ab"}, [3], track_deltas=True)
        acc.observe_encoded(codec.indices_from_strings(["a", "ab", "ba"]), codec)
        (delta,) = acc.deltas
        assert delta.new_unique_keys.dtype == np.uint64
        assert delta.new_matched_keys.dtype == np.uint64
        assert delta.nbytes == delta.new_unique_keys.nbytes + delta.new_matched_keys.nbytes


class TestMergeOrderIndependence:
    @given(
        streams=st.lists(
            st.lists(st.sampled_from(UNIVERSE), min_size=1, max_size=40),
            min_size=2,
            max_size=4,
        ),
        order_seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_union_of_keyed_deltas_is_order_independent(self, streams, order_seed):
        """Folding shard deltas in any order yields the same key sets."""
        codec = PasswordEncoder(compact_alphabet())
        deltas = []
        for stream in streams:
            acc = GuessAccounting({"ab", "pw1"}, [len(stream)], track_deltas=True)
            acc.observe_encoded(codec.indices_from_strings(stream), codec)
            deltas.extend(acc.deltas)
        forward_u = np.empty(0, dtype=np.uint64)
        forward_m = np.empty(0, dtype=np.uint64)
        for delta in deltas:
            forward_u = np.union1d(forward_u, delta.new_unique_keys)
            forward_m = np.union1d(forward_m, delta.new_matched_keys)
        shuffled = list(deltas)
        np.random.default_rng(order_seed).shuffle(shuffled)
        backward_u = np.empty(0, dtype=np.uint64)
        backward_m = np.empty(0, dtype=np.uint64)
        for delta in shuffled:
            backward_u = np.union1d(backward_u, delta.new_unique_keys)
            backward_m = np.union1d(backward_m, delta.new_matched_keys)
        assert np.array_equal(forward_u, backward_u)
        assert np.array_equal(forward_m, backward_m)

    def test_accounting_merge_tracks_keyed_pending(self, codec):
        """GuessAccounting.merge keeps encoded delta state in key space."""
        test_set = {"ab", "pw1"}
        a = GuessAccounting(set(test_set), [6], track_deltas=True)
        b = GuessAccounting(set(test_set), [6], track_deltas=True)
        a.observe_encoded(codec.indices_from_strings(["a", "ab", "x"]), codec)
        b.observe_encoded(codec.indices_from_strings(["pw1", "b", "x"]), codec)
        a.merge(b)
        assert a.total == 6
        (delta,) = a.deltas  # merge crossed the single budget
        decoded = delta.decode(codec)
        assert sorted(decoded.new_unique) == ["a", "ab", "b", "pw1", "x"]
        assert sorted(decoded.new_matched) == ["ab", "pw1"]
        assert a.rows[0].unique == 5 and a.rows[0].matched == 2


class _Replay(GuessingStrategy):
    """Deterministic pool replay; encoded or string batches per flag."""

    def __init__(self, pool_rows, codec, encoded, batch=64):
        super().__init__(spec="replay")
        self.name = "replay"
        self._rows = pool_rows
        self._codec = codec
        self._encoded = encoded
        self._batch = batch

    def iter_guesses(self, rng):
        while True:
            count = self.context.next_count(self._batch)
            if count < 1:
                return
            draws = rng.integers(0, len(self._rows), size=count)
            rows = self._rows[draws]
            if self._encoded:
                yield GuessBatch(None, index_matrix=rows, codec=self._codec)
            else:
                yield GuessBatch(self._codec.strings_from_indices(rows))


class _MidRunFallback(_Replay):
    """Yields encoded batches, then one string batch, then encoded again."""

    def iter_guesses(self, rng):
        for i, batch in enumerate(super().iter_guesses(rng)):
            if i == 1:
                yield GuessBatch(batch.materialize())
            else:
                yield batch


@pytest.fixture(scope="module")
def replay_parts(codec):
    rng = np.random.default_rng(3)
    pool = rng.integers(1, codec.vocab_size, size=(2500, 10))
    pool[:, 6:] = np.where(rng.random((2500, 4)) < 0.5, 0, pool[:, 6:])
    strings = codec.strings_from_indices(pool)
    return pool, set(strings[:150])


def rows_of(report):
    return [(r.guesses, r.unique, r.matched, r.match_percent) for r in report.rows]


BUDGETS = [500, 2000, 6000]


class TestShardTransportParity:
    def test_keyed_run_matches_string_run(self, codec, replay_parts):
        """Key-space merge and string-space merge agree bit for bit."""
        pool, test_set = replay_parts
        keyed = ParallelAttackEngine(
            test_set, BUDGETS, workers=3, executor=LocalExecutor()
        ).run(lambda: _Replay(pool, codec, encoded=True), seed=11)
        stringy = ParallelAttackEngine(
            test_set, BUDGETS, workers=3, executor=LocalExecutor()
        ).run(lambda: _Replay(pool, codec, encoded=False), seed=11)
        assert rows_of(keyed) == rows_of(stringy)
        assert keyed.matched_samples == stringy.matched_samples
        assert keyed.non_matched_samples == stringy.non_matched_samples

    def test_shard_outcomes_are_keyed_for_encoded_streams(self, codec, replay_parts):
        pool, test_set = replay_parts
        plans = ShardPlanner(BUDGETS, 2).plan()
        task = ShardTask(
            source=lambda: _Replay(pool, codec, encoded=True),
            test_set=test_set,
            seed=11,
        )
        outcome = execute_shard(task, plans[0])
        assert outcome.keyed and outcome.codec is codec
        assert all(isinstance(d, KeyedCheckpointDelta) for d in outcome.deltas)

    def test_string_fallback_mid_run_merges_bit_identically(self, codec, replay_parts):
        """A strategy that drops to strings mid-stream re-encodes, so its
        shard stays in key space and the merged report is unchanged."""
        pool, test_set = replay_parts
        baseline = ParallelAttackEngine(
            test_set, BUDGETS, workers=3, executor=LocalExecutor()
        ).run(lambda: _Replay(pool, codec, encoded=True), seed=11)
        fallback = ParallelAttackEngine(
            test_set, BUDGETS, workers=3, executor=LocalExecutor()
        ).run(lambda: _MidRunFallback(pool, codec, encoded=True), seed=11)
        assert rows_of(fallback) == rows_of(baseline)
        assert fallback.matched_samples == baseline.matched_samples

    def test_mixed_shard_modes_merge_exactly(self, codec, replay_parts):
        """Keyed and string shards in one run: merger decodes, counts agree."""
        pool, test_set = replay_parts

        flavors = iter([True, False, True])

        def mixed_source():
            return _Replay(pool, codec, encoded=next(flavors))

        mixed = ParallelAttackEngine(
            test_set, BUDGETS, workers=3, executor=LocalExecutor()
        ).run(mixed_source, seed=11)
        uniform = ParallelAttackEngine(
            test_set, BUDGETS, workers=3, executor=LocalExecutor()
        ).run(lambda: _Replay(pool, codec, encoded=True), seed=11)
        assert rows_of(mixed) == rows_of(uniform)

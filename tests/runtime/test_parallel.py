"""ParallelAttackEngine: shard merging, determinism, executor parity.

The expensive contracts are exercised with a cheap fitted Markov strategy
(rebuildable from its spec string, as worker processes require).
"""

import numpy as np
import pytest

from repro.runtime import (
    LocalExecutor,
    ParallelAttackEngine,
    ProcessExecutor,
    ShardTask,
    StrategySource,
    execute_shard,
)
from repro.runtime.planner import ShardPlanner
from repro.strategies import AttackEngine, build
from repro.utils.rng import spawn_rng

BUDGETS = [300, 1200, 3000]


@pytest.fixture(scope="module")
def attack_parts(corpus):
    train = corpus[:1500]
    test_set = set(corpus[1500:])
    source = StrategySource("markov:3?batch=128", corpus=train)
    return train, test_set, source


def rows_of(report):
    return [(r.guesses, r.unique, r.matched, r.match_percent) for r in report.rows]


class TestWorkersOne:
    def test_bit_identical_to_serial_engine(self, attack_parts):
        """One shard == the serial engine on the shard's RNG stream."""
        train, test_set, source = attack_parts
        serial = AttackEngine(test_set, BUDGETS).run(
            build("markov:3?batch=128", corpus=train), spawn_rng(7, "shard-0")
        )
        parallel = ParallelAttackEngine(
            test_set, BUDGETS, workers=1, executor=LocalExecutor()
        ).run(source, seed=7)
        assert rows_of(parallel) == rows_of(serial)
        assert parallel.matched_samples == serial.matched_samples
        assert parallel.non_matched_samples == serial.non_matched_samples
        assert parallel.test_size == serial.test_size

    def test_method_defaults_to_strategy_name(self, attack_parts):
        _, test_set, source = attack_parts
        report = ParallelAttackEngine(
            test_set, BUDGETS, workers=1, executor=LocalExecutor()
        ).run(source, seed=7)
        assert report.method == "Markov-3"  # shard strategies name the report


class TestDeterminismAndMerging:
    def test_fixed_seed_and_workers_is_deterministic(self, attack_parts):
        _, test_set, source = attack_parts
        engine = ParallelAttackEngine(
            test_set, BUDGETS, workers=3, executor=LocalExecutor()
        )
        first = engine.run(source, seed=7)
        second = engine.run(source, seed=7)
        assert rows_of(first) == rows_of(second)
        assert first.matched_samples == second.matched_samples

    def test_different_seeds_differ(self, attack_parts):
        _, test_set, source = attack_parts
        engine = ParallelAttackEngine(
            test_set, BUDGETS, workers=3, executor=LocalExecutor()
        )
        assert rows_of(engine.run(source, seed=7)) != rows_of(
            engine.run(source, seed=8)
        )

    def test_rows_cover_every_budget(self, attack_parts):
        _, test_set, source = attack_parts
        for workers in (2, 5, 700):
            report = ParallelAttackEngine(
                test_set, BUDGETS, workers=workers, executor=LocalExecutor()
            ).run(source, seed=7)
            assert [row.guesses for row in report.rows] == BUDGETS

    def test_merged_counts_match_union_of_shards(self, attack_parts):
        """The final row equals the union of independently-run shards."""
        train, test_set, source = attack_parts
        workers = 3
        plans = ShardPlanner(BUDGETS, workers).plan()
        unique, matched = set(), set()
        for plan in plans:
            from repro.core.guesser import GuessAccounting
            from repro.strategies.engine import AttackState

            accounting = GuessAccounting(set(test_set), plan.local_budgets)
            state = AttackState(accounting)
            engine = AttackEngine(set(), plan.local_budgets)
            for _ in engine.stream(
                build("markov:3?batch=128", corpus=train), plan.rng(7), state
            ):
                pass
            unique |= accounting.unique
            matched |= accounting.matched
        report = ParallelAttackEngine(
            test_set, BUDGETS, workers=workers, executor=LocalExecutor()
        ).run(source, seed=7)
        assert report.final().unique == len(unique)
        assert report.final().matched == len(matched)


class TestProcessExecutor:
    def test_matches_local_executor(self, attack_parts):
        _, test_set, source = attack_parts
        local = ParallelAttackEngine(
            test_set, BUDGETS, workers=2, executor=LocalExecutor()
        ).run(source, seed=7)
        forked = ParallelAttackEngine(
            test_set, BUDGETS, workers=2, executor=ProcessExecutor()
        ).run(source, seed=7)
        assert rows_of(local) == rows_of(forked)
        assert local.matched_samples == forked.matched_samples
        assert local.non_matched_samples == forked.non_matched_samples

    def test_worker_failure_surfaces(self, attack_parts):
        _, test_set, _ = attack_parts

        class Exploding:
            spec = "boom"

            def build(self):
                raise RuntimeError("cannot build")

        # StrategySource duck-typing: Exploding is treated as a factory
        with pytest.raises(RuntimeError):
            ParallelAttackEngine(
                test_set, [100], workers=2, executor=LocalExecutor()
            ).run(Exploding().build, seed=1)


class TestExecuteShard:
    def test_empty_plan_returns_empty_outcome(self, attack_parts):
        _, test_set, source = attack_parts
        plans = ShardPlanner([2], 5).plan()  # shards 2..4 get zero guesses
        task = ShardTask(source=source, test_set=test_set, seed=7)
        outcome = execute_shard(task, plans[4])
        assert outcome.total == 0 and outcome.deltas == []

    def test_outcome_reached(self, attack_parts):
        _, test_set, source = attack_parts
        plans = ShardPlanner(BUDGETS, 2).plan()
        task = ShardTask(source=source, test_set=test_set, seed=7)
        outcome = execute_shard(task, plans[0])
        assert outcome.reached(plans[0].marks[-1])
        assert outcome.total == plans[0].marks[-1]

    def test_finite_strategy_closes_out_with_accounted_guesses(self):
        """A dry run keeps reached budgets and closes out at the true total.

        Two shards of 40 guesses each reach the 20-guess budget but dry
        out far short of 200; the final row must report the 80 guesses
        actually accounted (including each shard's post-checkpoint tail),
        not the 200 that were merely scheduled.
        """
        from repro.strategies.base import GuessBatch, GuessingStrategy

        class Finite(GuessingStrategy):
            name = "finite"

            def __init__(self):
                super().__init__(spec="finite")

            def iter_guesses(self, rng):
                yield GuessBatch([f"x{i}" for i in range(40)])

        report = ParallelAttackEngine(
            {"x1"}, [20, 200], workers=2, executor=LocalExecutor()
        ).run(Finite, seed=3)
        assert [(row.guesses, row.unique, row.matched) for row in report.rows] == [
            (20, 10, 1),
            (80, 40, 1),
        ]

    def test_dry_exactly_on_checkpoint_gets_no_close_out_row(self):
        """No phantom row when the stream dries exactly on a reached mark."""
        from repro.strategies.base import GuessBatch, GuessingStrategy

        class TenEach(GuessingStrategy):
            name = "ten"

            def __init__(self):
                super().__init__(spec="ten")

            def iter_guesses(self, rng):
                yield GuessBatch([f"y{i}" for i in range(10)])

        report = ParallelAttackEngine(
            {"y1"}, [20, 200], workers=2, executor=LocalExecutor()
        ).run(TenEach, seed=3)
        assert [(row.guesses, row.unique) for row in report.rows] == [(20, 10)]

    def test_close_out_matches_process_executor(self):
        """Partial deltas survive the fork boundary bit-identically."""
        source = StrategySource("drying?limit=35&batch=16")
        local = ParallelAttackEngine(
            set(f"g{n:07d}" for n in range(0, 100, 3)),
            [20, 500],
            workers=2,
            executor=LocalExecutor(),
        ).run(source, seed=3)
        forked = ParallelAttackEngine(
            set(f"g{n:07d}" for n in range(0, 100, 3)),
            [20, 500],
            workers=2,
            executor=ProcessExecutor(),
        ).run(source, seed=3)
        assert [row.guesses for row in local.rows] == [20, 70]
        assert rows_of(local) == rows_of(forked)
        assert local.matched_samples == forked.matched_samples

"""ProcessExecutor fault paths: dead workers, crashing strategies.

The dead-worker path is the one failure mode no exception can report: a
forked shard that is OOM-killed (or calls ``os._exit``) never puts
anything on the result queue.  The parent must notice the silent corpse
and raise instead of waiting on the queue forever.  The ``crashing``
fixture family (see ``conftest.py``) drives both flavors through real
registry spec strings, exactly as a production strategy would cross the
fork boundary.
"""

import pytest

from repro.runtime import (
    LocalExecutor,
    ParallelAttackEngine,
    ProcessExecutor,
    StrategySource,
)

TEST_SET = {f"g{n:07d}" for n in range(0, 200, 5)}


def _process_executor():
    try:
        return ProcessExecutor()
    except RuntimeError:
        pytest.skip("no fork start method on this platform")


class TestDeadWorker:
    def test_killed_worker_surfaces_clean_error_instead_of_hanging(self):
        """A worker dying without reporting raises a shard-naming error."""
        engine = ParallelAttackEngine(
            set(TEST_SET),
            [400],
            workers=2,
            executor=_process_executor(),
        )
        with pytest.raises(RuntimeError, match="died without reporting"):
            engine.run(StrategySource("crashing?at=30&mode=exit&batch=16"), seed=3)

    def test_surviving_worker_does_not_mask_the_death(self):
        """One healthy shard plus one corpse still fails loudly.

        Budget 401 splits into marks [201, 200]; a crash threshold of 200
        kills only shard 0 (shard 1 stops exactly on its mark and reports
        cleanly), so the parent sees one good outcome and one silent
        death -- and must still raise.
        """
        engine = ParallelAttackEngine(
            set(TEST_SET), [401], workers=2, executor=_process_executor()
        )
        with pytest.raises(RuntimeError, match="shard\\(s\\) \\[0\\] died"):
            engine.run(StrategySource("crashing?at=200&mode=exit&batch=16"), seed=3)


class TestCrashingStrategy:
    def test_raised_exception_crosses_fork_with_original_type(self):
        """mode=raise: the parent re-raises the worker's RuntimeError."""
        engine = ParallelAttackEngine(
            set(TEST_SET), [400], workers=2, executor=_process_executor()
        )
        with pytest.raises(RuntimeError, match="hit its mark"):
            engine.run(StrategySource("crashing?at=30&batch=16"), seed=3)

    def test_local_executor_raises_in_process(self):
        """The same spec fails identically without any fork involved."""
        engine = ParallelAttackEngine(
            set(TEST_SET), [400], workers=2, executor=LocalExecutor()
        )
        with pytest.raises(RuntimeError, match="hit its mark"):
            engine.run(StrategySource("crashing?at=30&batch=16"), seed=3)

"""ProcessExecutor fault paths: dead workers, crashing strategies.

The dead-worker path is the one failure mode no exception can report: a
forked shard that is OOM-killed (or calls ``os._exit``) never puts
anything on the result queue.  The parent must notice the silent corpse
and raise instead of waiting on the queue forever.  The ``crashing``
fixture family (see ``conftest.py``) drives both flavors through real
registry spec strings, exactly as a production strategy would cross the
fork boundary.
"""

import threading
import time

import pytest

from repro.runtime import (
    LocalExecutor,
    ParallelAttackEngine,
    ProcessExecutor,
    StrategySource,
    WorkStealingExecutor,
)

TEST_SET = {f"g{n:07d}" for n in range(0, 200, 5)}


def _process_executor():
    try:
        return ProcessExecutor()
    except RuntimeError:
        pytest.skip("no fork start method on this platform")


class TestDeadWorker:
    def test_killed_worker_surfaces_clean_error_instead_of_hanging(self):
        """A worker dying without reporting raises a shard-naming error."""
        engine = ParallelAttackEngine(
            set(TEST_SET),
            [400],
            workers=2,
            executor=_process_executor(),
        )
        with pytest.raises(RuntimeError, match="died without reporting"):
            engine.run(StrategySource("crashing?at=30&mode=exit&batch=16"), seed=3)

    def test_surviving_worker_does_not_mask_the_death(self):
        """One healthy shard plus one corpse still fails loudly.

        Budget 401 splits into marks [201, 200]; a crash threshold of 200
        kills only shard 0 (shard 1 stops exactly on its mark and reports
        cleanly), so the parent sees one good outcome and one silent
        death -- and must still raise.
        """
        engine = ParallelAttackEngine(
            set(TEST_SET), [401], workers=2, executor=_process_executor()
        )
        with pytest.raises(RuntimeError, match="shard\\(s\\) \\[0\\] died"):
            engine.run(StrategySource("crashing?at=200&mode=exit&batch=16"), seed=3)


class TestCrashingStrategy:
    def test_raised_exception_crosses_fork_with_original_type(self):
        """mode=raise: the parent re-raises the worker's RuntimeError."""
        engine = ParallelAttackEngine(
            set(TEST_SET), [400], workers=2, executor=_process_executor()
        )
        with pytest.raises(RuntimeError, match="hit its mark"):
            engine.run(StrategySource("crashing?at=30&batch=16"), seed=3)

    def test_local_executor_raises_in_process(self):
        """The same spec fails identically without any fork involved."""
        engine = ParallelAttackEngine(
            set(TEST_SET), [400], workers=2, executor=LocalExecutor()
        )
        with pytest.raises(RuntimeError, match="hit its mark"):
            engine.run(StrategySource("crashing?at=30&batch=16"), seed=3)


class TestOrphanCleanup:
    def test_interrupt_mid_collection_reaps_children(self, monkeypatch):
        """Regression: a parent raising mid-collection must not orphan forks.

        ``_receive`` is the seam the collection loop reads results
        through; making it raise KeyboardInterrupt models an operator ^C
        while straggling shards are still generating.  Before the fix the
        ``finally`` block only terminated children after *shard* errors,
        so this exact path left live straggler processes behind.
        """
        executor = _process_executor()
        engine = ParallelAttackEngine(
            set(TEST_SET), [5000], workers=2, executor=executor
        )

        def interrupted(queue):
            raise KeyboardInterrupt

        monkeypatch.setattr(ProcessExecutor, "_receive", staticmethod(interrupted))
        with pytest.raises(KeyboardInterrupt):
            engine.run(StrategySource("straggler?delay=0.05&batch=16"), seed=3)
        assert executor._processes  # the run really forked a fleet
        for process in executor._processes:
            assert not process.is_alive()


class TestThreadPoolRelease:
    def test_no_thread_growth_across_repeated_failing_runs(self):
        """Regression: failing elastic runs must release their pools."""
        baseline = threading.active_count()
        for _ in range(3):
            engine = ParallelAttackEngine(
                set(TEST_SET),
                [400],
                workers=2,
                schedule="elastic",
                executor="worksteal",
            )
            with pytest.raises(RuntimeError, match="hit its mark"):
                engine.run(StrategySource("crashing?at=30&batch=16"), seed=3)
        deadline = time.monotonic() + 5.0
        while threading.active_count() > baseline and time.monotonic() < deadline:
            time.sleep(0.05)
        assert threading.active_count() <= baseline

    def test_interrupt_inside_chunk_does_not_strand_siblings(self):
        """Regression: a BaseException escaping one pull worker used to
        leave its siblings waiting on the condition forever, turning
        ``shutdown(wait=True)`` into a deadlock."""
        pool = WorkStealingExecutor(2)

        def boom():
            raise KeyboardInterrupt

        def idle():
            time.sleep(0.01)

        try:
            with pytest.raises(BaseException):
                pool.run_chains([[boom], [idle, idle, idle]])
        finally:
            finished = threading.Event()

            def close():
                pool.shutdown()
                finished.set()

            closer = threading.Thread(target=close, daemon=True)
            closer.start()
            assert finished.wait(timeout=10.0), "shutdown deadlocked"

"""Kernel backend registry: resolution, selection, and error surfaces."""

import numpy as np
import pytest

from repro import kernels
from repro.cli import main
from repro.core.guesser import GuessingReport


class TestResolve:
    def test_explicit_names_resolve_to_themselves(self):
        assert kernels.resolve("numpy") == "numpy"
        assert kernels.resolve("reference") == "reference"

    def test_auto_prefers_numba_when_available(self, monkeypatch):
        monkeypatch.setattr(kernels, "numba_available", lambda: True)
        assert kernels.resolve("auto") == "numba"
        monkeypatch.setattr(kernels, "numba_available", lambda: False)
        assert kernels.resolve("auto") == "numpy"

    def test_none_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "reference")
        assert kernels.resolve() == "reference"
        monkeypatch.delenv("REPRO_KERNELS")
        assert kernels.resolve() in ("numpy", "numba")

    def test_invalid_value_one_line_error(self):
        with pytest.raises(ValueError) as excinfo:
            kernels.resolve("fortran")
        message = str(excinfo.value)
        assert "\n" not in message
        assert "REPRO_KERNELS must be one of auto|numpy|numba|reference" in message
        assert "'fortran'" in message

    def test_invalid_env_value_same_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "cuda")
        with pytest.raises(ValueError, match="must be one of"):
            kernels.resolve()

    def test_numba_missing_one_line_error(self, monkeypatch):
        monkeypatch.setattr(kernels, "numba_available", lambda: False)
        with pytest.raises(ValueError) as excinfo:
            kernels.resolve("numba")
        message = str(excinfo.value)
        assert "\n" not in message
        assert "numba is not installed" in message


class TestSelectAndActive:
    def test_select_returns_backend_name(self):
        previous = kernels.active_name()
        try:
            assert kernels.select("reference") == "reference"
            assert kernels.active_name() == "reference"
            assert kernels.active().NAME == "reference"
        finally:
            kernels.select(previous)

    def test_use_backend_restores_previous(self):
        before = kernels.active()
        with kernels.use_backend("reference"):
            assert kernels.active_name() == "reference"
        assert kernels.active() is before

    def test_use_backend_restores_on_error(self):
        before = kernels.active()
        with pytest.raises(RuntimeError):
            with kernels.use_backend("reference"):
                raise RuntimeError("boom")
        assert kernels.active() is before

    def test_backends_expose_the_same_kernel_api(self):
        reference = kernels._load("reference")
        numpy_backend = kernels._load("numpy")
        exported = [
            name
            for name in dir(reference)
            if not name.startswith("_") and callable(getattr(reference, name))
        ]
        for name in exported:
            assert callable(getattr(numpy_backend, name)), name


class TestReportSurface:
    def test_report_records_active_backend(self):
        with kernels.use_backend("reference"):
            report = GuessingReport(method="m", test_size=1)
        assert report.kernel_backend == "reference"
        assert report.as_dict()["kernel_backend"] == "reference"

    def test_report_json_includes_backend(self, tmp_path, monkeypatch):
        # setenv first so monkeypatch restores the CLI's env export
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        corpus = tmp_path / "corpus.txt"
        corpus.write_text("\n".join(["password1", "hunter2", "love99", "qwerty12"] * 8) + "\n")
        out = tmp_path / "report.json"
        rc = main(
            [
                "attack",
                "--corpus",
                str(corpus),
                "--strategy",
                "markov:2",
                "--budgets",
                "50",
                "--kernels",
                "numpy",
                "--report",
                str(out),
            ]
        )
        assert rc == 0
        assert '"kernel_backend": "numpy"' in out.read_text()


class TestCLIErrors:
    def test_bad_kernels_flag_exits_with_one_liner(self, tmp_path):
        corpus = tmp_path / "corpus.txt"
        corpus.write_text("password1\nhunter2\n")
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "attack",
                    "--corpus",
                    str(corpus),
                    "--strategy",
                    "markov:2",
                    "--kernels",
                    "fortran",
                ]
            )
        assert "must be one of" in str(excinfo.value)

    def test_numba_flag_without_numba_exits(self, tmp_path, monkeypatch):
        monkeypatch.setattr(kernels, "numba_available", lambda: False)
        corpus = tmp_path / "corpus.txt"
        corpus.write_text("password1\nhunter2\n")
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "attack",
                    "--corpus",
                    str(corpus),
                    "--strategy",
                    "markov:2",
                    "--kernels",
                    "numba",
                ]
            )
        assert "numba is not installed" in str(excinfo.value)

    def test_kernels_flag_exported_during_run_restored_after(
        self, tmp_path, monkeypatch
    ):
        """--kernels is in the environment while the command runs (forked
        shard workers inherit it) but rolled back when main() returns, so
        in-process callers never see a leaked backend choice."""
        import os

        import repro.cli as cli_module

        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        corpus = tmp_path / "corpus.txt"
        corpus.write_text("\n".join(["password1", "hunter2", "love99", "qwerty12"] * 8) + "\n")
        seen = {}
        real_emit = cli_module._emit_attack_report

        def spying_emit(report, args, budgets, described):
            seen["env"] = os.environ.get("REPRO_KERNELS")
            return real_emit(report, args, budgets, described)

        monkeypatch.setattr(cli_module, "_emit_attack_report", spying_emit)
        main(
            [
                "attack",
                "--corpus",
                str(corpus),
                "--strategy",
                "markov:2",
                "--budgets",
                "50",
                "--kernels",
                "reference",
            ]
        )
        assert seen["env"] == "reference"  # live for the run's workers
        assert os.environ.get("REPRO_KERNELS") is None  # rolled back


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = kernels._active
    yield
    kernels._active = previous
